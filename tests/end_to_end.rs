//! Cross-crate integration tests through the `ipa` facade: catalog →
//! locator → splitter → engines → merge, across all three record domains,
//! including on-disk dataset files.

use std::sync::Arc;
use std::time::Duration;

use ipa::catalog::Metadata;
use ipa::client::IpaClient;
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode, RunState};
use ipa::dataset::{
    generate_dataset, Dataset, DnaGeneratorConfig, EventGeneratorConfig, GeneratorConfig,
    TradeGeneratorConfig,
};
use ipa::simgrid::{SecurityDomain, VoPolicy};

fn site(publish_every: usize) -> (Arc<ManagerNode>, SecurityDomain) {
    let sec = SecurityDomain::new("it-site", 11).with_policy(VoPolicy::new("vo", 32));
    let manager = Arc::new(ManagerNode::new(
        "it-site",
        sec.clone(),
        IpaConfig {
            publish_every,
            ..Default::default()
        },
    ));
    (manager, sec)
}

#[test]
fn all_three_domains_run_through_the_same_framework() {
    let (manager, sec) = site(500);
    manager
        .publish_dataset(
            "/phys",
            generate_dataset(
                "events",
                "events",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 2_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();
    manager
        .publish_dataset(
            "/bio",
            generate_dataset(
                "reads",
                "reads",
                &GeneratorConfig::Dna(DnaGeneratorConfig {
                    reads: 2_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();
    manager
        .publish_dataset(
            "/fin",
            generate_dataset(
                "trades",
                "trades",
                &GeneratorConfig::Trade(TradeGeneratorConfig {
                    trades: 2_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&sec, "/CN=it", "vo", 0.0, 1e5);
    let mut s = client.connect(0.0, 3).unwrap();

    for (query, code, expect_plot) in [
        ("kind == event", "higgs-search", "/higgs/bb_mass"),
        ("kind == dna", "dna-motif", "/dna/gc_content"),
        ("kind == trade", "trade-vwap", "/trade/price"),
    ] {
        let id = client.find_dataset(query).unwrap();
        s.select_dataset(&id).unwrap();
        s.load_code(AnalysisCode::Native(code.into())).unwrap();
        s.run().unwrap();
        let st = s.wait_finished(Duration::from_secs(60)).unwrap();
        assert_eq!(st.records_processed, 2_000, "{query}");
        let tree = s.results().unwrap();
        assert!(tree.contains(expect_plot), "{expect_plot} missing");
        assert!(tree.get(expect_plot).unwrap().entries() > 0);
    }
    s.close();
}

#[test]
fn dataset_survives_disk_round_trip_into_analysis() {
    let (manager, sec) = site(500);
    let original = generate_dataset(
        "disk-events",
        "events via disk",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: 1_000,
            seed: 77,
            ..Default::default()
        }),
    );

    // Write to a real file with the binary codec, read back, publish.
    let dir = std::env::temp_dir().join("ipa_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("disk-events.ipadset");
    original.write_file(&path).unwrap();
    let loaded = Dataset::read_file("disk-events", "events via disk", &path)
        .unwrap()
        .unwrap();
    assert_eq!(loaded, original);
    manager
        .publish_dataset("/disk", loaded, Metadata::new())
        .unwrap();

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&sec, "/CN=it", "vo", 0.0, 1e5);
    let mut s = client.connect(0.0, 2).unwrap();
    s.select_dataset(&client.find_dataset("id == \"disk-events\"").unwrap())
        .unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.records_processed, 1_000);
    s.close();
    std::fs::remove_file(&path).ok();
}

#[test]
fn two_concurrent_sessions_are_isolated() {
    let (manager, sec) = site(200);
    manager
        .publish_dataset(
            "/d",
            generate_dataset(
                "ds",
                "ds",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 3_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();

    let mut alice = IpaClient::new(manager.clone());
    alice.grid_proxy_init(&sec, "/CN=alice", "vo", 0.0, 1e5);
    let mut bob = IpaClient::new(manager.clone());
    bob.grid_proxy_init(&sec, "/CN=bob", "vo", 0.0, 1e5);

    let mut sa = alice.connect(0.0, 2).unwrap();
    let mut sb = bob.connect(0.0, 2).unwrap();
    assert_ne!(sa.id(), sb.id());

    let id = alice.find_dataset("id == \"ds\"").unwrap();
    sa.select_dataset(&id).unwrap();
    sb.select_dataset(&id).unwrap();
    sa.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    // Bob books different plots via a script.
    sb.load_code(AnalysisCode::Script(
        "fn init() { h1(\"/bob/only\", 5, 0.0, 1.0); } fn process(e) { fill(\"/bob/only\", 0.5); }"
            .into(),
    ))
    .unwrap();
    sa.run().unwrap();
    sb.run().unwrap();
    let sta = sa.wait_finished(Duration::from_secs(60)).unwrap();
    let stb = sb.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(sta.records_processed, 3_000);
    assert_eq!(stb.records_processed, 3_000);

    let ta = sa.results().unwrap();
    let tb = sb.results().unwrap();
    assert!(ta.contains("/higgs/bb_mass") && !ta.contains("/bob/only"));
    assert!(tb.contains("/bob/only") && !tb.contains("/higgs/bb_mass"));
    sa.close();
    sb.close();
}

#[test]
fn rewind_during_run_discards_in_flight_updates() {
    // Chaos regression for the epoch-tagged lifecycle: pause a run with
    // updates still queued on the result plane, rewind, and poll
    // immediately — without sleeping. Every queued update carries the old
    // epoch and must be dropped, so the very first poll after rewind
    // reports a blank session. Before epoch tagging this raced: stale
    // updates from the previous run would be absorbed after the reset.
    let (manager, sec) = site(50);
    manager
        .publish_dataset(
            "/d",
            generate_dataset(
                "chaos",
                "chaos",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 20_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();
    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&sec, "/CN=chaos", "vo", 0.0, 1e5);
    let mut s = client.connect(0.0, 3).unwrap();
    s.select_dataset(&client.find_dataset("id == \"chaos\"").unwrap())
        .unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();

    // Let real progress accumulate mid-run.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let st = s.poll().unwrap();
        if st.records_processed > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "no progress");
        std::thread::sleep(Duration::from_millis(1));
    }
    s.pause().unwrap();
    // Give the engines time to flush their final publishes into the
    // result channel — these now sit queued, unabsorbed.
    std::thread::sleep(Duration::from_millis(300));

    // Rewind and poll with NO intervening sleep: the queued updates are
    // drained by this poll but belong to the previous epoch.
    s.rewind().unwrap();
    let st = s.poll().unwrap();
    assert_eq!(st.state, RunState::Idle);
    assert_eq!(
        st.records_processed, 0,
        "stale pre-rewind updates leaked into the new epoch"
    );
    assert!(
        s.results().unwrap().is_empty(),
        "merged tree must be empty right after rewind"
    );

    // The session is still fully usable: a clean rerun counts every
    // record exactly once.
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.records_processed, 20_000);
    assert_eq!(
        s.results()
            .unwrap()
            .get("/higgs/n_btags")
            .unwrap()
            .entries(),
        20_000,
        "every record counted exactly once after the rewind"
    );
    s.close();
}

#[test]
fn simulated_and_live_interactivity_requirements() {
    // Paper §1: "partial results on time scales of less than a minute".
    // Live: first feedback must arrive long before the run completes.
    let (manager, sec) = site(100);
    manager
        .publish_dataset(
            "/d",
            generate_dataset(
                "big",
                "big",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 30_000,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();
    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&sec, "/CN=it", "vo", 0.0, 1e5);
    let mut s = client.connect(0.0, 4).unwrap();
    s.select_dataset(&client.find_dataset("id == \"big\"").unwrap())
        .unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    let report = ipa::client::monitor_run(
        &mut s,
        Duration::from_micros(100),
        Duration::from_secs(120),
        |_, _| {},
    )
    .unwrap();
    let first = report.first_feedback.expect("partial results arrived");
    assert!(
        first < Duration::from_secs(60),
        "first feedback after {first:?}"
    );
    assert!(first <= report.elapsed);
    s.close();

    // Simulated 2006 grid: engines ready within "the limits of human
    // tolerance" (§2.3) — under a minute on the dedicated queue.
    let cal = ipa::simgrid::PaperCalibration::paper2006();
    let b = ipa::simgrid::simulate_session(471.0, 16, &cal);
    assert!(b.engines_ready_s < 60.0);
}

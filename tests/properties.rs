//! Property-based tests over the framework's core invariants.

use proptest::prelude::*;

use ipa::aida::{Axis, Histogram1D, Mergeable, Tree};
use ipa::catalog::query::glob_match;
use ipa::dataset::{
    decode_dataset, encode_dataset, reassemble, split_even, split_records, AnyRecord,
    CollisionEvent, DnaRead, FourVector, Particle, TradeRecord,
};
use ipa::model::{fit_grid_equation, GridEquation};

// ---------------------------------------------------------------- data ---

fn arb_particle() -> impl Strategy<Value = Particle> {
    (
        prop_oneof![Just(5i32), Just(-5), Just(11), Just(22), Just(211)],
        -1.0f64..1.0,
        0.0f64..200.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
    )
        .prop_map(|(pdg, q, e, px, py, pz)| Particle::new(pdg, q, FourVector::new(e, px, py, pz)))
}

fn arb_event(id: u64) -> impl Strategy<Value = AnyRecord> {
    proptest::collection::vec(arb_particle(), 0..12).prop_map(move |particles| {
        AnyRecord::Event(CollisionEvent {
            event_id: id,
            run: 1,
            sqrt_s: 500.0,
            is_signal: false,
            particles,
        })
    })
}

fn arb_dna(id: u64) -> impl Strategy<Value = AnyRecord> {
    ("[ACGT]{0,120}", 0.0f32..60.0).prop_map(move |(bases, quality)| {
        AnyRecord::Dna(DnaRead {
            read_id: id,
            sample: (id % 5) as u32,
            bases,
            quality,
        })
    })
}

fn arb_trade(id: u64) -> impl Strategy<Value = AnyRecord> {
    ("[A-Z]{1,6}", 0.01f64..1e4, 1u32..100_000, any::<bool>()).prop_map(
        move |(symbol, price, volume, buyer)| {
            AnyRecord::Trade(TradeRecord {
                trade_id: id,
                timestamp_ms: id * 3 + 1,
                symbol,
                price,
                volume,
                buyer_initiated: buyer,
            })
        },
    )
}

fn arb_records() -> impl Strategy<Value = Vec<AnyRecord>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>(), 0..60).prop_flat_map(|ids| ids
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_event(i as u64))
            .collect::<Vec<_>>()),
        proptest::collection::vec(any::<u64>(), 0..60).prop_flat_map(|ids| ids
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_dna(i as u64))
            .collect::<Vec<_>>()),
        proptest::collection::vec(any::<u64>(), 0..60).prop_flat_map(|ids| ids
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_trade(i as u64))
            .collect::<Vec<_>>()),
    ]
}

proptest! {
    // ------------------------------------------------------- splitter ---

    /// Splitting is an exact, order-preserving partition for both
    /// strategies and any part count.
    #[test]
    fn split_is_exact_partition(records in arb_records(), n in 1usize..40) {
        let (even, _) = split_even(&records, n).unwrap();
        prop_assert_eq!(even.len(), n);
        prop_assert_eq!(reassemble(&even), records.clone());

        let (byte, plan) = split_records(&records, n).unwrap();
        prop_assert_eq!(byte.len(), n);
        prop_assert_eq!(reassemble(&byte), records.clone());
        let total_from_plan: u64 = plan.ranges.iter().map(|r| r.1).sum();
        prop_assert_eq!(total_from_plan, records.len() as u64);
    }

    /// Record-count split balances to ±1 record.
    #[test]
    fn split_even_is_balanced(records in arb_records(), n in 1usize..20) {
        let (parts, _) = split_even(&records, n).unwrap();
        let lens: Vec<usize> = parts.iter().map(Vec::len).collect();
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        prop_assert!(max - min <= 1, "{lens:?}");
    }

    // ---------------------------------------------------------- codec ---

    /// Binary encode/decode round-trips every record domain exactly.
    #[test]
    fn codec_round_trips(records in arb_records()) {
        let bytes = encode_dataset(&records);
        let back = decode_dataset(&bytes).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Any truncation of a non-empty encoding fails loudly, never panics
    /// or returns wrong data.
    #[test]
    fn codec_rejects_truncation(records in arb_records(), frac in 0.0f64..1.0) {
        prop_assume!(!records.is_empty());
        let bytes = encode_dataset(&records);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_dataset(&bytes[..cut]).is_err());
    }

    // ----------------------------------------------------- histograms ---

    /// Merging any 2-way split of fills equals filling once (counts exact,
    /// weights to float tolerance) — the invariant the whole result plane
    /// rests on.
    #[test]
    fn histogram_merge_equals_sequential(
        fills in proptest::collection::vec((-50.0f64..150.0, 0.1f64..5.0), 0..300),
        mask in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut whole = Histogram1D::new("t", 37, 0.0, 100.0);
        let mut a = whole.clone_empty();
        let mut b = whole.clone_empty();
        for (i, &(x, w)) in fills.iter().enumerate() {
            whole.fill(x, w);
            if *mask.get(i).unwrap_or(&false) { a.fill(x, w) } else { b.fill(x, w) }
        }
        a.merge(&b).unwrap();
        prop_assert_eq!(a.all_entries(), whole.all_entries());
        for i in 0..37 {
            prop_assert_eq!(a.bin_entries(i), whole.bin_entries(i));
            prop_assert!((a.bin_height(i) - whole.bin_height(i)).abs() < 1e-9);
        }
    }

    /// Merge is commutative on counts and heights.
    #[test]
    fn histogram_merge_commutes(
        fa in proptest::collection::vec(-10.0f64..110.0, 0..100),
        fb in proptest::collection::vec(-10.0f64..110.0, 0..100),
    ) {
        let mut a1 = Histogram1D::new("t", 11, 0.0, 100.0);
        let mut b1 = a1.clone_empty();
        for &x in &fa { a1.fill1(x); }
        for &x in &fb { b1.fill1(x); }
        let mut ab = a1.clone();
        ab.merge(&b1).unwrap();
        let mut ba = b1.clone();
        ba.merge(&a1).unwrap();
        prop_assert_eq!(ab.all_entries(), ba.all_entries());
        for i in 0..11 {
            prop_assert!((ab.bin_height(i) - ba.bin_height(i)).abs() < 1e-9);
        }
    }

    /// Tree merge is associative on entry counts for disjoint and shared
    /// paths alike.
    #[test]
    fn tree_merge_associates(
        fills in proptest::collection::vec((0usize..3, 0.0f64..100.0), 0..120)
    ) {
        let paths = ["/a/x", "/a/y", "/b/z"];
        let mk = |idx: usize| {
            let mut t = Tree::new();
            for p in paths { t.put(p, Histogram1D::new("h", 10, 0.0, 100.0)).unwrap(); }
            for (i, &(pi, x)) in fills.iter().enumerate() {
                if i % 3 == idx {
                    if let ipa::aida::AidaObject::H1(h) = t.get_mut(paths[pi]).unwrap() {
                        h.fill1(x);
                    }
                }
            }
            t
        };
        let (a, b, c) = (mk(0), mk(1), mk(2));
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.total_entries(), right.total_entries());
    }

    // ----------------------------------------------------------- axis ---

    /// Every coordinate inside the axis lands in a bin whose edges contain
    /// it.
    #[test]
    fn axis_coord_bin_consistency(
        nbins in 1usize..200,
        lo in -1e3f64..1e3,
        width in 1e-3f64..1e3,
        frac in 0.0f64..1.0,
    ) {
        let hi = lo + width;
        let axis = Axis::fixed(nbins, lo, hi);
        let x = lo + frac * width * 0.999_999;
        let idx = axis.coord_to_index(x);
        prop_assert!(idx >= 0, "in-range coord must not under/overflow");
        let i = idx as usize;
        prop_assert!(x >= axis.bin_lower_edge(i) - 1e-9 * width);
        prop_assert!(x < axis.bin_upper_edge(i) + 1e-9 * width);
    }

    // ----------------------------------------------------------- glob ---

    /// A literal pattern (no wildcards) matches exactly itself,
    /// case-insensitively; adding a `*` prefix/suffix still matches.
    #[test]
    fn glob_literal_and_star(text in "[a-z0-9_./-]{0,24}") {
        prop_assert!(glob_match(&text, &text));
        prop_assert!(glob_match(&text.to_uppercase(), &text));
        let suffixed = format!("{text}*");
        let prefixed = format!("*{text}");
        prop_assert!(glob_match(&suffixed, &text));
        prop_assert!(glob_match(&prefixed, &text));
        prop_assert!(glob_match("*", &text));
    }

    // ------------------------------------------------------------ fit ---

    /// Least squares recovers arbitrary grid-equation coefficients from
    /// noiseless samples of that equation.
    #[test]
    fn fit_recovers_random_grid_equation(
        a in 0.01f64..10.0,
        c in 0.0f64..500.0,
        d in 0.0f64..500.0,
        b in 0.01f64..20.0,
    ) {
        let truth = GridEquation { a_s_per_mb: a, c_s: c, d_s: d, b_s_per_mb: b };
        let mut samples = Vec::new();
        for &x in &[1.0, 7.0, 40.0, 200.0, 800.0] {
            for &n in &[1usize, 2, 5, 9, 17] {
                samples.push((x, n, truth.total_s(x, n)));
            }
        }
        let fit = fit_grid_equation(&samples).unwrap();
        let scale = 1.0 + a.abs() + c.abs() + d.abs() + b.abs();
        prop_assert!((fit.a_s_per_mb - a).abs() < 1e-6 * scale);
        prop_assert!((fit.c_s - c).abs() < 1e-5 * scale);
        prop_assert!((fit.d_s - d).abs() < 1e-5 * scale);
        prop_assert!((fit.b_s_per_mb - b).abs() < 1e-6 * scale);
    }

    // -------------------------------------------------------- simgrid ---

    /// Simulated session times are monotone: more data never takes less
    /// time; more nodes never increase the analysis phase.
    #[test]
    fn simulation_monotonicity(mb in 0.0f64..2000.0, n in 1usize..64) {
        let cal = ipa::simgrid::PaperCalibration::paper2006();
        let base = ipa::simgrid::simulate_session(mb, n, &cal);
        let more_data = ipa::simgrid::simulate_session(mb + 50.0, n, &cal);
        prop_assert!(more_data.total_s >= base.total_s);
        let more_nodes = ipa::simgrid::simulate_session(mb, n * 2, &cal);
        prop_assert!(more_nodes.analysis_s <= base.analysis_s + 1e-9);
    }
}

proptest! {
    // ----------------------------------------------------- streaming ---

    /// The streaming writer produces byte-identical output to the bulk
    /// encoder, and the streaming reader inverts it, for all domains.
    #[test]
    fn stream_io_round_trips(records in arb_records()) {
        use ipa::dataset::{StreamReader, StreamWriter, DatasetKind};
        let kind = records
            .first()
            .map(|r| match r {
                AnyRecord::Event(_) => DatasetKind::Event,
                AnyRecord::Dna(_) => DatasetKind::Dna,
                AnyRecord::Trade(_) => DatasetKind::Trade,
            })
            .unwrap_or(DatasetKind::Event);
        let mut out = Vec::new();
        let mut w = StreamWriter::new(&mut out, kind, records.len() as u64).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        prop_assert_eq!(&out, &encode_dataset(&records));

        let reader = StreamReader::new(&out[..]).unwrap();
        let back: Result<Vec<AnyRecord>, _> = reader.collect();
        prop_assert_eq!(back.unwrap(), records);
    }
}

// ------------------------------------------------- failure recovery ---

proptest! {
    // Full sessions with live engine threads are expensive; a handful of
    // randomized cases per run is plenty to keep the invariant honest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Killing an engine mid-run — at an arbitrary point, with an
    /// arbitrary retry budget — never double-counts: the part is
    /// invalidated and requeued (to the same engine if the budget allows
    /// a retry, otherwise to a survivor) and the finished run matches a
    /// failure-free one exactly, record for record.
    #[test]
    fn kill_and_requeue_never_double_counts(
        events in 200u64..800,
        engines in 2usize..5,
        fail_after in 0u64..400,
        retries in 0u32..3,
    ) {
        use std::time::Duration;
        use ipa::catalog::Metadata;
        use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
        use ipa::dataset::{generate_dataset, DatasetId, EventGeneratorConfig};
        use ipa::simgrid::{SecurityDomain, VoPolicy};

        let sec = SecurityDomain::new("prop", 9).with_policy(VoPolicy::new("vo", 32));
        let m = ManagerNode::new(
            "prop-site",
            sec.clone(),
            IpaConfig {
                publish_every: 50,
                max_part_retries: retries,
                ..Default::default()
            },
        );
        m.publish_dataset(
            "/d",
            generate_dataset(
                "ds",
                "ds",
                &ipa::dataset::GeneratorConfig::Event(EventGeneratorConfig {
                    events,
                    ..Default::default()
                }),
            ),
            Metadata::new(),
        )
        .unwrap();
        let proxy = sec.issue_proxy("/CN=prop", "vo", 0.0, 1e6);
        let mut s = m.create_session(&proxy, 0.0, engines).unwrap();
        s.select_dataset(&DatasetId::new("ds")).unwrap();
        s.load_code(AnalysisCode::Native("higgs-search".into())).unwrap();
        s.inject_failure(0, fail_after);
        s.run().unwrap();
        let st = s.wait_finished(Duration::from_secs(60)).unwrap();

        prop_assert_eq!(st.records_processed, events);
        prop_assert_eq!(st.parts_done, st.parts_total);
        // The injected fault fires at most once (a retried engine has its
        // fault consumed), so at most one failure record exists.
        prop_assert!(s.failures().len() <= 1, "{:?}", s.failures());
        let tree = s.results().unwrap();
        prop_assert_eq!(
            tree.get("/higgs/n_btags").unwrap().entries(),
            events,
            "exactly-once processing after kill-and-requeue"
        );
        s.close();
    }
}

// ------------------------------------------------------ query algebra ---

fn arb_meta() -> impl Strategy<Value = ipa::catalog::Metadata> {
    proptest::collection::btree_map(
        "[a-c]",
        prop_oneof![
            (-10i64..10).prop_map(|n| ipa::catalog::MetaValue::Num(n as f64)),
            any::<bool>().prop_map(ipa::catalog::MetaValue::Bool),
            "[a-c]{0,3}".prop_map(ipa::catalog::MetaValue::Str),
        ],
        0..4,
    )
}

fn arb_query_text() -> impl Strategy<Value = String> {
    // Small comparisons over the same tiny key/value space as arb_meta.
    let atom = (
        "[a-c]",
        prop_oneof![Just("=="), Just("!="), Just("<"), Just(">="), Just("~")],
        prop_oneof![
            (-10i64..10).prop_map(|n| n.to_string()),
            "[a-c]{0,3}".prop_map(|s| format!("\"{s}\"")),
        ],
    )
        .prop_map(|(k, op, v)| format!("{k} {op} {v}"));
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) and ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) or ({b})")),
            inner.prop_map(|a| format!("not ({a})")),
        ]
    })
}

proptest! {
    /// De Morgan over the query language: `not (A and B)` ≡
    /// `(not A) or (not B)` for arbitrary queries and metadata.
    #[test]
    fn query_de_morgan(a in arb_query_text(), b in arb_query_text(), m in arb_meta()) {
        use ipa::catalog::parse_query;
        let lhs = parse_query(&format!("not (({a}) and ({b}))")).unwrap();
        let rhs = parse_query(&format!("(not ({a})) or (not ({b}))")).unwrap();
        prop_assert_eq!(lhs.eval(&m), rhs.eval(&m), "a={} b={} m={:?}", a, b, m);
    }

    /// Double negation is the identity.
    #[test]
    fn query_double_negation(a in arb_query_text(), m in arb_meta()) {
        use ipa::catalog::parse_query;
        let plain = parse_query(&a).unwrap();
        let doubled = parse_query(&format!("not (not ({a}))")).unwrap();
        prop_assert_eq!(plain.eval(&m), doubled.eval(&m));
    }

    /// Parsing is total on generated queries and the AST survives a
    /// serde round trip with identical semantics.
    #[test]
    fn query_ast_serde_semantics(a in arb_query_text(), m in arb_meta()) {
        use ipa::catalog::parse_query;
        let q = parse_query(&a).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: ipa::catalog::Query = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(q.eval(&m), back.eval(&m));
    }
}

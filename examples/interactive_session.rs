//! The interactivity tour: every control the paper's client exposes —
//! run-N-events, pause/resume, rewind, *dynamic code reload* between runs,
//! switching datasets mid-session, and surviving an engine failure.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::client::IpaClient;
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
use ipa::dataset::{generate_dataset, EventGeneratorConfig, GeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

const LOOSE: &str = r#"
    fn init() { h1("/sel/mass", 30, 0.0, 240.0); }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/sel/mass", m); }
    }
"#;

// "After every iteration of the analysis, changes can be made in the
// analysis code and the new analysis code can be dynamically reloaded and
// used to reprocess the same dataset." — §3.6
const TIGHT: &str = r#"
    fn init() { h1("/sel/mass", 30, 0.0, 240.0); }
    fn process(e) {
        let m = e.bb_mass;
        if m != null && m > 100 && m < 140 { fill("/sel/mass", m); }
    }
"#;

fn entries(session: &mut ipa::core::Session) -> u64 {
    session
        .results()
        .expect("merged")
        .get("/sel/mass")
        .map(|o| o.entries())
        .unwrap_or(0)
}

fn main() {
    let security = SecurityDomain::new("slac-osg", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "slac.stanford.edu",
        security.clone(),
        IpaConfig {
            publish_every: 500,
            ..Default::default()
        },
    ));
    for (id, events, seed) in [("lc-run-a", 12_000u64, 1u64), ("lc-run-b", 6_000, 2)] {
        manager
            .publish_dataset(
                "/lc",
                generate_dataset(
                    id,
                    id,
                    &GeneratorConfig::Event(EventGeneratorConfig {
                        events,
                        seed,
                        ..Default::default()
                    }),
                ),
                ipa::catalog::Metadata::new(),
            )
            .expect("publish");
    }

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/CN=alice", "ilc", 0.0, 7200.0);
    let mut s = client.connect(0.0, 4).expect("session");
    s.select_dataset(&client.find_dataset("id == \"lc-run-a\"").unwrap())
        .expect("staged");
    s.load_code(AnalysisCode::Script(LOOSE.into()))
        .expect("code");

    // --- run a specific number of events ---------------------------------
    s.run_events(500).expect("runN");
    std::thread::sleep(Duration::from_millis(400));
    let st = s.poll().expect("poll");
    println!(
        "run_events(500) on 4 engines → {} records processed (expect 2000)",
        st.records_processed
    );

    // --- pause / resume ---------------------------------------------------
    s.run().expect("resume");
    std::thread::sleep(Duration::from_millis(10));
    s.pause().expect("pause");
    std::thread::sleep(Duration::from_millis(200));
    let frozen = s.poll().expect("poll").records_processed;
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(frozen, s.poll().expect("poll").records_processed);
    println!("paused at {frozen} records — counter frozen, partial plots still visible");

    // --- finish the loose run ---------------------------------------------
    s.run().expect("resume");
    s.wait_finished(Duration::from_secs(120)).expect("finish");
    let loose = entries(&mut s);
    println!("loose selection finished: {loose} entries in /sel/mass");

    // --- edit code, reload, rewind, reprocess ------------------------------
    s.load_code(AnalysisCode::Script(TIGHT.into()))
        .expect("reload");
    s.rewind().expect("rewind");
    s.run().expect("rerun");
    s.wait_finished(Duration::from_secs(120)).expect("finish");
    let tight = entries(&mut s);
    println!("tight selection after live reload: {tight} entries (fewer than {loose})");
    assert!(tight < loose);

    // --- switch datasets mid-session ---------------------------------------
    s.select_dataset(&client.find_dataset("id == \"lc-run-b\"").unwrap())
        .expect("switch dataset");
    s.run().expect("run on new dataset");
    let st = s.wait_finished(Duration::from_secs(120)).expect("finish");
    println!(
        "switched to lc-run-b without recreating the session: {} records",
        st.records_processed
    );

    // --- engine failure recovery -------------------------------------------
    s.rewind().expect("rewind");
    s.inject_failure(2, 700);
    s.run().expect("run with doomed engine");
    let st = s.wait_finished(Duration::from_secs(120)).expect("finish");
    println!(
        "engine 2 died mid-run; {} engines finished all {} parts anyway ({} records, exactly once)",
        st.engines_alive, st.parts_done, st.records_processed
    );
    for rec in s.failures() {
        println!(
            "  failure log: epoch {} engine {} part {:?}: {}",
            rec.epoch, rec.engine, rec.part, rec.message
        );
    }
    s.close();
}

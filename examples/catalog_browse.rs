//! Figure 3: the dataset catalog chooser.
//!
//! Builds a hierarchical catalog over several simulated datasets (all three
//! domains), renders the browse tree, and runs metadata queries — the
//! "browse or search with a query pattern" requirement of §2.1/§3.3.
//!
//! ```text
//! cargo run --release --example catalog_browse
//! ```

use std::sync::Arc;

use ipa::catalog::{MetaValue, Metadata};
use ipa::client::IpaClient;
use ipa::core::{IpaConfig, ManagerNode};
use ipa::dataset::{
    generate_dataset, DnaGeneratorConfig, EventGeneratorConfig, GeneratorConfig,
    TradeGeneratorConfig,
};
use ipa::simgrid::{SecurityDomain, VoPolicy};

fn meta(pairs: &[(&str, MetaValue)]) -> Metadata {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn main() {
    let security = SecurityDomain::new("slac-osg", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "slac.stanford.edu",
        security.clone(),
        IpaConfig::default(),
    ));

    // Publish datasets across a folder hierarchy, as the Figure-3 chooser
    // shows (experiment / simulation / domain sub-trees).
    let pubs: Vec<(&str, ipa::dataset::Dataset, Metadata)> = vec![
        (
            "/lc/simulation/higgs",
            generate_dataset(
                "lc-higgs-500gev",
                "ZH → X bb̄ sample at 500 GeV",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 5_000,
                    ..Default::default()
                }),
            ),
            meta(&[
                ("detector", "SiD".into()),
                ("energy", 500i64.into()),
                ("generator", "simulated".into()),
                ("year", 2006i64.into()),
            ]),
        ),
        (
            "/lc/simulation/zpole",
            generate_dataset(
                "lc-zpole",
                "Z-pole calibration sample",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 2_000,
                    seed: 91,
                    signal_fraction: 0.0,
                    ..Default::default()
                }),
            ),
            meta(&[("detector", "SiD".into()), ("energy", 91i64.into())]),
        ),
        (
            "/bio/reads",
            generate_dataset(
                "dna-lane4",
                "Sequencing lane 4",
                &GeneratorConfig::Dna(DnaGeneratorConfig {
                    reads: 3_000,
                    ..Default::default()
                }),
            ),
            meta(&[("organism", "human".into()), ("lane", 4i64.into())]),
        ),
        (
            "/finance/trades",
            generate_dataset(
                "nyse-day-17",
                "One trading day",
                &GeneratorConfig::Trade(TradeGeneratorConfig {
                    trades: 10_000,
                    ..Default::default()
                }),
            ),
            meta(&[("exchange", "NYSE".into()), ("day", 17i64.into())]),
        ),
    ];
    for (folder, ds, m) in pubs {
        manager.publish_dataset(folder, ds, m).expect("publish");
    }

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/CN=alice", "ilc", 0.0, 7200.0);

    println!("=== catalog tree (the Figure-3 chooser) ===");
    println!("{}", client.catalog_tree());

    println!("=== browse /lc/simulation ===");
    for item in client.browse("/lc/simulation").expect("browse") {
        println!("  {item:?}");
    }

    let queries = [
        "energy >= 500",
        "detector == SiD and year == 2006",
        "kind == dna",
        "size_mb > 0.1 && id ~ \"lc-*\"",
        "organism == human or exchange == NYSE",
    ];
    for q in queries {
        println!("\n=== query: {q} ===");
        for hit in client.search(q).expect("query parses") {
            println!(
                "  {}  [{} records, {:.2} MB]  {}",
                hit.descriptor.id,
                hit.descriptor.records,
                hit.descriptor.size_mb(),
                hit.path()
            );
        }
    }
}

//! The paper's reference workload (Figure 4): an interactive Higgs-boson
//! search over simulated Linear-Collider events, written as an *IPAScript*
//! the user can edit between runs, with a live-updating dashboard and SVG
//! export of the final plots.
//!
//! ```text
//! cargo run --release --example higgs_search
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::client::{export_svg_plots, render_dashboard, DashboardOptions, IpaClient};
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
use ipa::dataset::{generate_dataset, EventGeneratorConfig, GeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

/// The user's analysis code — the editable part of the session.
const ANALYSIS: &str = r#"
    # Higgs search: plot the invariant mass of the two leading b-tagged
    # jets, with basic control plots.
    fn init() {
        h1("/higgs/bb_mass", 60, 0.0, 240.0);
        h1("/higgs/n_btags", 8, 0.0, 8.0);
        prof("/higgs/mass_vs_nbtag", 8, 0.0, 8.0);
        log("plots booked");
    }
    fn process(e) {
        fill("/higgs/n_btags", e.n_btags);
        let m = e.bb_mass;
        if m != null {
            fill("/higgs/bb_mass", m);
            pfill("/higgs/mass_vs_nbtag", e.n_btags, m);
        }
    }
    fn end() { log("part complete"); }
"#;

fn main() {
    let security = SecurityDomain::new("slac-osg", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "slac.stanford.edu",
        security.clone(),
        IpaConfig {
            publish_every: 2_000,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/lc/simulation",
            generate_dataset(
                "lc-higgs",
                "Simulated LC events (12% ZH signal)",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 60_000,
                    ..Default::default()
                }),
            ),
            ipa::catalog::Metadata::new(),
        )
        .expect("publish");

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/DC=org/CN=physicist", "ilc", 0.0, 7200.0);
    let mut session = client.connect(0.0, 8).expect("session");
    let id = client.find_dataset("id == \"lc-higgs\"").expect("found");
    session.select_dataset(&id).expect("staged");
    session
        .load_code(AnalysisCode::Script(ANALYSIS.into()))
        .expect("script compiles");

    // Live monitoring: print a dashboard snapshot a few times while the
    // engines crunch (the Figure-4 window refreshing).
    let mut frames = 0u32;
    let report = ipa::client::monitor_run(
        &mut session,
        Duration::from_millis(20),
        Duration::from_secs(300),
        |status, session| {
            frames += 1;
            if frames % 10 == 1 {
                let tree = session.results().expect("merged");
                println!(
                    "{}",
                    render_dashboard(
                        "physicist@slac — Higgs search",
                        status,
                        &tree,
                        &DashboardOptions {
                            max_plots: 1,
                            ..Default::default()
                        },
                    )
                );
            }
        },
    )
    .expect("run");

    println!(
        "\nrun finished: {} records, first feedback after {:?}, {} polls",
        report.status.records_processed,
        report.first_feedback.unwrap_or_default(),
        report.polls
    );

    // Final full dashboard + professional-quality SVGs.
    let tree = session.results().expect("merged");
    println!(
        "{}",
        render_dashboard(
            "physicist@slac — final",
            &report.status,
            &tree,
            &DashboardOptions::default(),
        )
    );
    let dir = std::path::Path::new("reproduction/higgs_plots");
    let files = export_svg_plots(&tree, dir).expect("svg export");
    println!("wrote {} SVG plots to {}", files.len(), dir.display());

    // Measure the resonance: Gaussian fit on the merged mass spectrum.
    let mass = tree
        .get("/higgs/bb_mass")
        .expect("booked")
        .as_h1()
        .expect("1-D");
    match ipa::aida::fit_gaussian(mass, 1.2) {
        Some(fit) => println!(
            "\nfitted Higgs candidate: m = {:.1} GeV, σ = {:.1} GeV ({} bins) — generated at 120 GeV",
            fit.mean, fit.sigma, fit.bins_used
        ),
        None => println!("\nno clear peak found (statistics too low?)"),
    }
    session.close();
}

//! Domain example beyond physics (§1: "stock trading records in
//! business"): VWAP and trade-size analysis over a synthetic trading day,
//! using the compiled native analyzer (the "Java class" path).
//!
//! ```text
//! cargo run --release --example stock_trades
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::aida::render::{render_h1_ascii, AsciiOptions};
use ipa::client::IpaClient;
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
use ipa::dataset::{generate_dataset, GeneratorConfig, TradeGeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

fn main() {
    let security = SecurityDomain::new("fin-grid", 8).with_policy(VoPolicy::new("quant", 8));
    let manager = Arc::new(ManagerNode::new(
        "fin.example.org",
        security.clone(),
        IpaConfig {
            publish_every: 5_000,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/finance/days",
            generate_dataset(
                "day-2006-08-14",
                "Trading day (ICPP'06 opening day)",
                &GeneratorConfig::Trade(TradeGeneratorConfig {
                    trades: 100_000,
                    ..Default::default()
                }),
            ),
            ipa::catalog::Metadata::new(),
        )
        .expect("publish");

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/CN=quant", "quant", 0.0, 7200.0);
    let mut s = client.connect(0.0, 6).expect("session");
    s.select_dataset(&client.find_dataset("kind == trade").unwrap())
        .expect("staged");
    // Native analyzer — the compiled "Java class" path of §3.5.
    s.load_code(AnalysisCode::Native("trade-vwap".into()))
        .expect("registered analyzer");
    s.run().expect("run");
    let st = s.wait_finished(Duration::from_secs(300)).expect("finish");
    println!(
        "analyzed {} trades on {} engines\n",
        st.records_processed, st.engines_alive
    );

    let tree = s.results().expect("merged");
    let price = tree.get("/trade/price").unwrap().as_h1().unwrap();
    println!("{}", render_h1_ascii(price, &AsciiOptions::default()));
    println!(
        "session VWAP (volume-weighted mean price): {:.2}",
        price.mean()
    );
    let volume = tree.get("/trade/volume").unwrap().as_h1().unwrap();
    println!("mean trade size: {:.1} shares", volume.mean());
    s.close();
}

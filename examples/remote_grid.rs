//! The deployed shape of the paper: client and manager node on *different
//! machines*, talking only through the web-services boundary. Here the
//! "grid site" runs a TCP gateway in this process and the "desktop client"
//! connects to it via a socket — swap the address for a real remote host
//! and nothing else changes.
//!
//! ```text
//! cargo run --release --example remote_grid
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::client::RemoteSession;
use ipa::core::{IpaConfig, ManagerNode, WsGateway};
use ipa::dataset::{generate_dataset, EventGeneratorConfig, GeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

const ANALYSIS: &str = r#"
    fn init() { h1("/remote/mass", 48, 0.0, 240.0); }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/remote/mass", m); }
    }
"#;

fn main() {
    // ---- "grid site" machine -------------------------------------------
    let security = SecurityDomain::new("slac-osg", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "slac.stanford.edu",
        security.clone(),
        IpaConfig {
            publish_every: 2_000,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/lc",
            generate_dataset(
                "lc-remote-demo",
                "LC events served over the wire",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 30_000,
                    ..Default::default()
                }),
            ),
            ipa::catalog::Metadata::new(),
        )
        .expect("publish");
    let mut gateway = WsGateway::serve(manager, ("127.0.0.1", 0)).expect("bind gateway");
    println!("grid site gateway listening on {}", gateway.addr());

    // ---- "desktop client" machine ---------------------------------------
    let proxy = security.issue_proxy("/DC=org/CN=traveller", "ilc", 0.0, 7200.0);
    let mut session = RemoteSession::create(gateway.addr(), proxy, 0.0, 4).expect("remote session");
    println!(
        "created remote session {} with {} engines",
        session.id(),
        session.engines()
    );

    session.select_dataset("lc-remote-demo").expect("staged");
    session.load_script(ANALYSIS).expect("script shipped");
    session.run().expect("run started");

    let t0 = std::time::Instant::now();
    let mut last = 0u64;
    loop {
        let st = session.poll().expect("poll over TCP");
        if st.records_processed != last {
            println!(
                "  [{:6.1?}] {:>6} / {} records, {} parts done",
                t0.elapsed(),
                st.records_processed,
                st.records_total,
                st.parts_done
            );
            last = st.records_processed;
        }
        if st.state == ipa::core::RunState::Finished {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let tree = session.results().expect("merged tree over TCP");
    let mass = tree.get("/remote/mass").unwrap().as_h1().unwrap();
    println!(
        "\nmerged spectrum arrived over the wire: {} entries, mean {:.1} GeV",
        mass.entries(),
        mass.mean()
    );
    // Search above the combinatorial continuum.
    if let Some(fit) = ipa::aida::fit_gaussian_in(mass, 80.0, 200.0, 1.2) {
        println!(
            "fitted peak: m = {:.1} GeV, σ = {:.1} GeV",
            fit.mean, fit.sigma
        );
    }
    session.close().expect("close");
    gateway.shutdown();
    println!("session closed, gateway down");
}

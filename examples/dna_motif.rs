//! Domain example beyond physics (§1: "DNA sequencing combinations in
//! cellular biology"): motif counting and GC profiling over synthetic
//! sequencing reads, using an IPAScript with string builtins.
//!
//! ```text
//! cargo run --release --example dna_motif
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::aida::render::{render_h1_ascii, render_profile_ascii, AsciiOptions};
use ipa::client::IpaClient;
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
use ipa::dataset::{generate_dataset, DnaGeneratorConfig, GeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

const SCRIPT: &str = r#"
    fn init() {
        h1("/dna/motif_hits", 8, 0.0, 8.0);
        h1("/dna/read_length", 40, 0.0, 400.0);
        prof("/dna/gc_by_sample", 4, 0.0, 4.0);
    }
    fn process(r) {
        fill("/dna/read_length", r.length);
        fill("/dna/motif_hits", count_matches(r.bases, "GATTACA"));
        pfill("/dna/gc_by_sample", r.sample, r.gc_content);
    }
"#;

fn main() {
    let security = SecurityDomain::new("bio-grid", 4).with_policy(VoPolicy::new("genome", 8));
    let manager = Arc::new(ManagerNode::new(
        "bio.example.org",
        security.clone(),
        IpaConfig {
            publish_every: 1_000,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/bio/lanes",
            generate_dataset(
                "lane-7",
                "Sequencing lane 7",
                &GeneratorConfig::Dna(DnaGeneratorConfig {
                    reads: 30_000,
                    motif_rate: 0.25,
                    ..Default::default()
                }),
            ),
            ipa::catalog::Metadata::new(),
        )
        .expect("publish");

    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/CN=biologist", "genome", 0.0, 7200.0);
    let mut s = client.connect(0.0, 4).expect("session");
    s.select_dataset(&client.find_dataset("kind == dna").unwrap())
        .expect("staged");
    s.load_code(AnalysisCode::Script(SCRIPT.into()))
        .expect("code");
    s.run().expect("run");
    let st = s.wait_finished(Duration::from_secs(300)).expect("finish");
    println!(
        "analyzed {} reads on {} engines\n",
        st.records_processed, st.engines_alive
    );

    let tree = s.results().expect("merged");
    let opts = AsciiOptions::default();
    let hits = tree.get("/dna/motif_hits").unwrap().as_h1().unwrap();
    println!("{}", render_h1_ascii(hits, &opts));
    let gc = tree.get("/dna/gc_by_sample").unwrap().as_p1().unwrap();
    println!("{}", render_profile_ascii(gc, &opts));
    println!(
        "reads containing GATTACA at least once: {:.1}%",
        100.0 * (hits.entries() as f64 - hits.bin_height(0)) / hits.entries() as f64
    );
    s.close();
}

//! Quickstart: the smallest end-to-end IPA session.
//!
//! Stands up a (simulated) grid site, publishes a synthetic dataset,
//! connects a client with a grid proxy, runs the built-in Higgs-search
//! analyzer on 4 parallel engines, and prints the merged mass spectrum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use ipa::aida::render::{render_h1_ascii, AsciiOptions};
use ipa::client::IpaClient;
use ipa::core::{AnalysisCode, IpaConfig, ManagerNode};
use ipa::dataset::{generate_dataset, EventGeneratorConfig, GeneratorConfig};
use ipa::simgrid::{SecurityDomain, VoPolicy};

fn main() {
    // --- site side -------------------------------------------------------
    let security = SecurityDomain::new("slac-osg", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "slac.stanford.edu",
        security.clone(),
        IpaConfig::default(),
    ));
    let dataset = generate_dataset(
        "lc-higgs-2006",
        "Simulated Linear Collider events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: 20_000,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/lc/simulation", dataset, ipa::catalog::Metadata::new())
        .expect("publish dataset");

    // --- client side -----------------------------------------------------
    let mut client = IpaClient::new(manager);
    client.grid_proxy_init(&security, "/DC=org/CN=alice", "ilc", 0.0, 7200.0);

    // Step 1: create a session (starts 4 analysis engines).
    let mut session = client.connect(0.0, 4).expect("create session");
    // Step 2: choose the dataset from the catalog.
    let id = client
        .find_dataset("id == \"lc-higgs-2006\"")
        .expect("dataset in catalog");
    session.select_dataset(&id).expect("stage dataset");
    // Step 3: load analysis code and run.
    session
        .load_code(AnalysisCode::Native("higgs-search".into()))
        .expect("load code");
    session.run().expect("start run");
    // Step 4: collect the merged result.
    let status = session
        .wait_finished(Duration::from_secs(120))
        .expect("run finishes");
    println!(
        "processed {} records on {} engines\n",
        status.records_processed, status.engines_alive
    );

    let tree = session.results().expect("merged results");
    let mass = tree
        .get("/higgs/bb_mass")
        .expect("booked plot")
        .as_h1()
        .expect("1-D histogram");
    println!("{}", render_h1_ascii(mass, &AsciiOptions::default()));
    session.close();
}

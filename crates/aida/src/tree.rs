//! Hierarchical named-object tree (AIDA `ITree`).
//!
//! Analysis code books objects under absolute paths (`/higgs/mass`), and the
//! whole tree is the unit of result exchange: each analysis engine ships its
//! tree to the AIDA manager, which merges trees path-by-path. Paths are
//! `/`-separated, directories are implicit, and iteration order is
//! deterministic (sorted) so merged output is stable.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::object::{AidaObject, MergeError, Mergeable, ObjectDelta};

/// Errors from tree operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// Path is syntactically invalid (empty, relative, empty segment).
    BadPath(String),
    /// No object stored at the path.
    NotFound(String),
    /// An object already exists at the path.
    AlreadyExists(String),
    /// Merging the object at a path failed.
    Merge {
        /// The path whose objects could not be combined.
        path: String,
        /// The underlying merge error.
        source: MergeError,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::BadPath(p) => write!(f, "bad object path '{p}'"),
            TreeError::NotFound(p) => write!(f, "no object at '{p}'"),
            TreeError::AlreadyExists(p) => write!(f, "object already exists at '{p}'"),
            TreeError::Merge { path, source } => write!(f, "merging '{path}': {source}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Validate and normalize an absolute object path.
///
/// Rules: must start with `/`, must have at least one segment, no empty
/// segments, no trailing slash. Returns the normalized form.
pub fn normalize_path(path: &str) -> Result<String, TreeError> {
    if !path.starts_with('/') {
        return Err(TreeError::BadPath(path.to_string()));
    }
    let segs: Vec<&str> = path[1..].split('/').collect();
    if segs.is_empty() || segs.iter().any(|s| s.is_empty()) {
        return Err(TreeError::BadPath(path.to_string()));
    }
    Ok(format!("/{}", segs.join("/")))
}

/// A sorted map from absolute path to [`AidaObject`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    objects: BTreeMap<String, AidaObject>,
}

impl Tree {
    /// New empty tree.
    pub fn new() -> Self {
        Tree::default()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Store an object, failing if the path is taken.
    pub fn put(&mut self, path: &str, obj: impl Into<AidaObject>) -> Result<(), TreeError> {
        let p = normalize_path(path)?;
        if self.objects.contains_key(&p) {
            return Err(TreeError::AlreadyExists(p));
        }
        self.objects.insert(p, obj.into());
        Ok(())
    }

    /// Store an object, replacing any existing one at the path.
    pub fn put_replace(&mut self, path: &str, obj: impl Into<AidaObject>) -> Result<(), TreeError> {
        let p = normalize_path(path)?;
        self.objects.insert(p, obj.into());
        Ok(())
    }

    /// Borrow the object at `path`.
    pub fn get(&self, path: &str) -> Result<&AidaObject, TreeError> {
        let p = normalize_path(path)?;
        self.objects.get(&p).ok_or(TreeError::NotFound(p))
    }

    /// Mutably borrow the object at `path`.
    pub fn get_mut(&mut self, path: &str) -> Result<&mut AidaObject, TreeError> {
        let p = normalize_path(path)?;
        self.objects.get_mut(&p).ok_or(TreeError::NotFound(p))
    }

    /// Remove and return the object at `path`.
    pub fn remove(&mut self, path: &str) -> Result<AidaObject, TreeError> {
        let p = normalize_path(path)?;
        self.objects.remove(&p).ok_or(TreeError::NotFound(p))
    }

    /// True if an object exists at `path`.
    pub fn contains(&self, path: &str) -> bool {
        normalize_path(path)
            .map(|p| self.objects.contains_key(&p))
            .unwrap_or(false)
    }

    /// All object paths, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.objects.keys().map(String::as_str)
    }

    /// Iterate `(path, object)` pairs in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AidaObject)> {
        self.objects.iter().map(|(p, o)| (p.as_str(), o))
    }

    /// Direct children of directory `dir`: object names and sub-directory
    /// names (each sub-directory listed once, with a trailing `/`).
    pub fn ls(&self, dir: &str) -> Result<Vec<String>, TreeError> {
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{}/", normalize_path(dir)?)
        };
        let mut out: Vec<String> = Vec::new();
        for path in self.objects.keys() {
            if let Some(rest) = path.strip_prefix(&prefix) {
                let entry = match rest.find('/') {
                    Some(i) => format!("{}/", &rest[..i]),
                    None => rest.to_string(),
                };
                if out.last() != Some(&entry) && !out.contains(&entry) {
                    out.push(entry);
                }
            }
        }
        Ok(out)
    }

    /// All paths under a directory prefix (recursive).
    pub fn find(&self, dir: &str) -> Vec<&str> {
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            match normalize_path(dir) {
                Ok(p) => format!("{p}/"),
                Err(_) => return Vec::new(),
            }
        };
        self.objects
            .keys()
            .filter(|p| p.starts_with(&prefix))
            .map(String::as_str)
            .collect()
    }

    /// Total entries across all objects (used as a progress heartbeat).
    pub fn total_entries(&self) -> u64 {
        self.objects.values().map(AidaObject::entries).sum()
    }

    /// Reset every object's contents (booked structure survives).
    pub fn reset_all(&mut self) {
        for obj in self.objects.values_mut() {
            match obj {
                AidaObject::H1(h) => h.reset(),
                AidaObject::H2(h) => h.reset(),
                AidaObject::P1(p) => p.reset(),
                AidaObject::C1(c) => c.reset(),
                AidaObject::C2(c) => c.reset(),
                AidaObject::Dps(d) => d.clear(),
                AidaObject::Tup(t) => t.reset(),
            }
        }
    }
}

impl Mergeable for Tree {
    /// Merge another tree path-by-path: common paths merge their objects,
    /// paths only in `other` are copied in.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        for (path, theirs) in &other.objects {
            match self.objects.get_mut(path) {
                Some(ours) => ours.merge(theirs)?,
                None => {
                    self.objects.insert(path.clone(), theirs.clone());
                }
            }
        }
        Ok(())
    }
}

/// What changed in a [`Tree`] since an earlier snapshot of the same tree.
///
/// Produced by [`Tree::diff_since`] and consumed by [`Tree::apply_delta`];
/// the contract is exact reconstruction: `apply(baseline, delta) ==
/// current`, bit-for-bit, including floating-point bin contents. Engines ship
/// these instead of full tree clones on every publish.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TreeDelta {
    /// Per-path changes (replace or append), sorted by path.
    changes: BTreeMap<String, ObjectDelta>,
    /// Paths present in the baseline but gone from the current tree.
    removed: Vec<String>,
}

impl TreeDelta {
    /// True when the delta carries no changes at all.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.removed.is_empty()
    }

    /// Number of changed (replaced/appended/removed) paths.
    pub fn len(&self) -> usize {
        self.changes.len() + self.removed.len()
    }
}

impl Tree {
    /// Delta that transforms `baseline` (an earlier snapshot of this tree)
    /// into `self`. Unchanged objects are skipped entirely; append-only
    /// objects ship just their new suffix.
    pub fn diff_since(&self, baseline: &Tree) -> TreeDelta {
        let mut delta = TreeDelta::default();
        for (path, obj) in &self.objects {
            match baseline.objects.get(path) {
                Some(old) => {
                    if let Some(change) = obj.diff_from(old) {
                        delta.changes.insert(path.clone(), change);
                    }
                }
                None => {
                    delta
                        .changes
                        .insert(path.clone(), ObjectDelta::Replace(obj.clone()));
                }
            }
        }
        for path in baseline.objects.keys() {
            if !self.objects.contains_key(path) {
                delta.removed.push(path.clone());
            }
        }
        delta
    }

    /// Apply a delta produced by [`Tree::diff_since`] against the same
    /// baseline this tree currently equals. An `Append` for a missing path
    /// is an error (the caller's baseline has drifted — it must resync from
    /// a checkpoint); removals of already-absent paths are harmless because
    /// the end state is identical.
    pub fn apply_delta(&mut self, delta: &TreeDelta) -> Result<(), TreeError> {
        for path in &delta.removed {
            self.objects.remove(path);
        }
        for (path, change) in &delta.changes {
            match change {
                ObjectDelta::Replace(obj) => {
                    self.objects.insert(path.clone(), obj.clone());
                }
                ObjectDelta::Append(suffix) => {
                    let ours = self
                        .objects
                        .get_mut(path)
                        .ok_or_else(|| TreeError::NotFound(path.clone()))?;
                    ours.merge(suffix).map_err(|source| TreeError::Merge {
                        path: path.clone(),
                        source,
                    })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist1d::Histogram1D;
    use crate::profile::Profile1D;

    fn h(title: &str) -> Histogram1D {
        Histogram1D::new(title, 10, 0.0, 1.0)
    }

    #[test]
    fn put_get_remove() {
        let mut t = Tree::new();
        t.put("/a/b/mass", h("m")).unwrap();
        assert!(t.contains("/a/b/mass"));
        assert_eq!(t.get("/a/b/mass").unwrap().title(), "m");
        assert_eq!(t.len(), 1);
        t.remove("/a/b/mass").unwrap();
        assert!(t.is_empty());
        assert!(matches!(t.get("/a/b/mass"), Err(TreeError::NotFound(_))));
    }

    #[test]
    fn duplicate_put_is_rejected_but_replace_works() {
        let mut t = Tree::new();
        t.put("/x", h("1")).unwrap();
        assert!(matches!(
            t.put("/x", h("2")),
            Err(TreeError::AlreadyExists(_))
        ));
        t.put_replace("/x", h("2")).unwrap();
        assert_eq!(t.get("/x").unwrap().title(), "2");
    }

    #[test]
    fn bad_paths_rejected() {
        let mut t = Tree::new();
        assert!(matches!(
            t.put("relative", h("x")),
            Err(TreeError::BadPath(_))
        ));
        assert!(matches!(t.put("/a//b", h("x")), Err(TreeError::BadPath(_))));
        assert!(matches!(t.put("/", h("x")), Err(TreeError::BadPath(_))));
        assert!(matches!(t.put("/a/", h("x")), Err(TreeError::BadPath(_))));
    }

    #[test]
    fn ls_lists_direct_children_only() {
        let mut t = Tree::new();
        t.put("/top/h1", h("a")).unwrap();
        t.put("/top/sub/h2", h("b")).unwrap();
        t.put("/top/sub/h3", h("c")).unwrap();
        t.put("/other", h("d")).unwrap();
        let ls = t.ls("/top").unwrap();
        assert_eq!(ls, vec!["h1".to_string(), "sub/".to_string()]);
        let root = t.ls("/").unwrap();
        assert_eq!(root, vec!["other".to_string(), "top/".to_string()]);
    }

    #[test]
    fn find_is_recursive() {
        let mut t = Tree::new();
        t.put("/a/x", h("1")).unwrap();
        t.put("/a/b/y", h("2")).unwrap();
        t.put("/c/z", h("3")).unwrap();
        assert_eq!(t.find("/a"), vec!["/a/b/y", "/a/x"]);
        assert_eq!(t.find("/").len(), 3);
        assert!(t.find("/nope").is_empty());
    }

    #[test]
    fn merge_combines_and_copies() {
        let mut ours = Tree::new();
        let mut h1 = h("m");
        h1.fill1(0.5);
        ours.put("/m", h1).unwrap();

        let mut theirs = Tree::new();
        let mut h2 = h("m");
        h2.fill1(0.6);
        theirs.put("/m", h2).unwrap();
        let mut p = Profile1D::new("p", 10, 0.0, 1.0);
        p.fill1(0.5, 2.0);
        theirs.put("/only/theirs", p).unwrap();

        ours.merge(&theirs).unwrap();
        assert_eq!(ours.get("/m").unwrap().entries(), 2);
        assert!(ours.contains("/only/theirs"));
        assert_eq!(ours.total_entries(), 3);
    }

    #[test]
    fn merge_kind_conflict_fails() {
        let mut a = Tree::new();
        a.put("/x", h("h")).unwrap();
        let mut b = Tree::new();
        b.put("/x", Profile1D::new("p", 10, 0.0, 1.0)).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn reset_all_keeps_structure() {
        let mut t = Tree::new();
        let mut h1 = h("m");
        h1.fill1(0.5);
        t.put("/m", h1).unwrap();
        t.reset_all();
        assert!(t.contains("/m"));
        assert_eq!(t.total_entries(), 0);
    }

    #[test]
    fn diff_empty_when_unchanged() {
        let mut t = Tree::new();
        let mut h1 = h("m");
        h1.fill1(0.5);
        t.put("/m", h1).unwrap();
        let d = t.diff_since(&t.clone());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn diff_apply_round_trips_replace_append_and_remove() {
        use crate::dps::DataPointSet;
        use crate::tuple::{ColumnType, Tuple, Value};

        let mut base = Tree::new();
        let mut h1 = h("m");
        h1.fill1(0.5);
        base.put("/h", h1).unwrap();
        let mut d0 = DataPointSet::new("pts", 2);
        d0.add_xy(1.0, 2.0, 0.1);
        base.put("/d", d0).unwrap();
        let mut t0 = Tuple::new("rows", &[("x", ColumnType::Float)]);
        t0.fill_row(&[Value::Float(1.0)]).unwrap();
        base.put("/t", t0).unwrap();
        base.put("/gone", h("old")).unwrap();

        // Evolve: histogram refilled (replace), dps/tuple appended, one path
        // removed, one path added.
        let mut cur = base.clone();
        cur.remove("/gone").unwrap();
        if let AidaObject::H1(h) = cur.get_mut("/h").unwrap() {
            h.fill1(0.7);
        }
        if let AidaObject::Dps(d) = cur.get_mut("/d").unwrap() {
            d.add_xy(3.0, 4.0, 0.2);
        }
        if let AidaObject::Tup(t) = cur.get_mut("/t").unwrap() {
            t.fill_row(&[Value::Float(2.0)]).unwrap();
        }
        cur.put("/new", h("fresh")).unwrap();

        let delta = cur.diff_since(&base);
        assert_eq!(delta.len(), 5); // /h, /d, /t, /new changed + /gone removed
                                    // Append-only paths ship suffixes, not full objects.
        assert!(matches!(
            delta.changes.get("/d"),
            Some(ObjectDelta::Append(o)) if o.entries() == 1
        ));
        assert!(matches!(
            delta.changes.get("/t"),
            Some(ObjectDelta::Append(o)) if o.entries() == 1
        ));
        assert!(matches!(
            delta.changes.get("/h"),
            Some(ObjectDelta::Replace(_))
        ));

        let mut rebuilt = base.clone();
        rebuilt.apply_delta(&delta).unwrap();
        assert_eq!(rebuilt, cur);

        // Serde round-trip of the delta itself (it crosses thread channels).
        let s = serde_json::to_string(&delta).unwrap();
        let back: TreeDelta = serde_json::from_str(&s).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn append_for_missing_path_is_a_desync_error() {
        use crate::dps::DataPointSet;
        let mut base = Tree::new();
        let mut d0 = DataPointSet::new("pts", 2);
        d0.add_xy(1.0, 2.0, 0.1);
        base.put("/d", d0).unwrap();
        let mut cur = base.clone();
        if let AidaObject::Dps(d) = cur.get_mut("/d").unwrap() {
            d.add_xy(3.0, 4.0, 0.2);
        }
        let delta = cur.diff_since(&base);
        let mut drifted = Tree::new(); // lost the baseline object
        assert!(matches!(
            drifted.apply_delta(&delta),
            Err(TreeError::NotFound(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Tree::new();
        let mut h1 = h("m");
        h1.fill1(0.25);
        t.put("/dir/m", h1).unwrap();
        let s = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}

//! Ntuples (AIDA `ITuple`): typed column storage with histogram projection.
//!
//! Analysis code frequently books an ntuple, fills one row per event, and
//! later projects columns into histograms. Columns are stored contiguously
//! per type (struct-of-arrays) for cache-friendly scans.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::hist1d::Histogram1D;
use crate::hist2d::Histogram2D;
use crate::object::{MergeError, Mergeable};

/// Supported column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit float column.
    Float,
    /// 64-bit signed integer column.
    Int,
    /// Boolean column.
    Bool,
    /// UTF-8 string column.
    Str,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Float cell.
    Float(f64),
    /// Integer cell.
    Int(i64),
    /// Boolean cell.
    Bool(bool),
    /// String cell.
    Str(String),
}

impl Value {
    /// The [`ColumnType`] this value belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Float(_) => ColumnType::Float,
            Value::Int(_) => ColumnType::Int,
            Value::Bool(_) => ColumnType::Bool,
            Value::Str(_) => ColumnType::Str,
        }
    }

    /// Numeric view: floats as-is, ints/bools widened, strings are None.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Errors from tuple operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TupleError {
    /// A row had the wrong number of cells.
    RowArity {
        /// Columns in the schema.
        expected: usize,
        /// Cells provided.
        got: usize,
    },
    /// A cell's type did not match the column schema.
    CellType {
        /// Offending column name.
        column: String,
        /// Type declared in the schema.
        expected: ColumnType,
        /// Type of the provided cell.
        got: ColumnType,
    },
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// Column is not numeric (projection requested).
    NotNumeric(String),
}

impl fmt::Display for TupleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleError::RowArity { expected, got } => {
                write!(f, "row has {got} cells, schema has {expected} columns")
            }
            TupleError::CellType {
                column,
                expected,
                got,
            } => write!(f, "column '{column}' expects {expected:?}, got {got:?}"),
            TupleError::NoSuchColumn(c) => write!(f, "no such column '{c}'"),
            TupleError::NotNumeric(c) => write!(f, "column '{c}' is not numeric"),
        }
    }
}

impl std::error::Error for TupleError {}

/// Column storage, struct-of-arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ColumnData {
    Float(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl ColumnData {
    fn new(t: ColumnType) -> Self {
        match t {
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Bool(_) => ColumnType::Bool,
            ColumnData::Str(_) => ColumnType::Str,
        }
    }

    fn push(&mut self, v: &Value) -> Result<(), (ColumnType, ColumnType)> {
        match (self, v) {
            (ColumnData::Float(c), Value::Float(x)) => c.push(*x),
            (ColumnData::Int(c), Value::Int(x)) => c.push(*x),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(*x),
            (ColumnData::Str(c), Value::Str(x)) => c.push(x.clone()),
            (me, v) => return Err((me.column_type(), v.column_type())),
        }
        Ok(())
    }

    fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Float(c) => Value::Float(c[row]),
            ColumnData::Int(c) => Value::Int(c[row]),
            ColumnData::Bool(c) => Value::Bool(c[row]),
            ColumnData::Str(c) => Value::Str(c[row].clone()),
        }
    }

    fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Float(c) => Some(c[row]),
            ColumnData::Int(c) => Some(c[row] as f64),
            ColumnData::Bool(c) => Some(if c[row] { 1.0 } else { 0.0 }),
            ColumnData::Str(_) => None,
        }
    }

    fn extend_from(&mut self, other: &ColumnData) {
        match (self, other) {
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b.iter().cloned()),
            _ => unreachable!("schema compatibility checked by caller"),
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnData::Float(c) => c.clear(),
            ColumnData::Int(c) => c.clear(),
            ColumnData::Bool(c) => c.clear(),
            ColumnData::Str(c) => c.clear(),
        }
    }

    /// True when `prefix`'s cells equal our first `prefix.len()` cells.
    fn starts_with(&self, prefix: &ColumnData) -> bool {
        match (self, prefix) {
            (ColumnData::Float(a), ColumnData::Float(b)) => {
                a.len() >= b.len() && a[..b.len()] == b[..]
            }
            (ColumnData::Int(a), ColumnData::Int(b)) => a.len() >= b.len() && a[..b.len()] == b[..],
            (ColumnData::Bool(a), ColumnData::Bool(b)) => {
                a.len() >= b.len() && a[..b.len()] == b[..]
            }
            (ColumnData::Str(a), ColumnData::Str(b)) => a.len() >= b.len() && a[..b.len()] == b[..],
            _ => false,
        }
    }

    /// New column holding cells `[from..]`.
    fn slice_from(&self, from: usize) -> ColumnData {
        match self {
            ColumnData::Float(c) => ColumnData::Float(c[from..].to_vec()),
            ColumnData::Int(c) => ColumnData::Int(c[from..].to_vec()),
            ColumnData::Bool(c) => ColumnData::Bool(c[from..].to_vec()),
            ColumnData::Str(c) => ColumnData::Str(c[from..].to_vec()),
        }
    }
}

/// A titled ntuple with a fixed `(name, type)` column schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    title: String,
    names: Vec<String>,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl Tuple {
    /// New empty tuple from a `(name, type)` schema.
    pub fn new(title: impl Into<String>, schema: &[(&str, ColumnType)]) -> Self {
        Tuple {
            title: title.into(),
            names: schema.iter().map(|(n, _)| n.to_string()).collect(),
            columns: schema.iter().map(|(_, t)| ColumnData::new(*t)).collect(),
            rows: 0,
        }
    }

    /// Tuple title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Column count.
    pub fn columns(&self) -> usize {
        self.names.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Type of column `name`.
    pub fn column_type(&self, name: &str) -> Option<ColumnType> {
        self.index_of(name).map(|i| self.columns[i].column_type())
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Append one row. All cells must match the schema; the row is applied
    /// atomically (either every column grows or none do).
    pub fn fill_row(&mut self, row: &[Value]) -> Result<(), TupleError> {
        if row.len() != self.columns.len() {
            return Err(TupleError::RowArity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        // Validate first so a failed row leaves the tuple untouched.
        for (i, v) in row.iter().enumerate() {
            let expect = self.columns[i].column_type();
            if v.column_type() != expect {
                return Err(TupleError::CellType {
                    column: self.names[i].clone(),
                    expected: expect,
                    got: v.column_type(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v).expect("types validated above");
        }
        self.rows += 1;
        Ok(())
    }

    /// Read cell `(row, column-name)`.
    pub fn get(&self, row: usize, name: &str) -> Result<Value, TupleError> {
        let i = self
            .index_of(name)
            .ok_or_else(|| TupleError::NoSuchColumn(name.to_string()))?;
        Ok(self.columns[i].get(row))
    }

    /// Project a numeric column into a 1-D histogram.
    pub fn project1d(
        &self,
        name: &str,
        nbins: usize,
        lo: f64,
        hi: f64,
    ) -> Result<Histogram1D, TupleError> {
        let i = self
            .index_of(name)
            .ok_or_else(|| TupleError::NoSuchColumn(name.to_string()))?;
        let mut h = Histogram1D::new(format!("{}:{}", self.title, name), nbins, lo, hi);
        for r in 0..self.rows {
            let x = self.columns[i]
                .get_f64(r)
                .ok_or_else(|| TupleError::NotNumeric(name.to_string()))?;
            h.fill1(x);
        }
        Ok(h)
    }

    /// Project two numeric columns into a 2-D histogram.
    #[allow(clippy::too_many_arguments)]
    pub fn project2d(
        &self,
        xname: &str,
        yname: &str,
        nx: usize,
        xlo: f64,
        xhi: f64,
        ny: usize,
        ylo: f64,
        yhi: f64,
    ) -> Result<Histogram2D, TupleError> {
        let ix = self
            .index_of(xname)
            .ok_or_else(|| TupleError::NoSuchColumn(xname.to_string()))?;
        let iy = self
            .index_of(yname)
            .ok_or_else(|| TupleError::NoSuchColumn(yname.to_string()))?;
        let mut h = Histogram2D::new(
            format!("{}:{} vs {}", self.title, yname, xname),
            nx,
            xlo,
            xhi,
            ny,
            ylo,
            yhi,
        );
        for r in 0..self.rows {
            let x = self.columns[ix]
                .get_f64(r)
                .ok_or_else(|| TupleError::NotNumeric(xname.to_string()))?;
            let y = self.columns[iy]
                .get_f64(r)
                .ok_or_else(|| TupleError::NotNumeric(yname.to_string()))?;
            h.fill1(x, y);
        }
        Ok(h)
    }

    /// Remove all rows, keeping the schema.
    pub fn reset(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.rows = 0;
    }

    /// Suffix of rows added since `old`, as a new tuple, when `old` is an
    /// exact row-prefix of `self` (same title and schema). Merging the
    /// returned tuple into `old` reproduces `self` exactly; `None` means no
    /// compact append-delta exists.
    pub fn append_since(&self, old: &Self) -> Option<Self> {
        if self.title != old.title
            || !self.schema_matches(old)
            || old.rows > self.rows
            || !self
                .columns
                .iter()
                .zip(&old.columns)
                .all(|(a, b)| a.starts_with(b))
        {
            return None;
        }
        Some(Tuple {
            title: self.title.clone(),
            names: self.names.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice_from(old.rows))
                .collect(),
            rows: self.rows - old.rows,
        })
    }

    /// Schema equality (names and types).
    pub fn schema_matches(&self, other: &Tuple) -> bool {
        self.names == other.names
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.column_type() == b.column_type())
    }
}

impl Mergeable for Tuple {
    /// Merging appends the other tuple's rows (schemas must match).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.schema_matches(other) {
            return Err(MergeError::IncompatibleBinning {
                what: format!("tuple '{}' schema mismatch", self.title),
            });
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b);
        }
        self.rows += other.rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<(&'static str, ColumnType)> {
        vec![
            ("mass", ColumnType::Float),
            ("ntracks", ColumnType::Int),
            ("triggered", ColumnType::Bool),
            ("tag", ColumnType::Str),
        ]
    }

    fn row(m: f64, n: i64, t: bool, s: &str) -> Vec<Value> {
        vec![
            Value::Float(m),
            Value::Int(n),
            Value::Bool(t),
            Value::Str(s.to_string()),
        ]
    }

    #[test]
    fn fill_and_read_back() {
        let mut t = Tuple::new("events", &schema());
        t.fill_row(&row(125.0, 4, true, "sig")).unwrap();
        t.fill_row(&row(91.0, 2, false, "bkg")).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.get(0, "mass").unwrap(), Value::Float(125.0));
        assert_eq!(t.get(1, "tag").unwrap(), Value::Str("bkg".into()));
        assert_eq!(t.column_type("ntracks"), Some(ColumnType::Int));
    }

    #[test]
    fn wrong_arity_and_type_are_rejected_atomically() {
        let mut t = Tuple::new("events", &schema());
        assert!(matches!(
            t.fill_row(&[Value::Float(1.0)]),
            Err(TupleError::RowArity { .. })
        ));
        let bad = vec![
            Value::Int(1), // wrong: mass is Float
            Value::Int(2),
            Value::Bool(true),
            Value::Str("x".into()),
        ];
        assert!(matches!(t.fill_row(&bad), Err(TupleError::CellType { .. })));
        assert_eq!(t.rows(), 0); // nothing partially applied
    }

    #[test]
    fn projection_1d() {
        let mut t = Tuple::new("events", &schema());
        for m in [10.0, 20.0, 20.5, 90.0] {
            t.fill_row(&row(m, 1, true, "")).unwrap();
        }
        let h = t.project1d("mass", 10, 0.0, 100.0).unwrap();
        assert_eq!(h.entries(), 4);
        assert_eq!(h.bin_entries(2), 2);
        assert!(t.project1d("nope", 10, 0.0, 1.0).is_err());
        assert!(matches!(
            t.project1d("tag", 10, 0.0, 1.0),
            Err(TupleError::NotNumeric(_))
        ));
    }

    #[test]
    fn projection_2d_and_int_widening() {
        let mut t = Tuple::new("events", &schema());
        t.fill_row(&row(50.0, 3, true, "")).unwrap();
        let h = t
            .project2d("mass", "ntracks", 10, 0.0, 100.0, 10, 0.0, 10.0)
            .unwrap();
        assert_eq!(h.bin_entries(5, 3), 1);
    }

    #[test]
    fn merge_appends_rows() {
        let mut a = Tuple::new("e", &schema());
        let mut b = Tuple::new("e", &schema());
        a.fill_row(&row(1.0, 1, true, "a")).unwrap();
        b.fill_row(&row(2.0, 2, false, "b")).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.get(1, "tag").unwrap(), Value::Str("b".into()));

        let c = Tuple::new("e", &[("other", ColumnType::Float)]);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn reset_keeps_schema() {
        let mut t = Tuple::new("e", &schema());
        t.fill_row(&row(1.0, 1, true, "x")).unwrap();
        t.reset();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.columns(), 4);
        t.fill_row(&row(2.0, 2, false, "y")).unwrap();
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}

//! Unbinned "clouds" (AIDA `ICloud1D` / `ICloud2D`).
//!
//! A cloud stores raw `(x, w)` points until a storage budget is exceeded,
//! then automatically converts itself to a histogram whose range covers the
//! points seen so far. This lets analysis code book a plot before knowing the
//! data range — common in exploratory interactive analysis.

use serde::{Deserialize, Serialize};

use crate::hist1d::Histogram1D;
use crate::hist2d::Histogram2D;
use crate::object::{MergeError, Mergeable};

/// Default number of stored points before auto-conversion.
pub const DEFAULT_MAX_ENTRIES: usize = 100_000;
/// Number of bins used when a cloud auto-converts.
pub const AUTO_BINS: usize = 50;
/// Fractional margin added around the observed range on auto-conversion so
/// edge points stay in range.
const RANGE_MARGIN: f64 = 0.05;

/// Internal state: still collecting points, or already converted.
#[allow(clippy::large_enum_variant)] // Histogram1D is big; clouds are few
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum State1D {
    Points(Vec<(f64, f64)>),
    Histogram(Histogram1D),
}

/// A one-dimensional cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cloud1D {
    title: String,
    max_entries: usize,
    state: State1D,
}

impl Cloud1D {
    /// New cloud with the default storage budget.
    pub fn new(title: impl Into<String>) -> Self {
        Self::with_max_entries(title, DEFAULT_MAX_ENTRIES)
    }

    /// New cloud that converts after `max_entries` stored points.
    pub fn with_max_entries(title: impl Into<String>, max_entries: usize) -> Self {
        Cloud1D {
            title: title.into(),
            max_entries: max_entries.max(1),
            state: State1D::Points(Vec::new()),
        }
    }

    /// Cloud title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// True once the cloud has been converted to a histogram.
    pub fn is_converted(&self) -> bool {
        matches!(self.state, State1D::Histogram(_))
    }

    /// Total entries filled.
    pub fn entries(&self) -> u64 {
        match &self.state {
            State1D::Points(p) => p.len() as u64,
            State1D::Histogram(h) => h.all_entries(),
        }
    }

    /// Fill one weighted point.
    pub fn fill(&mut self, x: f64, w: f64) {
        match &mut self.state {
            State1D::Points(p) => {
                p.push((x, w));
                if p.len() >= self.max_entries {
                    self.convert_auto();
                }
            }
            State1D::Histogram(h) => h.fill(x, w),
        }
    }

    /// Fill with unit weight.
    pub fn fill1(&mut self, x: f64) {
        self.fill(x, 1.0);
    }

    /// Weighted mean of all filled points.
    pub fn mean(&self) -> f64 {
        match &self.state {
            State1D::Points(p) => {
                let sw: f64 = p.iter().map(|(_, w)| w).sum();
                if sw == 0.0 {
                    f64::NAN
                } else {
                    p.iter().map(|(x, w)| x * w).sum::<f64>() / sw
                }
            }
            State1D::Histogram(h) => h.mean(),
        }
    }

    /// Force conversion with an explicit binning.
    pub fn convert(&mut self, nbins: usize, lo: f64, hi: f64) {
        if let State1D::Points(p) = &self.state {
            let mut h = Histogram1D::new(self.title.clone(), nbins, lo, hi);
            for &(x, w) in p {
                h.fill(x, w);
            }
            self.state = State1D::Histogram(h);
        }
    }

    fn convert_auto(&mut self) {
        if let State1D::Points(p) = &self.state {
            let (mut lo, mut hi) = p
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
                    (lo.min(x), hi.max(x))
                });
            if !lo.is_finite() || !hi.is_finite() {
                lo = 0.0;
                hi = 1.0;
            }
            if lo == hi {
                // Degenerate range: widen around the single value.
                lo -= 0.5;
                hi += 0.5;
            }
            let margin = (hi - lo) * RANGE_MARGIN;
            self.convert(AUTO_BINS, lo - margin, hi + margin);
        }
    }

    /// Borrow the converted histogram (None while still collecting points).
    pub fn histogram(&self) -> Option<&Histogram1D> {
        match &self.state {
            State1D::Points(_) => None,
            State1D::Histogram(h) => Some(h),
        }
    }

    /// Materialize a histogram view without mutating the cloud.
    pub fn to_histogram(&self, nbins: usize, lo: f64, hi: f64) -> Histogram1D {
        match &self.state {
            State1D::Points(p) => {
                let mut h = Histogram1D::new(self.title.clone(), nbins, lo, hi);
                for &(x, w) in p {
                    h.fill(x, w);
                }
                h
            }
            State1D::Histogram(h) => {
                let mut out = Histogram1D::new(self.title.clone(), nbins, lo, hi);
                for (c, b) in h.iter_bins() {
                    if b.sum_w != 0.0 {
                        out.fill(c, b.sum_w);
                    }
                }
                out
            }
        }
    }

    /// Clear back to point-collecting mode.
    pub fn reset(&mut self) {
        self.state = State1D::Points(Vec::new());
    }

    /// Suffix of points filled since `old`, as a new cloud, when both clouds
    /// are unconverted and `old`'s points are an exact prefix of `self`'s.
    /// Merging the returned cloud into `old` reproduces `self` exactly
    /// (an unconverted cloud is always under budget, so no conversion can
    /// trigger); `None` means no compact append-delta exists.
    pub fn append_since(&self, old: &Self) -> Option<Self> {
        let (State1D::Points(new), State1D::Points(prev)) = (&self.state, &old.state) else {
            return None;
        };
        if self.title != old.title
            || self.max_entries != old.max_entries
            || prev.len() > new.len()
            || new[..prev.len()] != prev[..]
        {
            return None;
        }
        Some(Cloud1D {
            title: self.title.clone(),
            max_entries: self.max_entries,
            state: State1D::Points(new[prev.len()..].to_vec()),
        })
    }
}

impl Mergeable for Cloud1D {
    /// Merging clouds: point+point concatenates (possibly triggering
    /// conversion); histogram+histogram merges binned; mixed states convert
    /// the unconverted side to the converted side's binning first.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        match (&mut self.state, &other.state) {
            (State1D::Points(a), State1D::Points(b)) => {
                a.extend_from_slice(b);
                if a.len() >= self.max_entries {
                    self.convert_auto();
                }
                Ok(())
            }
            (State1D::Histogram(h), State1D::Points(b)) => {
                for &(x, w) in b {
                    h.fill(x, w);
                }
                Ok(())
            }
            (State1D::Points(a), State1D::Histogram(hb)) => {
                let mut h = hb.clone_empty();
                for &(x, w) in a.iter() {
                    h.fill(x, w);
                }
                h.merge(hb)?;
                self.state = State1D::Histogram(h);
                Ok(())
            }
            (State1D::Histogram(ha), State1D::Histogram(hb)) => ha.merge(hb),
        }
    }
}

/// A two-dimensional cloud (stores `(x, y, w)` triplets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cloud2D {
    title: String,
    max_entries: usize,
    points: Vec<(f64, f64, f64)>,
    converted: Option<Histogram2D>,
}

impl Cloud2D {
    /// New 2-D cloud with the default storage budget.
    pub fn new(title: impl Into<String>) -> Self {
        Self::with_max_entries(title, DEFAULT_MAX_ENTRIES)
    }

    /// New 2-D cloud converting after `max_entries` points.
    pub fn with_max_entries(title: impl Into<String>, max_entries: usize) -> Self {
        Cloud2D {
            title: title.into(),
            max_entries: max_entries.max(1),
            points: Vec::new(),
            converted: None,
        }
    }

    /// Cloud title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// True once converted to a 2-D histogram.
    pub fn is_converted(&self) -> bool {
        self.converted.is_some()
    }

    /// Total entries filled.
    pub fn entries(&self) -> u64 {
        match &self.converted {
            Some(h) => h.all_entries(),
            None => self.points.len() as u64,
        }
    }

    /// Fill one weighted point.
    pub fn fill(&mut self, x: f64, y: f64, w: f64) {
        match &mut self.converted {
            Some(h) => h.fill(x, y, w),
            None => {
                self.points.push((x, y, w));
                if self.points.len() >= self.max_entries {
                    self.convert_auto();
                }
            }
        }
    }

    /// Fill with unit weight.
    pub fn fill1(&mut self, x: f64, y: f64) {
        self.fill(x, y, 1.0);
    }

    fn convert_auto(&mut self) {
        let (mut xlo, mut xhi, mut ylo, mut yhi) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y, _) in &self.points {
            xlo = xlo.min(x);
            xhi = xhi.max(x);
            ylo = ylo.min(y);
            yhi = yhi.max(y);
        }
        if !xlo.is_finite() {
            xlo = 0.0;
            xhi = 1.0;
        }
        if !ylo.is_finite() {
            ylo = 0.0;
            yhi = 1.0;
        }
        if xlo == xhi {
            xlo -= 0.5;
            xhi += 0.5;
        }
        if ylo == yhi {
            ylo -= 0.5;
            yhi += 0.5;
        }
        let mx = (xhi - xlo) * RANGE_MARGIN;
        let my = (yhi - ylo) * RANGE_MARGIN;
        self.convert(AUTO_BINS, xlo - mx, xhi + mx, AUTO_BINS, ylo - my, yhi + my);
    }

    /// Force conversion with explicit binning.
    #[allow(clippy::too_many_arguments)]
    pub fn convert(&mut self, nx: usize, xlo: f64, xhi: f64, ny: usize, ylo: f64, yhi: f64) {
        if self.converted.is_none() {
            let mut h = Histogram2D::new(self.title.clone(), nx, xlo, xhi, ny, ylo, yhi);
            for &(x, y, w) in &self.points {
                h.fill(x, y, w);
            }
            self.points.clear();
            self.converted = Some(h);
        }
    }

    /// Borrow the converted histogram if conversion has happened.
    pub fn histogram(&self) -> Option<&Histogram2D> {
        self.converted.as_ref()
    }

    /// Clear back to point-collecting mode.
    pub fn reset(&mut self) {
        self.points.clear();
        self.converted = None;
    }

    /// Suffix of points filled since `old`; see [`Cloud1D::append_since`].
    pub fn append_since(&self, old: &Self) -> Option<Self> {
        if self.converted.is_some()
            || old.converted.is_some()
            || self.title != old.title
            || self.max_entries != old.max_entries
            || old.points.len() > self.points.len()
            || self.points[..old.points.len()] != old.points[..]
        {
            return None;
        }
        Some(Cloud2D {
            title: self.title.clone(),
            max_entries: self.max_entries,
            points: self.points[old.points.len()..].to_vec(),
            converted: None,
        })
    }
}

impl Mergeable for Cloud2D {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        match (&mut self.converted, &other.converted) {
            (None, None) => {
                self.points.extend_from_slice(&other.points);
                if self.points.len() >= self.max_entries {
                    self.convert_auto();
                }
                Ok(())
            }
            (Some(h), None) => {
                for &(x, y, w) in &other.points {
                    h.fill(x, y, w);
                }
                Ok(())
            }
            (None, Some(hb)) => {
                let mut h = hb.clone_empty();
                for &(x, y, w) in &self.points {
                    h.fill(x, y, w);
                }
                h.merge(hb)?;
                self.points.clear();
                self.converted = Some(h);
                Ok(())
            }
            (Some(ha), Some(hb)) => ha.merge(hb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_collects_then_converts() {
        let mut c = Cloud1D::with_max_entries("t", 10);
        for i in 0..9 {
            c.fill1(i as f64);
        }
        assert!(!c.is_converted());
        c.fill1(9.0);
        assert!(c.is_converted());
        assert_eq!(c.entries(), 10);
        // All points must be in range after auto-conversion.
        assert_eq!(c.histogram().unwrap().extra_entries(), 0);
    }

    #[test]
    fn cloud_mean_before_and_after_conversion() {
        let mut c = Cloud1D::with_max_entries("t", 4);
        c.fill1(1.0);
        c.fill1(3.0);
        assert!((c.mean() - 2.0).abs() < 1e-12);
        c.fill1(1.0);
        c.fill1(3.0);
        assert!(c.is_converted());
        assert!((c.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_value_converts_safely() {
        let mut c = Cloud1D::with_max_entries("t", 3);
        c.fill1(5.0);
        c.fill1(5.0);
        c.fill1(5.0);
        assert!(c.is_converted());
        assert_eq!(c.histogram().unwrap().entries(), 3);
    }

    #[test]
    fn merge_points_points() {
        let mut a = Cloud1D::with_max_entries("t", 100);
        let mut b = Cloud1D::with_max_entries("t", 100);
        a.fill1(1.0);
        b.fill1(2.0);
        a.merge(&b).unwrap();
        assert_eq!(a.entries(), 2);
        assert!(!a.is_converted());
    }

    #[test]
    fn merge_mixed_states_preserves_entries() {
        let mut a = Cloud1D::with_max_entries("t", 2);
        a.fill1(0.0);
        a.fill1(10.0); // converts
        assert!(a.is_converted());
        let mut b = Cloud1D::with_max_entries("t", 100);
        b.fill1(5.0);
        a.merge(&b).unwrap();
        assert_eq!(a.entries(), 3);

        // And the other direction: points-side adopts histogram binning.
        let mut c = Cloud1D::with_max_entries("t", 100);
        c.fill1(3.0);
        c.merge(&a).unwrap();
        assert!(c.is_converted());
        assert_eq!(c.entries(), 4);
    }

    #[test]
    fn explicit_convert_and_to_histogram() {
        let mut c = Cloud1D::new("t");
        c.fill(2.5, 2.0);
        let h = c.to_histogram(10, 0.0, 10.0);
        assert_eq!(h.entries(), 1);
        assert!((h.bin_height(2) - 2.0).abs() < 1e-12);
        c.convert(10, 0.0, 10.0);
        assert!(c.is_converted());
    }

    #[test]
    fn cloud2d_lifecycle() {
        let mut c = Cloud2D::with_max_entries("t", 5);
        for i in 0..5 {
            c.fill1(i as f64, (i * 2) as f64);
        }
        assert!(c.is_converted());
        assert_eq!(c.entries(), 5);
        let h = c.histogram().unwrap();
        assert_eq!(h.all_entries(), 5);
        assert_eq!(h.entries(), 5); // no out-of-range after auto-convert
    }

    #[test]
    fn cloud2d_merge_all_state_pairs() {
        let mk = |n: usize| {
            let mut c = Cloud2D::with_max_entries("t", 3);
            for i in 0..n {
                c.fill1(i as f64, i as f64);
            }
            c
        };
        // points + points
        let mut a = mk(1);
        a.merge(&mk(1)).unwrap();
        assert_eq!(a.entries(), 2);
        // converted + points
        let mut b = mk(3);
        assert!(b.is_converted());
        b.merge(&mk(2)).unwrap();
        assert_eq!(b.entries(), 5);
        // points + converted
        let mut c = mk(2);
        c.merge(&mk(3)).unwrap();
        assert!(c.is_converted());
        assert_eq!(c.entries(), 5);
        // converted + converted
        let mut d = mk(3);
        d.merge(&mk(3)).unwrap();
        assert_eq!(d.entries(), 6);
    }

    #[test]
    fn reset_returns_to_point_mode() {
        let mut c = Cloud1D::with_max_entries("t", 1);
        c.fill1(1.0);
        assert!(c.is_converted());
        c.reset();
        assert!(!c.is_converted());
        assert_eq!(c.entries(), 0);
    }
}

//! Binning axes for histograms and profiles.
//!
//! AIDA's `IAxis` abstraction: an axis maps a coordinate to a bin index and
//! exposes bin edges. Two flavours exist, fixed-width and variable-width
//! (explicit edge list). Out-of-range coordinates map to the distinguished
//! [`UNDERFLOW`] / [`OVERFLOW`] indices, mirroring AIDA's convention.

use serde::{Deserialize, Serialize};

/// Index of a bin on an axis: either an in-range bin `0..nbins`, or one of
/// the two out-of-range sentinels.
pub type BinIndex = i64;

/// Sentinel bin index for coordinates below the axis lower edge.
pub const UNDERFLOW: BinIndex = -2;
/// Sentinel bin index for coordinates at or above the axis upper edge
/// (and for NaN coordinates, which AIDA treats as overflow).
pub const OVERFLOW: BinIndex = -1;

/// A histogram axis: fixed-width or variable-width binning over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Axis {
    /// `nbins` equal-width bins between `lo` (inclusive) and `hi` (exclusive).
    Fixed {
        /// Number of bins.
        nbins: usize,
        /// Lower edge (inclusive).
        lo: f64,
        /// Upper edge (exclusive).
        hi: f64,
    },
    /// Bins defined by an ascending edge list; bin `i` spans
    /// `[edges[i], edges[i+1])`. Requires at least two edges.
    Variable {
        /// Strictly increasing bin edges (`len >= 2`).
        edges: Vec<f64>,
    },
}

impl Axis {
    /// Create a fixed-width axis.
    ///
    /// # Panics
    /// Panics if `nbins == 0`, if `lo >= hi`, or if either bound is not finite.
    pub fn fixed(nbins: usize, lo: f64, hi: f64) -> Self {
        assert!(nbins > 0, "axis must have at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "axis bounds must be finite"
        );
        assert!(lo < hi, "axis lower edge must be below upper edge");
        Axis::Fixed { nbins, lo, hi }
    }

    /// Create a variable-width axis from an ascending edge list.
    ///
    /// # Panics
    /// Panics if fewer than two edges are given, any edge is non-finite, or
    /// the edges are not strictly increasing.
    pub fn variable(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "variable axis needs at least two edges");
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "axis edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "axis edges must be strictly increasing"
        );
        Axis::Variable { edges }
    }

    /// Number of in-range bins.
    pub fn bins(&self) -> usize {
        match self {
            Axis::Fixed { nbins, .. } => *nbins,
            Axis::Variable { edges } => edges.len() - 1,
        }
    }

    /// Lower edge of the axis.
    pub fn lower_edge(&self) -> f64 {
        match self {
            Axis::Fixed { lo, .. } => *lo,
            Axis::Variable { edges } => edges[0],
        }
    }

    /// Upper edge of the axis.
    pub fn upper_edge(&self) -> f64 {
        match self {
            Axis::Fixed { hi, .. } => *hi,
            Axis::Variable { edges } => *edges.last().expect("non-empty edges"),
        }
    }

    /// Map a coordinate to a bin index ([`UNDERFLOW`] / [`OVERFLOW`] when out
    /// of range; NaN maps to overflow, matching AIDA).
    pub fn coord_to_index(&self, x: f64) -> BinIndex {
        if x.is_nan() {
            return OVERFLOW;
        }
        match self {
            Axis::Fixed { nbins, lo, hi } => {
                if x < *lo {
                    UNDERFLOW
                } else if x >= *hi {
                    OVERFLOW
                } else {
                    let frac = (x - lo) / (hi - lo);
                    let mut idx = ((frac * *nbins as f64) as usize).min(nbins - 1);
                    // Correct floating-point edge effects so the result is
                    // consistent with `bin_lower_edge`: a coordinate exactly
                    // on an edge belongs to the bin above it.
                    let edge = |i: usize| lo + (hi - lo) * i as f64 / *nbins as f64;
                    if idx + 1 < *nbins && x >= edge(idx + 1) {
                        idx += 1;
                    } else if x < edge(idx) && idx > 0 {
                        idx -= 1;
                    }
                    idx as BinIndex
                }
            }
            Axis::Variable { edges } => {
                if x < edges[0] {
                    return UNDERFLOW;
                }
                if x >= *edges.last().expect("non-empty edges") {
                    return OVERFLOW;
                }
                // Binary search for the bin whose [lower, upper) contains x.
                match edges.binary_search_by(|e| e.partial_cmp(&x).expect("finite edges")) {
                    Ok(i) => i.min(edges.len() - 2) as BinIndex,
                    Err(i) => (i - 1) as BinIndex,
                }
            }
        }
    }

    /// Lower edge of in-range bin `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.bins()`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        match self {
            Axis::Fixed { nbins, lo, hi } => lo + (hi - lo) * i as f64 / *nbins as f64,
            Axis::Variable { edges } => edges[i],
        }
    }

    /// Upper edge of in-range bin `i`.
    pub fn bin_upper_edge(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        match self {
            Axis::Fixed { nbins, lo, hi } => lo + (hi - lo) * (i + 1) as f64 / *nbins as f64,
            Axis::Variable { edges } => edges[i + 1],
        }
    }

    /// Centre of in-range bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        0.5 * (self.bin_lower_edge(i) + self.bin_upper_edge(i))
    }

    /// Width of in-range bin `i`.
    pub fn bin_width(&self, i: usize) -> f64 {
        self.bin_upper_edge(i) - self.bin_lower_edge(i)
    }

    /// True if two axes have identical binning (required for merging).
    pub fn compatible(&self, other: &Axis) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_axis_maps_coords_to_bins() {
        let a = Axis::fixed(10, 0.0, 10.0);
        assert_eq!(a.bins(), 10);
        assert_eq!(a.coord_to_index(0.0), 0);
        assert_eq!(a.coord_to_index(0.999), 0);
        assert_eq!(a.coord_to_index(5.0), 5);
        assert_eq!(a.coord_to_index(9.999), 9);
    }

    #[test]
    fn fixed_axis_out_of_range() {
        let a = Axis::fixed(10, 0.0, 10.0);
        assert_eq!(a.coord_to_index(-0.001), UNDERFLOW);
        assert_eq!(a.coord_to_index(10.0), OVERFLOW);
        assert_eq!(a.coord_to_index(1e30), OVERFLOW);
        assert_eq!(a.coord_to_index(f64::NAN), OVERFLOW);
    }

    #[test]
    fn fixed_axis_edges_and_centers() {
        let a = Axis::fixed(4, 0.0, 2.0);
        assert!((a.bin_lower_edge(0) - 0.0).abs() < 1e-12);
        assert!((a.bin_upper_edge(3) - 2.0).abs() < 1e-12);
        assert!((a.bin_center(1) - 0.75).abs() < 1e-12);
        assert!((a.bin_width(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn variable_axis_binary_search() {
        let a = Axis::variable(vec![0.0, 1.0, 10.0, 100.0]);
        assert_eq!(a.bins(), 3);
        assert_eq!(a.coord_to_index(0.5), 0);
        assert_eq!(a.coord_to_index(1.0), 1); // exact edge belongs to upper bin
        assert_eq!(a.coord_to_index(9.99), 1);
        assert_eq!(a.coord_to_index(99.0), 2);
        assert_eq!(a.coord_to_index(100.0), OVERFLOW);
        assert_eq!(a.coord_to_index(-1.0), UNDERFLOW);
    }

    #[test]
    fn variable_axis_edges() {
        let a = Axis::variable(vec![0.0, 1.0, 10.0]);
        assert_eq!(a.bin_lower_edge(1), 1.0);
        assert_eq!(a.bin_upper_edge(1), 10.0);
        assert_eq!(a.lower_edge(), 0.0);
        assert_eq!(a.upper_edge(), 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn variable_axis_rejects_unsorted_edges() {
        Axis::variable(vec![0.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn fixed_axis_rejects_zero_bins() {
        Axis::fixed(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "lower edge must be below")]
    fn fixed_axis_rejects_inverted_range() {
        Axis::fixed(5, 1.0, 0.0);
    }

    #[test]
    fn compatibility_is_exact_equality() {
        let a = Axis::fixed(10, 0.0, 1.0);
        let b = Axis::fixed(10, 0.0, 1.0);
        let c = Axis::fixed(11, 0.0, 1.0);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
    }

    #[test]
    fn every_in_range_coord_lands_in_its_bin() {
        let a = Axis::fixed(37, -3.0, 11.0);
        for i in 0..a.bins() {
            let c = a.bin_center(i);
            assert_eq!(a.coord_to_index(c), i as BinIndex);
            let lo = a.bin_lower_edge(i);
            assert_eq!(a.coord_to_index(lo), i as BinIndex, "lower edge of bin {i}");
        }
    }
}

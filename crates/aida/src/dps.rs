//! Data point sets (AIDA `IDataPointSet`).
//!
//! A `DataPointSet` holds measured points of fixed dimension, each coordinate
//! carrying a value and asymmetric errors. The experiment harness uses these
//! for paper-table series (e.g. staging time vs node count).

use serde::{Deserialize, Serialize};

use crate::annotation::Annotation;
use crate::object::{MergeError, Mergeable};

/// One coordinate of a data point: value with minus/plus errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Central value.
    pub value: f64,
    /// Error towards smaller values.
    pub error_minus: f64,
    /// Error towards larger values.
    pub error_plus: f64,
}

impl Measurement {
    /// Measurement with symmetric error.
    pub fn new(value: f64, error: f64) -> Self {
        Measurement {
            value,
            error_minus: error,
            error_plus: error,
        }
    }

    /// Measurement with no error.
    pub fn exact(value: f64) -> Self {
        Self::new(value, 0.0)
    }
}

/// One point: a measurement per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// One [`Measurement`] per dimension.
    pub coords: Vec<Measurement>,
}

impl DataPoint {
    /// Build a point from `(value, error)` pairs.
    pub fn new(coords: Vec<Measurement>) -> Self {
        DataPoint { coords }
    }

    /// Convenience: 2-D point `(x ± 0, y ± yerr)`.
    pub fn xy(x: f64, y: f64, yerr: f64) -> Self {
        DataPoint {
            coords: vec![Measurement::exact(x), Measurement::new(y, yerr)],
        }
    }

    /// Number of dimensions.
    pub fn dimension(&self) -> usize {
        self.coords.len()
    }
}

/// A titled, fixed-dimension collection of [`DataPoint`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPointSet {
    title: String,
    dimension: usize,
    points: Vec<DataPoint>,
    /// Key/value annotations.
    pub annotation: Annotation,
}

impl DataPointSet {
    /// New empty set of the given dimension.
    pub fn new(title: impl Into<String>, dimension: usize) -> Self {
        assert!(dimension > 0, "data point set needs at least one dimension");
        DataPointSet {
            title: title.into(),
            dimension,
            points: Vec::new(),
            annotation: Annotation::new(),
        }
    }

    /// Set title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Dimension of every point.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Append a point.
    ///
    /// # Panics
    /// Panics if the point's dimension does not match the set's.
    pub fn add(&mut self, p: DataPoint) {
        assert_eq!(
            p.dimension(),
            self.dimension,
            "point dimension must match set dimension"
        );
        self.points.push(p);
    }

    /// Convenience for 2-D sets.
    pub fn add_xy(&mut self, x: f64, y: f64, yerr: f64) {
        self.add(DataPoint::xy(x, y, yerr));
    }

    /// Borrow point `i`.
    pub fn point(&self, i: usize) -> &DataPoint {
        &self.points[i]
    }

    /// Iterate points.
    pub fn iter(&self) -> impl Iterator<Item = &DataPoint> {
        self.points.iter()
    }

    /// Sort points by the value of coordinate `dim` (NaNs last).
    pub fn sort_by_coord(&mut self, dim: usize) {
        self.points.sort_by(|a, b| {
            a.coords[dim]
                .value
                .partial_cmp(&b.coords[dim].value)
                .unwrap_or(std::cmp::Ordering::Greater)
        });
    }

    /// Remove all points.
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// Suffix of points added since `old`, as a new set, when `old` is an
    /// exact prefix of `self` (same title/dimension/annotation). Merging the
    /// returned set into `old` reproduces `self` exactly; `None` means no
    /// compact append-delta exists and the caller must ship a full replace.
    pub fn append_since(&self, old: &Self) -> Option<Self> {
        if self.title != old.title
            || self.dimension != old.dimension
            || self.annotation != old.annotation
            || old.points.len() > self.points.len()
            || self.points[..old.points.len()] != old.points[..]
        {
            return None;
        }
        Some(DataPointSet {
            title: self.title.clone(),
            dimension: self.dimension,
            points: self.points[old.points.len()..].to_vec(),
            annotation: self.annotation.clone(),
        })
    }
}

impl Mergeable for DataPointSet {
    /// Merging concatenates points (dimension must match).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.dimension != other.dimension {
            return Err(MergeError::IncompatibleBinning {
                what: format!("datapointset '{}' dimension mismatch", self.title),
            });
        }
        self.points.extend(other.points.iter().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = DataPointSet::new("times", 2);
        s.add_xy(1.0, 330.0, 5.0);
        s.add_xy(16.0, 78.0, 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(1).coords[0].value, 16.0);
        assert_eq!(s.point(0).coords[1].error_plus, 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn rejects_wrong_dimension() {
        let mut s = DataPointSet::new("t", 3);
        s.add(DataPoint::xy(1.0, 2.0, 0.0));
    }

    #[test]
    fn sort_by_coordinate() {
        let mut s = DataPointSet::new("t", 2);
        s.add_xy(3.0, 1.0, 0.0);
        s.add_xy(1.0, 2.0, 0.0);
        s.add_xy(2.0, 3.0, 0.0);
        s.sort_by_coord(0);
        let xs: Vec<f64> = s.iter().map(|p| p.coords[0].value).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = DataPointSet::new("t", 2);
        let mut b = DataPointSet::new("t", 2);
        a.add_xy(1.0, 1.0, 0.0);
        b.add_xy(2.0, 2.0, 0.0);
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        let c = DataPointSet::new("t", 3);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn measurement_constructors() {
        let m = Measurement::exact(5.0);
        assert_eq!(m.error_minus, 0.0);
        let m = Measurement::new(5.0, 1.0);
        assert_eq!(m.error_plus, 1.0);
        assert_eq!(m.error_minus, 1.0);
    }
}

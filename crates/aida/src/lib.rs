//! `ipa-aida` — an AIDA-like analysis toolkit.
//!
//! This crate is the Rust stand-in for the *Abstract Interfaces for Data
//! Analysis* (AIDA) toolkit the paper's reference implementation uses to
//! accumulate and merge analysis results. It provides:
//!
//! * binned accumulators: [`Histogram1D`], [`Histogram2D`], [`Profile1D`],
//! * unbinned accumulators: [`Cloud1D`], [`Cloud2D`] (with automatic
//!   conversion to histograms once a storage budget is exceeded),
//! * [`DataPointSet`] for measured points with errors,
//! * [`Tuple`] (ntuple) column storage with histogram projections,
//! * a hierarchical named-object [`Tree`] (`/dir/subdir/object` paths) that is
//!   the unit shipped from analysis engines to the AIDA manager service,
//! * exact, associative merging of partial results (the property the IPA
//!   framework's continuous result merging relies on), and
//! * ASCII and SVG rendering for "professional-quality visualizations"
//!   (the paper's Figure 4 panel) without a GUI toolkit.
//!
//! Everything is `serde`-serializable so partial results can cross the
//! engine → manager → client boundary.
//!
//! # Example
//!
//! ```
//! use ipa_aida::{Histogram1D, Mergeable};
//!
//! let mut worker_a = Histogram1D::new("mass", 50, 0.0, 250.0);
//! let mut worker_b = worker_a.clone_empty();
//! worker_a.fill(125.0, 1.0);
//! worker_b.fill(91.2, 1.0);
//! worker_a.merge(&worker_b).unwrap();
//! assert_eq!(worker_a.all_entries(), 2);
//! ```

#![warn(missing_docs)]

pub mod annotation;
pub mod axis;
pub mod cloud;
pub mod dps;
pub mod hist1d;
pub mod hist2d;
pub mod object;
pub mod ops;
pub mod profile;
pub mod render;
pub mod stats;
pub mod tree;
pub mod tuple;

pub use annotation::Annotation;
pub use axis::{Axis, BinIndex, OVERFLOW, UNDERFLOW};
pub use cloud::{Cloud1D, Cloud2D};
pub use dps::{DataPoint, DataPointSet, Measurement};
pub use hist1d::Histogram1D;
pub use hist2d::Histogram2D;
pub use object::{AidaObject, MergeError, Mergeable, ObjectDelta};
pub use ops::{add_scaled, fit_gaussian, fit_gaussian_in, normalized, rebin, GaussianFit};
pub use profile::Profile1D;
pub use stats::WeightedStats;
pub use tree::{Tree, TreeDelta, TreeError};
pub use tuple::{ColumnType, Tuple, TupleError, Value};

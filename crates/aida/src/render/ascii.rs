//! Terminal rendering of histograms and profiles.
//!
//! Produces a fixed-width textual plot suitable for a live-updating client
//! panel: horizontal bars for 1-D histograms, a character-ramp heat map for
//! 2-D histograms.

use crate::hist1d::Histogram1D;
use crate::hist2d::Histogram2D;
use crate::profile::Profile1D;

/// Rendering options for ASCII output.
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Width of the bar area in characters.
    pub width: usize,
    /// Character used for bars.
    pub bar_char: char,
    /// Include the statistics footer (entries / mean / rms).
    pub stats_footer: bool,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            width: 60,
            bar_char: '█',
            stats_footer: true,
        }
    }
}

/// Character ramp for 2-D heat maps, from empty to full.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a 1-D histogram as horizontal bars, one line per bin.
pub fn render_h1_ascii(h: &Histogram1D, opts: &AsciiOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", h.title()));
    let max = h.max_bin_height();
    let axis = h.axis();
    for i in 0..axis.bins() {
        let height = h.bin_height(i);
        let bar_len = if max > 0.0 {
            ((height / max) * opts.width as f64).round() as usize
        } else {
            0
        };
        let bar: String = std::iter::repeat_n(opts.bar_char, bar_len).collect();
        out.push_str(&format!(
            "{:>10.3} |{:<width$}| {:.6}\n",
            axis.bin_lower_edge(i),
            bar,
            height,
            width = opts.width
        ));
    }
    if opts.stats_footer {
        out.push_str(&format!(
            "entries={} (uflow={} oflow={}) mean={:.4} rms={:.4}\n",
            h.entries(),
            h.underflow().entries,
            h.overflow().entries,
            h.mean(),
            h.rms()
        ));
    }
    out
}

/// Render a 2-D histogram as a character-ramp heat map (y increases upward).
pub fn render_h2_ascii(h: &Histogram2D, _opts: &AsciiOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", h.title()));
    let max = h.max_bin_height();
    let nx = h.x_axis().bins();
    let ny = h.y_axis().bins();
    for iy in (0..ny).rev() {
        out.push_str(&format!("{:>8.2} |", h.y_axis().bin_lower_edge(iy)));
        for ix in 0..nx {
            let v = h.bin_height(ix, iy);
            let c = if max > 0.0 {
                let level = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[level.min(RAMP.len() - 1)]
            } else {
                RAMP[0]
            };
            out.push(c);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "x: [{:.2}, {:.2})  y: [{:.2}, {:.2})  entries={}\n",
        h.x_axis().lower_edge(),
        h.x_axis().upper_edge(),
        h.y_axis().lower_edge(),
        h.y_axis().upper_edge(),
        h.entries()
    ));
    out
}

/// Render a profile as `mean ± error` markers, one line per bin.
pub fn render_profile_ascii(p: &Profile1D, opts: &AsciiOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", p.title()));
    // Find y range over non-empty bins.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..p.axis().bins() {
        if p.bin_entries(i) > 0 {
            let m = p.bin_mean(i);
            lo = lo.min(m);
            hi = hi.max(m);
        }
    }
    if !lo.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    if lo == hi {
        lo -= 0.5;
        hi += 0.5;
    }
    for i in 0..p.axis().bins() {
        let label = format!("{:>10.3} |", p.axis().bin_lower_edge(i));
        out.push_str(&label);
        if p.bin_entries(i) == 0 {
            out.push_str(&" ".repeat(opts.width));
            out.push_str("|\n");
            continue;
        }
        let m = p.bin_mean(i);
        let pos = (((m - lo) / (hi - lo)) * (opts.width - 1) as f64).round() as usize;
        let mut line: Vec<char> = vec![' '; opts.width];
        line[pos.min(opts.width - 1)] = 'o';
        out.extend(line);
        out.push_str(&format!("| {m:.4}\n"));
    }
    if opts.stats_footer {
        out.push_str(&format!("entries={}\n", p.entries()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_render_contains_bars_and_stats() {
        let mut h = Histogram1D::new("mass", 4, 0.0, 4.0);
        for _ in 0..10 {
            h.fill1(1.5);
        }
        h.fill1(2.5);
        let s = render_h1_ascii(&h, &AsciiOptions::default());
        assert!(s.starts_with("mass\n"));
        assert!(s.contains('█'));
        assert!(s.contains("entries=11"));
        assert_eq!(s.lines().count(), 1 + 4 + 1); // title + bins + footer
    }

    #[test]
    fn h1_empty_histogram_renders_without_panicking() {
        let h = Histogram1D::new("empty", 3, 0.0, 1.0);
        let s = render_h1_ascii(&h, &AsciiOptions::default());
        assert!(s.contains("entries=0"));
    }

    #[test]
    fn h2_heatmap_has_one_row_per_y_bin() {
        let mut h = Histogram2D::new("xy", 5, 0.0, 5.0, 3, 0.0, 3.0);
        h.fill1(2.5, 1.5);
        let s = render_h2_ascii(&h, &AsciiOptions::default());
        assert_eq!(s.lines().count(), 1 + 3 + 1);
        assert!(s.contains('@')); // the single filled cell is at max level
    }

    #[test]
    fn profile_marks_bin_means() {
        let mut p = Profile1D::new("prof", 2, 0.0, 2.0);
        p.fill1(0.5, 1.0);
        p.fill1(1.5, 3.0);
        let s = render_profile_ascii(&p, &AsciiOptions::default());
        assert!(s.contains('o'));
        assert!(s.contains("entries=2"));
    }

    #[test]
    fn custom_width_is_respected() {
        let mut h = Histogram1D::new("t", 1, 0.0, 1.0);
        h.fill1(0.5);
        let opts = AsciiOptions {
            width: 10,
            ..AsciiOptions::default()
        };
        let s = render_h1_ascii(&h, &opts);
        let bar_line = s.lines().nth(1).unwrap();
        // bar area is exactly 10 chars between the pipes
        let between = bar_line.split('|').nth(1).unwrap();
        assert_eq!(between.chars().count(), 10);
    }
}

//! Rendering of analysis objects.
//!
//! The paper's client (JAS3) renders merged histograms in a Swing GUI
//! (Figure 4). Headless equivalents here:
//!
//! * [`ascii`] — terminal rendering for the interactive client's live view,
//! * [`svg`] — vector output for "professional-quality visualizations".

pub mod ascii;
pub mod svg;

pub use ascii::{render_h1_ascii, render_h2_ascii, render_profile_ascii, AsciiOptions};
pub use svg::{render_h1_svg, render_h2_svg, render_series_svg, Series, SvgOptions};

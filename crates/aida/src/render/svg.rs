//! SVG rendering of histograms and series.
//!
//! Self-contained SVG output (no external renderer) for the client's
//! "professional-quality visualizations" and for the experiment harness's
//! Figure-5 style plots.

use crate::hist1d::Histogram1D;
use crate::hist2d::Histogram2D;

/// Options for SVG output.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width: u32,
    /// Total image height in pixels.
    pub height: u32,
    /// Margin around the plot area in pixels.
    pub margin: u32,
    /// Bar/line colour (CSS).
    pub color: String,
    /// Draw per-bin error bars on 1-D histograms.
    pub error_bars: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 640,
            height: 420,
            margin: 50,
            color: "#3572b0".to_string(),
            error_bars: true,
        }
    }
}

/// One polyline series for [`render_series_svg`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// CSS colour.
    pub color: String,
    /// `(x, y)` points; rendered in the given order.
    pub points: Vec<(f64, f64)>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Frame {
    w: f64,
    h: f64,
    m: f64,
    xlo: f64,
    xhi: f64,
    ylo: f64,
    yhi: f64,
}

impl Frame {
    fn px(&self, x: f64) -> f64 {
        self.m + (x - self.xlo) / (self.xhi - self.xlo) * (self.w - 2.0 * self.m)
    }

    fn py(&self, y: f64) -> f64 {
        self.h - self.m - (y - self.ylo) / (self.yhi - self.ylo) * (self.h - 2.0 * self.m)
    }

    fn axes(&self, title: &str, out: &mut String) {
        out.push_str(&format!(
            "<rect x='{:.1}' y='{:.1}' width='{:.1}' height='{:.1}' fill='none' stroke='#444'/>\n",
            self.m,
            self.m,
            self.w - 2.0 * self.m,
            self.h - 2.0 * self.m
        ));
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='14' text-anchor='middle'>{}</text>\n",
            self.w / 2.0,
            self.m - 12.0,
            esc(title)
        ));
        // Min/max tick labels on each axis.
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11'>{:.3}</text>\n",
            self.m,
            self.h - self.m + 16.0,
            self.xlo
        ));
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11' text-anchor='end'>{:.3}</text>\n",
            self.w - self.m,
            self.h - self.m + 16.0,
            self.xhi
        ));
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11' text-anchor='end'>{:.3}</text>\n",
            self.m - 4.0,
            self.h - self.m,
            self.ylo
        ));
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11' text-anchor='end'>{:.3}</text>\n",
            self.m - 4.0,
            self.m + 10.0,
            self.yhi
        ));
    }
}

fn svg_open(w: u32, h: u32) -> String {
    format!(
        "<svg xmlns='http://www.w3.org/2000/svg' width='{w}' height='{h}' viewBox='0 0 {w} {h}'>\n<rect width='{w}' height='{h}' fill='white'/>\n"
    )
}

/// Render a 1-D histogram as an SVG bar chart.
pub fn render_h1_svg(h: &Histogram1D, opts: &SvgOptions) -> String {
    let mut out = svg_open(opts.width, opts.height);
    let max = h.max_bin_height().max(1e-300);
    let f = Frame {
        w: opts.width as f64,
        h: opts.height as f64,
        m: opts.margin as f64,
        xlo: h.axis().lower_edge(),
        xhi: h.axis().upper_edge(),
        ylo: 0.0,
        yhi: max * 1.05,
    };
    f.axes(h.title(), &mut out);
    for i in 0..h.axis().bins() {
        let v = h.bin_height(i);
        if v == 0.0 {
            continue;
        }
        let x0 = f.px(h.axis().bin_lower_edge(i));
        let x1 = f.px(h.axis().bin_upper_edge(i));
        let y = f.py(v);
        out.push_str(&format!(
            "<rect x='{:.2}' y='{:.2}' width='{:.2}' height='{:.2}' fill='{}' fill-opacity='0.75'/>\n",
            x0,
            y,
            (x1 - x0).max(0.5),
            f.py(0.0) - y,
            opts.color
        ));
        if opts.error_bars {
            let e = h.bin_error(i);
            if e > 0.0 {
                let xm = 0.5 * (x0 + x1);
                out.push_str(&format!(
                    "<line x1='{:.2}' y1='{:.2}' x2='{:.2}' y2='{:.2}' stroke='#222' stroke-width='1'/>\n",
                    xm,
                    f.py((v - e).max(0.0)),
                    xm,
                    f.py((v + e).min(f.yhi))
                ));
            }
        }
    }
    out.push_str(&format!(
        "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11'>entries={} mean={:.4} rms={:.4}</text>\n",
        f.m,
        f.h - 8.0,
        h.entries(),
        h.mean(),
        h.rms()
    ));
    out.push_str("</svg>\n");
    out
}

/// Render a 2-D histogram as an SVG heat map (blue→red colour scale).
pub fn render_h2_svg(h: &Histogram2D, opts: &SvgOptions) -> String {
    let mut out = svg_open(opts.width, opts.height);
    let max = h.max_bin_height().max(1e-300);
    let f = Frame {
        w: opts.width as f64,
        h: opts.height as f64,
        m: opts.margin as f64,
        xlo: h.x_axis().lower_edge(),
        xhi: h.x_axis().upper_edge(),
        ylo: h.y_axis().lower_edge(),
        yhi: h.y_axis().upper_edge(),
    };
    f.axes(h.title(), &mut out);
    for iy in 0..h.y_axis().bins() {
        for ix in 0..h.x_axis().bins() {
            let v = h.bin_height(ix, iy);
            if v == 0.0 {
                continue;
            }
            let t = (v / max).clamp(0.0, 1.0);
            let r = (t * 255.0) as u8;
            let b = ((1.0 - t) * 255.0) as u8;
            let x0 = f.px(h.x_axis().bin_lower_edge(ix));
            let x1 = f.px(h.x_axis().bin_upper_edge(ix));
            let y0 = f.py(h.y_axis().bin_upper_edge(iy));
            let y1 = f.py(h.y_axis().bin_lower_edge(iy));
            out.push_str(&format!(
                "<rect x='{:.2}' y='{:.2}' width='{:.2}' height='{:.2}' fill='rgb({},40,{})'/>\n",
                x0,
                y0,
                (x1 - x0).max(0.5),
                (y1 - y0).max(0.5),
                r,
                b
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Render one or more `(x, y)` series as SVG polylines with a legend.
/// Used for the paper's Figure-5 style time-vs-parameter plots.
pub fn render_series_svg(title: &str, series: &[Series], opts: &SvgOptions) -> String {
    let mut out = svg_open(opts.width, opts.height);
    let (mut xlo, mut xhi, mut ylo, mut yhi) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for s in series {
        for &(x, y) in &s.points {
            xlo = xlo.min(x);
            xhi = xhi.max(x);
            ylo = ylo.min(y);
            yhi = yhi.max(y);
        }
    }
    if !xlo.is_finite() {
        xlo = 0.0;
        xhi = 1.0;
        ylo = 0.0;
        yhi = 1.0;
    }
    if xlo == xhi {
        xhi = xlo + 1.0;
    }
    if ylo == yhi {
        yhi = ylo + 1.0;
    }
    let f = Frame {
        w: opts.width as f64,
        h: opts.height as f64,
        m: opts.margin as f64,
        xlo,
        xhi,
        ylo: 0.0f64.min(ylo),
        yhi: yhi * 1.05,
    };
    f.axes(title, &mut out);
    for (si, s) in series.iter().enumerate() {
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.2},{:.2}", f.px(x), f.py(y)))
            .collect();
        out.push_str(&format!(
            "<polyline points='{}' fill='none' stroke='{}' stroke-width='2'/>\n",
            pts.join(" "),
            s.color
        ));
        // Legend entry.
        let ly = f.m + 16.0 * (si as f64 + 1.0);
        out.push_str(&format!(
            "<line x1='{:.1}' y1='{:.1}' x2='{:.1}' y2='{:.1}' stroke='{}' stroke-width='2'/>\n",
            f.w - f.m - 120.0,
            ly,
            f.w - f.m - 95.0,
            ly,
            s.color
        ));
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-family='sans-serif' font-size='11'>{}</text>\n",
            f.w - f.m - 90.0,
            ly + 4.0,
            esc(&s.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_svg_is_well_formed() {
        let mut h = Histogram1D::new("mass <check&escape>", 10, 0.0, 10.0);
        h.fill1(5.0);
        let s = render_h1_svg(&h, &SvgOptions::default());
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("&lt;check&amp;escape&gt;"));
        assert!(s.contains("<rect"));
        assert_eq!(s.matches("<svg").count(), 1);
    }

    #[test]
    fn h1_svg_empty_histogram_no_bars() {
        let h = Histogram1D::new("e", 5, 0.0, 1.0);
        let s = render_h1_svg(&h, &SvgOptions::default());
        // Only background + frame rects, no bar rects with fill-opacity.
        assert!(!s.contains("fill-opacity"));
    }

    #[test]
    fn h2_svg_renders_cells() {
        let mut h = Histogram2D::new("xy", 4, 0.0, 4.0, 4, 0.0, 4.0);
        h.fill1(1.5, 2.5);
        h.fill(3.5, 0.5, 0.5);
        let s = render_h2_svg(&h, &SvgOptions::default());
        assert!(s.contains("rgb(255,40,0)")); // max cell fully red
    }

    #[test]
    fn series_svg_has_polyline_per_series() {
        let series = vec![
            Series {
                label: "local".into(),
                color: "#c90".into(),
                points: vec![(1.0, 11.5), (100.0, 1150.0)],
            },
            Series {
                label: "grid".into(),
                color: "#36b".into(),
                points: vec![(1.0, 60.0), (100.0, 90.0)],
            },
        ];
        let s = render_series_svg("figure 5", &series, &SvgOptions::default());
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains("local"));
        assert!(s.contains("grid"));
    }

    #[test]
    fn series_svg_empty_input_is_safe() {
        let s = render_series_svg("empty", &[], &SvgOptions::default());
        assert!(s.contains("</svg>"));
    }
}

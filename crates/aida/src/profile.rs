//! One-dimensional profile histogram (AIDA `IProfile1D`).
//!
//! A profile stores, per x bin, the weighted statistics of the y values
//! filled into it — the standard tool for "mean y vs x" plots (e.g. mean
//! calorimeter response vs energy).

use serde::{Deserialize, Serialize};

use crate::annotation::Annotation;
use crate::axis::{Axis, BinIndex, OVERFLOW, UNDERFLOW};
use crate::object::{MergeError, Mergeable};
use crate::stats::WeightedStats;

/// A profile histogram: per-bin [`WeightedStats`] of y over an x [`Axis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile1D {
    title: String,
    axis: Axis,
    bins: Vec<WeightedStats>,
    underflow: WeightedStats,
    overflow: WeightedStats,
    /// Key/value annotations.
    pub annotation: Annotation,
}

impl Profile1D {
    /// Fixed-width profile with `nbins` x bins on `[lo, hi)`.
    pub fn new(title: impl Into<String>, nbins: usize, lo: f64, hi: f64) -> Self {
        Self::with_axis(title, Axis::fixed(nbins, lo, hi))
    }

    /// Profile over an arbitrary x axis.
    pub fn with_axis(title: impl Into<String>, axis: Axis) -> Self {
        let n = axis.bins();
        Profile1D {
            title: title.into(),
            axis,
            bins: vec![WeightedStats::new(); n],
            underflow: WeightedStats::new(),
            overflow: WeightedStats::new(),
            annotation: Annotation::new(),
        }
    }

    /// Empty clone with identical axis/title/annotations.
    pub fn clone_empty(&self) -> Self {
        let mut p = Profile1D::with_axis(self.title.clone(), self.axis.clone());
        p.annotation = self.annotation.clone();
        p
    }

    /// Profile title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The x axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    /// Fill `(x, y)` with weight `w`.
    pub fn fill(&mut self, x: f64, y: f64, w: f64) {
        match self.axis.coord_to_index(x) {
            UNDERFLOW => self.underflow.fill(y, w),
            OVERFLOW => self.overflow.fill(y, w),
            i => self.bins[i as usize].fill(y, w),
        }
    }

    /// Fill with unit weight.
    pub fn fill1(&mut self, x: f64, y: f64) {
        self.fill(x, y, 1.0);
    }

    /// Bulk fill: one [`Profile1D::fill`] per `(x, y)` pair, in slice
    /// order with constant weight `w` (the shorter slice bounds the fill
    /// count). Accumulation order matches the per-record path exactly.
    pub fn fill_slice(&mut self, xs: &[f64], ys: &[f64], w: f64) {
        for (&x, &y) in xs.iter().zip(ys) {
            self.fill(x, y, w);
        }
    }

    /// The y statistics of in-range bin `i`, or of the under/overflow
    /// sentinels.
    pub fn bin(&self, index: BinIndex) -> &WeightedStats {
        match index {
            UNDERFLOW => &self.underflow,
            OVERFLOW => &self.overflow,
            i => &self.bins[i as usize],
        }
    }

    /// Mean y in bin `i` (AIDA `binHeight`), NaN when the bin is empty.
    pub fn bin_mean(&self, i: usize) -> f64 {
        self.bins[i].mean()
    }

    /// RMS of y in bin `i` (AIDA `binRms`).
    pub fn bin_rms(&self, i: usize) -> f64 {
        self.bins[i].rms()
    }

    /// Standard error on the bin mean: rms/√Neff, NaN when empty.
    pub fn bin_error(&self, i: usize) -> f64 {
        let neff = self.bins[i].effective_entries();
        if neff == 0.0 {
            f64::NAN
        } else {
            self.bins[i].rms() / neff.sqrt()
        }
    }

    /// Entries in in-range bin `i`.
    pub fn bin_entries(&self, i: usize) -> u64 {
        self.bins[i].entries
    }

    /// Total in-range entries.
    pub fn entries(&self) -> u64 {
        self.bins.iter().map(|b| b.entries).sum()
    }

    /// All entries including under/overflow.
    pub fn all_entries(&self) -> u64 {
        self.entries() + self.underflow.entries + self.overflow.entries
    }

    /// Clear all contents.
    pub fn reset(&mut self) {
        for b in &mut self.bins {
            b.reset();
        }
        self.underflow.reset();
        self.overflow.reset();
    }

    /// Iterate `(bin_center, &WeightedStats)` over in-range bins.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, &WeightedStats)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, b)| (self.axis.bin_center(i), b))
    }
}

impl Mergeable for Profile1D {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.axis.compatible(&other.axis) {
            return Err(MergeError::IncompatibleBinning {
                what: format!("profile1d '{}'", self.title),
            });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            a.merge(b);
        }
        self.underflow.merge(&other.underflow);
        self.overflow.merge(&other.overflow);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-10 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fill_slice_matches_repeated_fill() {
        let mut bulk = Profile1D::new("t", 8, 0.0, 8.0);
        let mut serial = bulk.clone_empty();
        let xs: Vec<f64> = (0..150).map(|i| i as f64 * 0.09 - 1.0).collect();
        let ys: Vec<f64> = (0..150).map(|i| (i % 7) as f64).collect();
        bulk.fill_slice(&xs, &ys, 1.0);
        for (&x, &y) in xs.iter().zip(&ys) {
            serial.fill(x, y, 1.0);
        }
        assert_eq!(bulk, serial);
    }

    #[test]
    fn bin_mean_tracks_y() {
        let mut p = Profile1D::new("resp", 10, 0.0, 10.0);
        p.fill1(2.5, 4.0);
        p.fill1(2.7, 6.0);
        assert!(approx(p.bin_mean(2), 5.0));
        assert!(approx(p.bin_rms(2), 1.0));
        assert_eq!(p.bin_entries(2), 2);
    }

    #[test]
    fn under_overflow_in_x() {
        let mut p = Profile1D::new("t", 2, 0.0, 1.0);
        p.fill1(-1.0, 7.0);
        p.fill1(9.0, 3.0);
        assert_eq!(p.entries(), 0);
        assert_eq!(p.all_entries(), 2);
        assert!(approx(p.bin(UNDERFLOW).mean(), 7.0));
        assert!(approx(p.bin(OVERFLOW).mean(), 3.0));
    }

    #[test]
    fn bin_error_shrinks_with_entries() {
        let mut p = Profile1D::new("t", 1, 0.0, 1.0);
        for i in 0..100 {
            p.fill1(0.5, if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        // rms = 1, Neff = 100 → error = 0.1
        assert!(approx(p.bin_error(0), 0.1));
    }

    #[test]
    fn empty_bin_mean_is_nan() {
        let p = Profile1D::new("t", 3, 0.0, 3.0);
        assert!(p.bin_mean(1).is_nan());
        assert!(p.bin_error(1).is_nan());
    }

    #[test]
    fn merge_matches_sequential() {
        let mut whole = Profile1D::new("t", 5, 0.0, 5.0);
        let mut a = whole.clone_empty();
        let mut b = whole.clone_empty();
        for i in 0..300 {
            let x = ((i * 7) % 50) as f64 / 10.0;
            let y = (i % 11) as f64 - 5.0;
            whole.fill1(x, y);
            if i % 2 == 0 {
                a.fill1(x, y)
            } else {
                b.fill1(x, y)
            }
        }
        a.merge(&b).unwrap();
        for i in 0..5 {
            if whole.bin_entries(i) > 0 {
                assert!(approx(a.bin_mean(i), whole.bin_mean(i)));
                assert!(approx(a.bin_rms(i), whole.bin_rms(i)));
            }
            assert_eq!(a.bin_entries(i), whole.bin_entries(i));
        }
    }

    #[test]
    fn merge_rejects_incompatible() {
        let mut a = Profile1D::new("t", 5, 0.0, 5.0);
        let b = Profile1D::new("t", 6, 0.0, 5.0);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn reset_clears() {
        let mut p = Profile1D::new("t", 2, 0.0, 2.0);
        p.fill1(0.5, 1.0);
        p.reset();
        assert_eq!(p.all_entries(), 0);
    }
}

//! Histogram arithmetic and peak analysis.
//!
//! The operations an analyst applies to merged spectra: rebinning,
//! normalization, scaled addition (background subtraction), and a
//! Gaussian peak fit — what turns the Figure-4 mass plot into a measured
//! resonance mass and width.

use crate::axis::Axis;
use crate::hist1d::{Bin, Histogram1D};
use crate::object::MergeError;

/// Merge groups of `k` adjacent bins into one (the last group may cover
/// fewer source bins when `k` does not divide the bin count). Entries,
/// heights, and errors are preserved exactly.
pub fn rebin(h: &Histogram1D, k: usize) -> Histogram1D {
    let k = k.max(1);
    let n = h.axis().bins();
    let groups = n.div_ceil(k);
    // Build the coarse axis from the source edges so uneven tails keep
    // exact boundaries.
    let mut edges = Vec::with_capacity(groups + 1);
    for g in 0..groups {
        edges.push(h.axis().bin_lower_edge(g * k));
    }
    edges.push(h.axis().upper_edge());
    let mut out =
        Histogram1D::with_axis(format!("{} (rebin {k})", h.title()), Axis::variable(edges));
    for g in 0..groups {
        let mut acc = Bin::default();
        for i in (g * k)..((g + 1) * k).min(n) {
            let b = h.bin(i as i64);
            acc.entries += b.entries;
            acc.sum_w += b.sum_w;
            acc.sum_w2 += b.sum_w2;
            acc.sum_wx += b.sum_wx;
            acc.sum_wx2 += b.sum_wx2;
        }
        out.set_bin_raw(g, acc);
    }
    // Global stats and under/overflow carry over unchanged.
    out.set_stats_raw(h.stats_snapshot());
    out.set_flow_raw(h.underflow().clone(), h.overflow().clone());
    out
}

/// A copy scaled so the in-range integral (Σ heights) is `target`
/// (no-op on an empty histogram).
pub fn normalized(h: &Histogram1D, target: f64) -> Histogram1D {
    let mut out = h.clone();
    let integral = h.sum_bin_heights();
    if integral != 0.0 {
        out.scale(target / integral);
    }
    out
}

/// `a + c·b` bin by bin (binning must match). With `c = -1` this is the
/// classic background subtraction.
pub fn add_scaled(a: &Histogram1D, b: &Histogram1D, c: f64) -> Result<Histogram1D, MergeError> {
    if !a.axis().compatible(b.axis()) {
        return Err(MergeError::IncompatibleBinning {
            what: format!("add_scaled('{}', '{}')", a.title(), b.title()),
        });
    }
    let mut scaled = b.clone();
    scaled.scale(c);
    let mut out = a.clone();
    use crate::object::Mergeable;
    out.merge(&scaled)?;
    Ok(out)
}

/// Result of [`fit_gaussian`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianFit {
    /// Peak amplitude (height at the mean, in content units).
    pub amplitude: f64,
    /// Fitted mean.
    pub mean: f64,
    /// Fitted standard deviation.
    pub sigma: f64,
    /// Bins used in the fit.
    pub bins_used: usize,
}

/// Fit a Gaussian to the histogram's peak region by the log-parabola
/// method: for Gaussian counts, `ln y` is a parabola in `x`, so a
/// weighted least-squares parabola through `(bin center, ln height)`
/// gives closed-form `(A, μ, σ)`. `window` selects bins within
/// `window · rms` of the tallest bin; bins with non-positive content are
/// skipped. Returns `None` when fewer than three usable bins exist or the
/// curvature has the wrong sign (no peak).
pub fn fit_gaussian(h: &Histogram1D, window: f64) -> Option<GaussianFit> {
    fit_gaussian_in(h, h.axis().lower_edge(), h.axis().upper_edge(), window)
}

/// Like [`fit_gaussian`], but the peak is searched only inside
/// `[search_lo, search_hi]` — the standard move when a combinatorial
/// background dominates elsewhere in the spectrum (e.g. looking for the
/// Higgs above the low-mass continuum).
pub fn fit_gaussian_in(
    h: &Histogram1D,
    search_lo: f64,
    search_hi: f64,
    window: f64,
) -> Option<GaussianFit> {
    let n = h.axis().bins();
    // Find the tallest bin inside the search range.
    let (mut peak_bin, mut peak_h) = (0usize, 0.0f64);
    for i in 0..n {
        let c = h.axis().bin_center(i);
        if c < search_lo || c > search_hi {
            continue;
        }
        if h.bin_height(i) > peak_h {
            peak_h = h.bin_height(i);
            peak_bin = i;
        }
    }
    if peak_h <= 0.0 {
        return None;
    }
    let center = h.axis().bin_center(peak_bin);
    // Half-width of the fit window: prefer a local estimate from bins
    // around the peak rather than the global rms (background pulls it).
    let mut half_width = 0.0;
    for i in peak_bin..n {
        if h.bin_height(i) < peak_h / 2.0 {
            half_width = h.axis().bin_center(i) - center;
            break;
        }
    }
    if half_width <= 0.0 {
        half_width = h.axis().bin_width(peak_bin) * 2.0;
    }
    let span = window.max(0.5) * half_width;

    // Weighted parabola fit on (x, ln y): weights y (≈ 1/var of ln y for
    // Poisson counts).
    let (mut s0, mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut t0, mut t1, mut t2) = (0.0, 0.0, 0.0);
    let mut bins_used = 0usize;
    for i in 0..n {
        let x = h.axis().bin_center(i) - center; // shift for conditioning
        if x.abs() > span {
            continue;
        }
        let y = h.bin_height(i);
        if y <= 0.0 {
            continue;
        }
        let w = y;
        let ly = y.ln();
        s0 += w;
        s1 += w * x;
        s2 += w * x * x;
        s3 += w * x * x * x;
        s4 += w * x * x * x * x;
        t0 += w * ly;
        t1 += w * x * ly;
        t2 += w * x * x * ly;
        bins_used += 1;
    }
    if bins_used < 3 {
        return None;
    }
    // Solve the 3×3 normal equations for ly = a + b·x + c·x².
    let m = [[s0, s1, s2], [s1, s2, s3], [s2, s3, s4]];
    let rhs = [t0, t1, t2];
    let det = det3(&m);
    if det.abs() < 1e-12 {
        return None;
    }
    let a = det3(&replace_col(&m, 0, &rhs)) / det;
    let b = det3(&replace_col(&m, 1, &rhs)) / det;
    let c = det3(&replace_col(&m, 2, &rhs)) / det;
    if c >= 0.0 {
        return None; // opens upward: not a peak
    }
    let sigma = (-1.0 / (2.0 * c)).sqrt();
    let mu = -b / (2.0 * c) + center;
    let amplitude = (a - b * b / (4.0 * c)).exp();
    // Sanity: a "peak" wider than the axis or centred outside it is just
    // numerical noise on a flat / featureless spectrum.
    let span_axis = h.axis().upper_edge() - h.axis().lower_edge();
    if !sigma.is_finite()
        || sigma > span_axis
        || mu < h.axis().lower_edge()
        || mu > h.axis().upper_edge()
    {
        return None;
    }
    Some(GaussianFit {
        amplitude,
        mean: mu,
        sigma,
        bins_used,
    })
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

fn replace_col(m: &[[f64; 3]; 3], col: usize, v: &[f64; 3]) -> [[f64; 3]; 3] {
    let mut out = *m;
    for r in 0..3 {
        out[r][col] = v[r];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_hist(mean: f64, sigma: f64, entries: usize) -> Histogram1D {
        // Deterministic quasi-random Gaussian fills via the inverse-erf-free
        // Box–Muller with a fixed LCG.
        let mut h = Histogram1D::new("g", 120, mean - 6.0 * sigma, mean + 6.0 * sigma);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..entries {
            let (u1, u2): (f64, f64) = (next().max(1e-12), next());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            h.fill1(mean + sigma * z);
        }
        h
    }

    #[test]
    fn rebin_preserves_totals() {
        let h = gaussian_hist(50.0, 5.0, 20_000);
        for k in [1, 2, 3, 7, 120, 500] {
            let r = rebin(&h, k);
            assert_eq!(r.entries(), h.entries(), "k={k}");
            assert!(
                (r.sum_bin_heights() - h.sum_bin_heights()).abs() < 1e-9,
                "k={k}"
            );
            assert!((r.mean() - h.mean()).abs() < 1e-9);
        }
        let r = rebin(&h, 2);
        assert_eq!(r.axis().bins(), 60);
        // Uneven division: 120 bins / 7 = 18 groups (17×7 + 1×1).
        let r = rebin(&h, 7);
        assert_eq!(r.axis().bins(), 18);
        assert!((r.axis().upper_edge() - h.axis().upper_edge()).abs() < 1e-9);
    }

    #[test]
    fn normalized_integral() {
        let h = gaussian_hist(0.0, 1.0, 5_000);
        let n = normalized(&h, 1.0);
        assert!((n.sum_bin_heights() - 1.0).abs() < 1e-9);
        // Empty histogram stays empty without NaNs.
        let e = Histogram1D::new("e", 10, 0.0, 1.0);
        let ne = normalized(&e, 1.0);
        assert_eq!(ne.sum_bin_heights(), 0.0);
    }

    #[test]
    fn add_scaled_subtracts_background() {
        let mut sig = Histogram1D::new("s", 10, 0.0, 10.0);
        let mut bkg = sig.clone_empty();
        for i in 0..10 {
            let x = i as f64 + 0.5;
            // Signal region is bins 4-5 on a flat background of 50.
            for _ in 0..50 {
                sig.fill1(x);
                bkg.fill1(x);
            }
        }
        for _ in 0..100 {
            sig.fill1(4.5);
        }
        let sub = add_scaled(&sig, &bkg, -1.0).unwrap();
        assert!((sub.bin_height(4) - 100.0).abs() < 1e-9);
        assert!((sub.bin_height(0)).abs() < 1e-9);
        // Mismatched binning errors.
        let other = Histogram1D::new("o", 11, 0.0, 10.0);
        assert!(add_scaled(&sig, &other, -1.0).is_err());
    }

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let h = gaussian_hist(120.0, 4.0, 100_000);
        let fit = fit_gaussian(&h, 1.5).expect("fit converges");
        assert!((fit.mean - 120.0).abs() < 0.2, "mean {}", fit.mean);
        assert!((fit.sigma - 4.0).abs() < 0.4, "sigma {}", fit.sigma);
        assert!(fit.bins_used >= 3);
        // Amplitude ≈ N · binwidth / (σ√2π).
        let expect_amp = 100_000.0 * h.axis().bin_width(0) / (4.0 * (std::f64::consts::TAU).sqrt());
        assert!(
            (fit.amplitude - expect_amp).abs() < 0.15 * expect_amp,
            "amp {} vs {}",
            fit.amplitude,
            expect_amp
        );
    }

    #[test]
    fn gaussian_fit_rejects_empty_and_flat() {
        let e = Histogram1D::new("e", 50, 0.0, 1.0);
        assert!(fit_gaussian(&e, 2.0).is_none());
        let mut flat = Histogram1D::new("f", 50, 0.0, 50.0);
        for i in 0..50 {
            for _ in 0..10 {
                flat.fill1(i as f64 + 0.5);
            }
        }
        // A perfectly flat spectrum has no downward curvature.
        assert!(fit_gaussian(&flat, 50.0).is_none());
    }

    #[test]
    fn gaussian_fit_on_peak_over_background() {
        // Peak + flat background: fitted mean still lands on the peak.
        let mut h = gaussian_hist(80.0, 3.0, 50_000);
        let (lo, hi) = (h.axis().lower_edge(), h.axis().upper_edge());
        let mut state = 12345u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            h.fill1(lo + u * (hi - lo));
        }
        let fit = fit_gaussian(&h, 1.0).expect("fit");
        assert!((fit.mean - 80.0).abs() < 0.5, "mean {}", fit.mean);
    }
}

//! Two-dimensional weighted histogram (AIDA `IHistogram2D`).

use serde::{Deserialize, Serialize};

use crate::annotation::Annotation;
use crate::axis::{Axis, BinIndex, OVERFLOW, UNDERFLOW};
use crate::object::{MergeError, Mergeable};
use crate::stats::WeightedStats;

/// Per-cell accumulator for 2-D histograms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Number of fills landing in this cell.
    pub entries: u64,
    /// Σw
    pub sum_w: f64,
    /// Σw²
    pub sum_w2: f64,
}

impl Cell {
    fn fill(&mut self, w: f64) {
        self.entries += 1;
        self.sum_w += w;
        self.sum_w2 += w * w;
    }

    fn merge(&mut self, o: &Cell) {
        self.entries += o.entries;
        self.sum_w += o.sum_w;
        self.sum_w2 += o.sum_w2;
    }

    fn scale(&mut self, f: f64) {
        self.sum_w *= f;
        self.sum_w2 *= f * f;
    }

    /// Cell content (Σw).
    pub fn height(&self) -> f64 {
        self.sum_w
    }

    /// Error on the content, √(Σw²).
    pub fn error(&self) -> f64 {
        self.sum_w2.sqrt()
    }
}

/// Storage index over the extended grid: in-range bins plus a rim of
/// under/overflow cells on each axis. Internally cells live on an
/// `(nx + 2) × (ny + 2)` grid where slot 0 is underflow and slot `n + 1`
/// is overflow.
fn slot(index: BinIndex, n: usize) -> usize {
    match index {
        UNDERFLOW => 0,
        OVERFLOW => n + 1,
        i => i as usize + 1,
    }
}

/// A two-dimensional histogram with full under/overflow rim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram2D {
    title: String,
    x_axis: Axis,
    y_axis: Axis,
    /// `(nx + 2) * (ny + 2)` cells, row-major over the extended grid.
    cells: Vec<Cell>,
    x_stats: WeightedStats,
    y_stats: WeightedStats,
    /// Key/value annotations.
    pub annotation: Annotation,
}

impl Histogram2D {
    /// Fixed-width 2-D histogram.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        title: impl Into<String>,
        nx: usize,
        xlo: f64,
        xhi: f64,
        ny: usize,
        ylo: f64,
        yhi: f64,
    ) -> Self {
        Self::with_axes(title, Axis::fixed(nx, xlo, xhi), Axis::fixed(ny, ylo, yhi))
    }

    /// 2-D histogram over arbitrary axes.
    pub fn with_axes(title: impl Into<String>, x_axis: Axis, y_axis: Axis) -> Self {
        let nslots = (x_axis.bins() + 2) * (y_axis.bins() + 2);
        Histogram2D {
            title: title.into(),
            x_axis,
            y_axis,
            cells: vec![Cell::default(); nslots],
            x_stats: WeightedStats::new(),
            y_stats: WeightedStats::new(),
            annotation: Annotation::new(),
        }
    }

    /// An empty clone with identical axes and annotations.
    pub fn clone_empty(&self) -> Self {
        let mut h =
            Histogram2D::with_axes(self.title.clone(), self.x_axis.clone(), self.y_axis.clone());
        h.annotation = self.annotation.clone();
        h
    }

    /// Histogram title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// X axis.
    pub fn x_axis(&self) -> &Axis {
        &self.x_axis
    }

    /// Y axis.
    pub fn y_axis(&self) -> &Axis {
        &self.y_axis
    }

    fn cell_index(&self, ix: BinIndex, iy: BinIndex) -> usize {
        let sx = slot(ix, self.x_axis.bins());
        let sy = slot(iy, self.y_axis.bins());
        sy * (self.x_axis.bins() + 2) + sx
    }

    /// Fill with coordinates `(x, y)` and weight `w`.
    pub fn fill(&mut self, x: f64, y: f64, w: f64) {
        let ix = self.x_axis.coord_to_index(x);
        let iy = self.y_axis.coord_to_index(y);
        let idx = self.cell_index(ix, iy);
        self.cells[idx].fill(w);
        if ix >= 0 && iy >= 0 {
            self.x_stats.fill(x, w);
            self.y_stats.fill(y, w);
        }
    }

    /// Fill with unit weight.
    pub fn fill1(&mut self, x: f64, y: f64) {
        self.fill(x, y, 1.0);
    }

    /// Bulk fill: one [`Histogram2D::fill`] per `(x, y)` pair, in slice
    /// order with constant weight `w` (the shorter slice bounds the fill
    /// count). Accumulation order matches the per-record path exactly.
    pub fn fill_slice(&mut self, xs: &[f64], ys: &[f64], w: f64) {
        for (&x, &y) in xs.iter().zip(ys) {
            self.fill(x, y, w);
        }
    }

    /// Access a cell by bin indices (sentinels allowed).
    pub fn cell(&self, ix: BinIndex, iy: BinIndex) -> &Cell {
        &self.cells[self.cell_index(ix, iy)]
    }

    /// Content of in-range cell `(ix, iy)`.
    pub fn bin_height(&self, ix: usize, iy: usize) -> f64 {
        self.cell(ix as BinIndex, iy as BinIndex).height()
    }

    /// Entries of in-range cell `(ix, iy)`.
    pub fn bin_entries(&self, ix: usize, iy: usize) -> u64 {
        self.cell(ix as BinIndex, iy as BinIndex).entries
    }

    /// In-range entries.
    pub fn entries(&self) -> u64 {
        self.x_stats.entries
    }

    /// All entries including the under/overflow rim.
    pub fn all_entries(&self) -> u64 {
        self.cells.iter().map(|c| c.entries).sum()
    }

    /// Tallest in-range cell content.
    pub fn max_bin_height(&self) -> f64 {
        let mut m = 0.0f64;
        for iy in 0..self.y_axis.bins() {
            for ix in 0..self.x_axis.bins() {
                m = m.max(self.bin_height(ix, iy));
            }
        }
        m
    }

    /// Weighted mean of in-range x coordinates.
    pub fn mean_x(&self) -> f64 {
        self.x_stats.mean()
    }

    /// Weighted mean of in-range y coordinates.
    pub fn mean_y(&self) -> f64 {
        self.y_stats.mean()
    }

    /// Weighted RMS of in-range x coordinates.
    pub fn rms_x(&self) -> f64 {
        self.x_stats.rms()
    }

    /// Weighted RMS of in-range y coordinates.
    pub fn rms_y(&self) -> f64 {
        self.y_stats.rms()
    }

    /// Project onto the x axis (summing over all in-range y bins).
    ///
    /// The projected histogram places each cell's weight at the cell's x bin
    /// centre; heights and entry counts are preserved exactly, bin errors are
    /// preserved (Σw² adds), and the projection's global stats are inherited
    /// from this histogram's x stats.
    pub fn projection_x(&self) -> crate::hist1d::Histogram1D {
        let mut h = crate::hist1d::Histogram1D::with_axis(
            format!("{} (x projection)", self.title),
            self.x_axis.clone(),
        );
        for ix in 0..self.x_axis.bins() {
            let center = self.x_axis.bin_center(ix);
            let mut acc = crate::hist1d::Bin::default();
            for iy in 0..self.y_axis.bins() {
                let c = self.cell(ix as BinIndex, iy as BinIndex);
                acc.entries += c.entries;
                acc.sum_w += c.sum_w;
                acc.sum_w2 += c.sum_w2;
                acc.sum_wx += c.sum_w * center;
                acc.sum_wx2 += c.sum_w * center * center;
            }
            h.set_bin_raw(ix, acc);
        }
        h.set_stats_raw(self.x_stats.clone());
        h
    }

    /// Project onto the y axis (summing over all in-range x bins);
    /// mirror of [`Histogram2D::projection_x`].
    pub fn projection_y(&self) -> crate::hist1d::Histogram1D {
        let mut h = crate::hist1d::Histogram1D::with_axis(
            format!("{} (y projection)", self.title),
            self.y_axis.clone(),
        );
        for iy in 0..self.y_axis.bins() {
            let center = self.y_axis.bin_center(iy);
            let mut acc = crate::hist1d::Bin::default();
            for ix in 0..self.x_axis.bins() {
                let c = self.cell(ix as BinIndex, iy as BinIndex);
                acc.entries += c.entries;
                acc.sum_w += c.sum_w;
                acc.sum_w2 += c.sum_w2;
                acc.sum_wx += c.sum_w * center;
                acc.sum_wx2 += c.sum_w * center * center;
            }
            h.set_bin_raw(iy, acc);
        }
        h.set_stats_raw(self.y_stats.clone());
        h
    }

    /// Multiply every cell content by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.cells {
            c.scale(factor);
        }
        self.x_stats.scale(factor);
        self.y_stats.scale(factor);
    }

    /// Clear all contents.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            *c = Cell::default();
        }
        self.x_stats.reset();
        self.y_stats.reset();
    }
}

impl Mergeable for Histogram2D {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.x_axis.compatible(&other.x_axis) || !self.y_axis.compatible(&other.y_axis) {
            return Err(MergeError::IncompatibleBinning {
                what: format!("histogram2d '{}'", self.title),
            });
        }
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
        self.x_stats.merge(&other.x_stats);
        self.y_stats.merge(&other.y_stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-10 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fill_slice_matches_repeated_fill() {
        let mut bulk = Histogram2D::new("t", 6, 0.0, 6.0, 4, 0.0, 4.0);
        let mut serial = bulk.clone_empty();
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.07 - 1.0).collect();
        let ys: Vec<f64> = (0..200).map(|i| i as f64 * 0.031).collect();
        bulk.fill_slice(&xs, &ys, 2.0);
        for (&x, &y) in xs.iter().zip(&ys) {
            serial.fill(x, y, 2.0);
        }
        assert_eq!(bulk, serial);
    }

    #[test]
    fn fill_lands_in_correct_cell() {
        let mut h = Histogram2D::new("t", 10, 0.0, 10.0, 5, 0.0, 5.0);
        h.fill1(3.5, 2.5);
        assert_eq!(h.bin_entries(3, 2), 1);
        assert!(approx(h.bin_height(3, 2), 1.0));
        assert_eq!(h.entries(), 1);
    }

    #[test]
    fn overflow_rim_catches_out_of_range() {
        let mut h = Histogram2D::new("t", 2, 0.0, 1.0, 2, 0.0, 1.0);
        h.fill1(5.0, 0.25); // x overflow, y in range (bin 0)
        h.fill1(-1.0, -1.0); // both underflow
        assert_eq!(h.entries(), 0);
        assert_eq!(h.all_entries(), 2);
        assert_eq!(h.cell(OVERFLOW, 0).entries, 1);
        assert_eq!(h.cell(UNDERFLOW, UNDERFLOW).entries, 1);
    }

    #[test]
    fn means_track_in_range_fills_only() {
        let mut h = Histogram2D::new("t", 10, 0.0, 10.0, 10, 0.0, 10.0);
        h.fill1(2.0, 4.0);
        h.fill1(4.0, 8.0);
        h.fill1(100.0, 100.0);
        assert!(approx(h.mean_x(), 3.0));
        assert!(approx(h.mean_y(), 6.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let mut whole = Histogram2D::new("t", 8, 0.0, 8.0, 8, 0.0, 8.0);
        let mut a = whole.clone_empty();
        let mut b = whole.clone_empty();
        for i in 0..400 {
            let x = ((i * 13) % 97) as f64 / 10.0;
            let y = ((i * 29) % 89) as f64 / 10.0;
            let w = 1.0 + (i % 2) as f64;
            whole.fill(x, y, w);
            if i % 2 == 0 {
                a.fill(x, y, w)
            } else {
                b.fill(x, y, w)
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.all_entries(), whole.all_entries());
        for ix in 0..8 {
            for iy in 0..8 {
                assert!(approx(a.bin_height(ix, iy), whole.bin_height(ix, iy)));
            }
        }
        assert!(approx(a.mean_x(), whole.mean_x()));
        assert!(approx(a.rms_y(), whole.rms_y()));
    }

    #[test]
    fn merge_rejects_different_axes() {
        let mut a = Histogram2D::new("t", 2, 0.0, 1.0, 2, 0.0, 1.0);
        let b = Histogram2D::new("t", 2, 0.0, 1.0, 3, 0.0, 1.0);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn projection_preserves_totals() {
        let mut h = Histogram2D::new("t", 4, 0.0, 4.0, 4, 0.0, 4.0);
        h.fill1(0.5, 0.5);
        h.fill1(0.5, 3.5);
        h.fill1(2.5, 1.5);
        let px = h.projection_x();
        assert_eq!(px.entries(), 3);
        assert!(approx(px.bin_height(0), 2.0));
        assert!(approx(px.bin_height(2), 1.0));
    }

    #[test]
    fn projection_y_preserves_totals() {
        let mut h = Histogram2D::new("t", 4, 0.0, 4.0, 4, 0.0, 4.0);
        h.fill1(0.5, 0.5);
        h.fill1(3.5, 0.5);
        h.fill1(2.5, 2.5);
        let py = h.projection_y();
        assert_eq!(py.entries(), 3);
        assert!((py.bin_height(0) - 2.0).abs() < 1e-12);
        assert!((py.bin_height(2) - 1.0).abs() < 1e-12);
        assert!((py.mean() - h.mean_y()).abs() < 1e-12);
    }

    #[test]
    fn scale_and_reset() {
        let mut h = Histogram2D::new("t", 2, 0.0, 2.0, 2, 0.0, 2.0);
        h.fill(0.5, 0.5, 4.0);
        h.scale(0.25);
        assert!(approx(h.bin_height(0, 0), 1.0));
        h.reset();
        assert_eq!(h.all_entries(), 0);
        assert_eq!(h.max_bin_height(), 0.0);
    }
}

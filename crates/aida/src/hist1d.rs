//! One-dimensional weighted histogram (AIDA `IHistogram1D`).

use serde::{Deserialize, Serialize};

use crate::annotation::Annotation;
use crate::axis::{Axis, BinIndex, OVERFLOW, UNDERFLOW};
use crate::object::{MergeError, Mergeable};
use crate::stats::WeightedStats;

/// Per-bin accumulator. Raw sums are kept so that merging is exact and the
/// in-bin mean/rms can be computed (AIDA `binMean`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Number of fills landing in this bin.
    pub entries: u64,
    /// Σw
    pub sum_w: f64,
    /// Σw² (for the bin error)
    pub sum_w2: f64,
    /// Σw·x (for the in-bin mean)
    pub sum_wx: f64,
    /// Σw·x²
    pub sum_wx2: f64,
}

impl Bin {
    fn fill(&mut self, x: f64, w: f64) {
        self.entries += 1;
        self.sum_w += w;
        self.sum_w2 += w * w;
        self.sum_wx += w * x;
        self.sum_wx2 += w * x * x;
    }

    fn merge(&mut self, other: &Bin) {
        self.entries += other.entries;
        self.sum_w += other.sum_w;
        self.sum_w2 += other.sum_w2;
        self.sum_wx += other.sum_wx;
        self.sum_wx2 += other.sum_wx2;
    }

    fn scale(&mut self, f: f64) {
        self.sum_w *= f;
        self.sum_w2 *= f * f;
        self.sum_wx *= f;
        self.sum_wx2 *= f;
    }

    /// Height of the bin (Σw).
    pub fn height(&self) -> f64 {
        self.sum_w
    }

    /// Poisson-style error on the height, √(Σw²).
    pub fn error(&self) -> f64 {
        self.sum_w2.sqrt()
    }

    /// Weighted mean of the coordinates that filled this bin.
    pub fn mean(&self) -> f64 {
        if self.sum_w == 0.0 {
            f64::NAN
        } else {
            self.sum_wx / self.sum_w
        }
    }
}

/// A one-dimensional histogram: a title, an [`Axis`], in-range bins, and
/// under/overflow bins, plus global [`WeightedStats`] of the filled
/// coordinates (computed from *all* fills, like AIDA's `mean()`/`rms()` of
/// in-range data — we follow ROOT/AIDA and use in-range fills only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram1D {
    title: String,
    axis: Axis,
    bins: Vec<Bin>,
    underflow: Bin,
    overflow: Bin,
    /// Stats over in-range fills.
    stats: WeightedStats,
    /// Key/value annotations (axis labels etc.).
    pub annotation: Annotation,
}

impl Histogram1D {
    /// Fixed-width histogram with `nbins` bins on `[lo, hi)`.
    pub fn new(title: impl Into<String>, nbins: usize, lo: f64, hi: f64) -> Self {
        Self::with_axis(title, Axis::fixed(nbins, lo, hi))
    }

    /// Histogram over an arbitrary axis.
    pub fn with_axis(title: impl Into<String>, axis: Axis) -> Self {
        let n = axis.bins();
        Histogram1D {
            title: title.into(),
            axis,
            bins: vec![Bin::default(); n],
            underflow: Bin::default(),
            overflow: Bin::default(),
            stats: WeightedStats::new(),
            annotation: Annotation::new(),
        }
    }

    /// An empty histogram with the same title/axis/annotations.
    pub fn clone_empty(&self) -> Self {
        let mut h = Histogram1D::with_axis(self.title.clone(), self.axis.clone());
        h.annotation = self.annotation.clone();
        h
    }

    /// Histogram title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Set the title.
    pub fn set_title(&mut self, t: impl Into<String>) {
        self.title = t.into();
    }

    /// The binning axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    /// Fill with coordinate `x` and weight `w`.
    pub fn fill(&mut self, x: f64, w: f64) {
        match self.axis.coord_to_index(x) {
            UNDERFLOW => self.underflow.fill(x, w),
            OVERFLOW => self.overflow.fill(x, w),
            i => {
                self.bins[i as usize].fill(x, w);
                self.stats.fill(x, w);
            }
        }
    }

    /// Fill with unit weight.
    pub fn fill1(&mut self, x: f64) {
        self.fill(x, 1.0);
    }

    /// Bulk fill: one [`Histogram1D::fill`] per element of `xs`, in slice
    /// order with constant weight `w`. Identical accumulation order to the
    /// per-record path, so partial results stay bit-exact under merging;
    /// the monomorphic inner loop costs one bounds check per element
    /// instead of a dispatch + path lookup.
    pub fn fill_slice(&mut self, xs: &[f64], w: f64) {
        for &x in xs {
            self.fill(x, w);
        }
    }

    /// Bulk weighted fill over parallel coordinate/weight slices (the
    /// shorter slice bounds the fill count).
    pub fn fill_slice_weighted(&mut self, xs: &[f64], ws: &[f64]) {
        for (&x, &w) in xs.iter().zip(ws) {
            self.fill(x, w);
        }
    }

    /// Access a bin by [`BinIndex`] (including the under/overflow sentinels).
    pub fn bin(&self, index: BinIndex) -> &Bin {
        match index {
            UNDERFLOW => &self.underflow,
            OVERFLOW => &self.overflow,
            i => &self.bins[i as usize],
        }
    }

    /// Height (Σw) of in-range bin `i`.
    pub fn bin_height(&self, i: usize) -> f64 {
        self.bins[i].height()
    }

    /// Error (√Σw²) of in-range bin `i`.
    pub fn bin_error(&self, i: usize) -> f64 {
        self.bins[i].error()
    }

    /// Entries in in-range bin `i`.
    pub fn bin_entries(&self, i: usize) -> u64 {
        self.bins[i].entries
    }

    /// Entries in range (excludes under/overflow).
    pub fn entries(&self) -> u64 {
        self.stats.entries
    }

    /// Entries including under/overflow.
    pub fn all_entries(&self) -> u64 {
        self.stats.entries + self.underflow.entries + self.overflow.entries
    }

    /// Entries that fell outside the axis.
    pub fn extra_entries(&self) -> u64 {
        self.underflow.entries + self.overflow.entries
    }

    /// Σw over in-range bins.
    pub fn sum_bin_heights(&self) -> f64 {
        self.bins.iter().map(Bin::height).sum()
    }

    /// Σw over all bins including under/overflow.
    pub fn sum_all_bin_heights(&self) -> f64 {
        self.sum_bin_heights() + self.underflow.height() + self.overflow.height()
    }

    /// Height of the tallest in-range bin (0 for an empty histogram).
    pub fn max_bin_height(&self) -> f64 {
        self.bins.iter().map(Bin::height).fold(0.0, f64::max)
    }

    /// Weighted mean of in-range fills.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Weighted RMS of in-range fills.
    pub fn rms(&self) -> f64 {
        self.stats.rms()
    }

    /// The underflow bin.
    pub fn underflow(&self) -> &Bin {
        &self.underflow
    }

    /// The overflow bin.
    pub fn overflow(&self) -> &Bin {
        &self.overflow
    }

    /// Multiply every bin content by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for b in &mut self.bins {
            b.scale(factor);
        }
        self.underflow.scale(factor);
        self.overflow.scale(factor);
        self.stats.scale(factor);
    }

    /// Clear all contents, keeping title/axis/annotations.
    pub fn reset(&mut self) {
        for b in &mut self.bins {
            *b = Bin::default();
        }
        self.underflow = Bin::default();
        self.overflow = Bin::default();
        self.stats.reset();
    }

    /// Overwrite in-range bin `i` with a raw accumulator. Intended for
    /// projections and other bulk constructions inside this crate; global
    /// stats are *not* updated (see [`Histogram1D::set_stats_raw`]).
    pub fn set_bin_raw(&mut self, i: usize, bin: Bin) {
        self.bins[i] = bin;
    }

    /// Overwrite the global in-range statistics. Pairs with
    /// [`Histogram1D::set_bin_raw`] when building a histogram from
    /// precomputed accumulators.
    pub fn set_stats_raw(&mut self, stats: WeightedStats) {
        self.stats = stats;
    }

    /// Snapshot of the global in-range statistics.
    pub fn stats_snapshot(&self) -> WeightedStats {
        self.stats.clone()
    }

    /// Overwrite the under/overflow accumulators (bulk construction).
    pub fn set_flow_raw(&mut self, underflow: Bin, overflow: Bin) {
        self.underflow = underflow;
        self.overflow = overflow;
    }

    /// Iterate in-range bins with their centres: `(center, &Bin)`.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, &Bin)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, b)| (self.axis.bin_center(i), b))
    }
}

impl Mergeable for Histogram1D {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.axis.compatible(&other.axis) {
            return Err(MergeError::IncompatibleBinning {
                what: format!("histogram1d '{}'", self.title),
            });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            a.merge(b);
        }
        self.underflow.merge(&other.underflow);
        self.overflow.merge(&other.overflow);
        self.stats.merge(&other.stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-10 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fill_lands_in_the_right_bin() {
        let mut h = Histogram1D::new("t", 10, 0.0, 10.0);
        h.fill1(3.5);
        assert_eq!(h.bin_entries(3), 1);
        assert_eq!(h.bin_height(3), 1.0);
        assert_eq!(h.entries(), 1);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram1D::new("t", 4, 0.0, 1.0);
        h.fill1(-5.0);
        h.fill1(2.0);
        h.fill1(0.5);
        assert_eq!(h.underflow().entries, 1);
        assert_eq!(h.overflow().entries, 1);
        assert_eq!(h.entries(), 1);
        assert_eq!(h.all_entries(), 3);
        assert_eq!(h.extra_entries(), 2);
    }

    #[test]
    fn weighted_fill_heights_and_errors() {
        let mut h = Histogram1D::new("t", 2, 0.0, 2.0);
        h.fill(0.5, 2.0);
        h.fill(0.5, 3.0);
        assert!(approx(h.bin_height(0), 5.0));
        assert!(approx(h.bin_error(0), (4.0f64 + 9.0).sqrt()));
    }

    #[test]
    fn mean_and_rms_track_in_range_fills() {
        let mut h = Histogram1D::new("t", 100, 0.0, 10.0);
        h.fill1(2.0);
        h.fill1(4.0);
        h.fill1(100.0); // overflow, excluded from stats
        assert!(approx(h.mean(), 3.0));
        assert!(approx(h.rms(), 1.0));
    }

    #[test]
    fn merge_is_exact_partition_of_fills() {
        let mut whole = Histogram1D::new("t", 20, -5.0, 5.0);
        let mut a = whole.clone_empty();
        let mut b = whole.clone_empty();
        for i in 0..500 {
            let x = ((i * 37) % 113) as f64 / 10.0 - 5.5;
            let w = 1.0 + (i % 4) as f64 * 0.5;
            whole.fill(x, w);
            if i % 3 == 0 {
                a.fill(x, w)
            } else {
                b.fill(x, w)
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.all_entries(), whole.all_entries());
        for i in 0..20 {
            assert!(approx(a.bin_height(i), whole.bin_height(i)));
            assert_eq!(a.bin_entries(i), whole.bin_entries(i));
        }
        assert!(approx(a.mean(), whole.mean()));
        assert!(approx(a.rms(), whole.rms()));
    }

    #[test]
    fn merge_rejects_incompatible_axes() {
        let mut a = Histogram1D::new("t", 10, 0.0, 1.0);
        let b = Histogram1D::new("t", 11, 0.0, 1.0);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn scale_then_height() {
        let mut h = Histogram1D::new("t", 1, 0.0, 1.0);
        h.fill(0.5, 2.0);
        h.scale(0.5);
        assert!(approx(h.bin_height(0), 1.0));
        // Entries are unaffected by scaling.
        assert_eq!(h.entries(), 1);
    }

    #[test]
    fn reset_clears_everything_but_identity() {
        let mut h = Histogram1D::new("mass", 5, 0.0, 1.0);
        h.annotation.set("xlabel", "GeV");
        h.fill1(0.5);
        h.reset();
        assert_eq!(h.all_entries(), 0);
        assert_eq!(h.title(), "mass");
        assert_eq!(h.annotation.get("xlabel"), Some("GeV"));
        assert_eq!(h.sum_all_bin_heights(), 0.0);
    }

    #[test]
    fn max_bin_height_of_empty_is_zero() {
        let h = Histogram1D::new("t", 3, 0.0, 1.0);
        assert_eq!(h.max_bin_height(), 0.0);
    }

    #[test]
    fn fill_slice_matches_repeated_fill() {
        let mut bulk = Histogram1D::new("t", 10, 0.0, 10.0);
        let mut serial = bulk.clone_empty();
        let xs: Vec<f64> = (0..257).map(|i| i as f64 * 0.137 - 2.0).collect();
        let ws: Vec<f64> = (0..257).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        bulk.fill_slice(&xs, 1.0);
        bulk.fill_slice_weighted(&xs, &ws);
        for &x in &xs {
            serial.fill(x, 1.0);
        }
        for (&x, &w) in xs.iter().zip(&ws) {
            serial.fill(x, w);
        }
        assert_eq!(bulk, serial);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram1D::new("t", 4, 0.0, 4.0);
        h.fill(1.5, 2.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram1D = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}

//! The polymorphic analysis object and the merge contract.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cloud::{Cloud1D, Cloud2D};
use crate::dps::DataPointSet;
use crate::hist1d::Histogram1D;
use crate::hist2d::Histogram2D;
use crate::profile::Profile1D;
use crate::tuple::Tuple;

/// Error combining two partial results.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Axes / schema / dimension differ between the two sides.
    IncompatibleBinning {
        /// Human-readable description of the object that failed.
        what: String,
    },
    /// The two objects are different kinds (e.g. 1-D vs 2-D histogram).
    KindMismatch {
        /// Kind of the receiving object.
        ours: &'static str,
        /// Kind of the incoming object.
        theirs: &'static str,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::IncompatibleBinning { what } => {
                write!(f, "incompatible binning/schema merging {what}")
            }
            MergeError::KindMismatch { ours, theirs } => {
                write!(f, "cannot merge object kind {theirs} into {ours}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Types whose partial results from different engines can be combined.
///
/// Implementations must be *exact* for counts and raw weight sums, and
/// (up to floating-point reassociation) independent of merge order — this is
/// what lets the AIDA manager merge engine results continuously as they
/// arrive, in any order.
pub trait Mergeable {
    /// Absorb `other` into `self`.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// How one object changed relative to an earlier snapshot of itself.
///
/// Deltas must be *exact*: applying the delta to the old snapshot reproduces
/// the new object bit-for-bit. Dense accumulators (histograms, profiles) can
/// only guarantee that by shipping the whole new object (`Replace`) — bin-wise
/// floating-point subtraction is not invertible. Append-only objects (data
/// point sets, ntuples, unconverted clouds) ship just the new suffix
/// (`Append`), which is applied via the ordinary [`Mergeable::merge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectDelta {
    /// The full new object; overwrites whatever was at the path.
    Replace(AidaObject),
    /// A suffix object; merged into the existing object at the path.
    Append(AidaObject),
}

/// Any object a [`crate::Tree`] can hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AidaObject {
    /// 1-D histogram.
    H1(Histogram1D),
    /// 2-D histogram.
    H2(Histogram2D),
    /// Profile histogram.
    P1(Profile1D),
    /// 1-D cloud.
    C1(Cloud1D),
    /// 2-D cloud.
    C2(Cloud2D),
    /// Data point set.
    Dps(DataPointSet),
    /// Ntuple.
    Tup(Tuple),
}

impl AidaObject {
    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            AidaObject::H1(_) => "Histogram1D",
            AidaObject::H2(_) => "Histogram2D",
            AidaObject::P1(_) => "Profile1D",
            AidaObject::C1(_) => "Cloud1D",
            AidaObject::C2(_) => "Cloud2D",
            AidaObject::Dps(_) => "DataPointSet",
            AidaObject::Tup(_) => "Tuple",
        }
    }

    /// Title of the wrapped object.
    pub fn title(&self) -> &str {
        match self {
            AidaObject::H1(h) => h.title(),
            AidaObject::H2(h) => h.title(),
            AidaObject::P1(p) => p.title(),
            AidaObject::C1(c) => c.title(),
            AidaObject::C2(c) => c.title(),
            AidaObject::Dps(d) => d.title(),
            AidaObject::Tup(t) => t.title(),
        }
    }

    /// Total entries / rows / points in the wrapped object.
    pub fn entries(&self) -> u64 {
        match self {
            AidaObject::H1(h) => h.all_entries(),
            AidaObject::H2(h) => h.all_entries(),
            AidaObject::P1(p) => p.all_entries(),
            AidaObject::C1(c) => c.entries(),
            AidaObject::C2(c) => c.entries(),
            AidaObject::Dps(d) => d.len() as u64,
            AidaObject::Tup(t) => t.rows() as u64,
        }
    }

    /// Borrow as a 1-D histogram if that is what this is.
    pub fn as_h1(&self) -> Option<&Histogram1D> {
        match self {
            AidaObject::H1(h) => Some(h),
            _ => None,
        }
    }

    /// Borrow as a 2-D histogram if that is what this is.
    pub fn as_h2(&self) -> Option<&Histogram2D> {
        match self {
            AidaObject::H2(h) => Some(h),
            _ => None,
        }
    }

    /// Borrow as a profile if that is what this is.
    pub fn as_p1(&self) -> Option<&Profile1D> {
        match self {
            AidaObject::P1(p) => Some(p),
            _ => None,
        }
    }

    /// Borrow as a tuple if that is what this is.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            AidaObject::Tup(t) => Some(t),
            _ => None,
        }
    }

    /// Delta from `old` (an earlier snapshot of this same object) to `self`.
    ///
    /// Returns `None` when nothing changed. Append-only kinds emit a compact
    /// [`ObjectDelta::Append`] suffix when `old` is an exact prefix of `self`;
    /// every other change falls back to [`ObjectDelta::Replace`] so the
    /// invariant `apply(old, delta) == self` holds exactly, including for
    /// floating-point bin contents.
    pub fn diff_from(&self, old: &Self) -> Option<ObjectDelta> {
        if self == old {
            return None;
        }
        let append = match (old, self) {
            (AidaObject::Dps(a), AidaObject::Dps(b)) => {
                b.append_since(a).map(|d| ObjectDelta::Append(d.into()))
            }
            (AidaObject::Tup(a), AidaObject::Tup(b)) => {
                b.append_since(a).map(|d| ObjectDelta::Append(d.into()))
            }
            (AidaObject::C1(a), AidaObject::C1(b)) => {
                b.append_since(a).map(|d| ObjectDelta::Append(d.into()))
            }
            (AidaObject::C2(a), AidaObject::C2(b)) => {
                b.append_since(a).map(|d| ObjectDelta::Append(d.into()))
            }
            _ => None,
        };
        Some(append.unwrap_or_else(|| ObjectDelta::Replace(self.clone())))
    }
}

impl Mergeable for AidaObject {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        match (self, other) {
            (AidaObject::H1(a), AidaObject::H1(b)) => a.merge(b),
            (AidaObject::H2(a), AidaObject::H2(b)) => a.merge(b),
            (AidaObject::P1(a), AidaObject::P1(b)) => a.merge(b),
            (AidaObject::C1(a), AidaObject::C1(b)) => a.merge(b),
            (AidaObject::C2(a), AidaObject::C2(b)) => a.merge(b),
            (AidaObject::Dps(a), AidaObject::Dps(b)) => a.merge(b),
            (AidaObject::Tup(a), AidaObject::Tup(b)) => a.merge(b),
            (me, other) => Err(MergeError::KindMismatch {
                ours: me.kind(),
                theirs: other.kind(),
            }),
        }
    }
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for AidaObject {
            fn from(v: $ty) -> Self {
                AidaObject::$variant(v)
            }
        }
    };
}

from_impl!(H1, Histogram1D);
from_impl!(H2, Histogram2D);
from_impl!(P1, Profile1D);
from_impl!(C1, Cloud1D);
from_impl!(C2, Cloud2D);
from_impl!(Dps, DataPointSet);
from_impl!(Tup, Tuple);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_title() {
        let o: AidaObject = Histogram1D::new("mass", 10, 0.0, 1.0).into();
        assert_eq!(o.kind(), "Histogram1D");
        assert_eq!(o.title(), "mass");
        assert!(o.as_h1().is_some());
        assert!(o.as_h2().is_none());
    }

    #[test]
    fn same_kind_merges() {
        let mut a: AidaObject = Histogram1D::new("t", 10, 0.0, 1.0).into();
        let mut h = Histogram1D::new("t", 10, 0.0, 1.0);
        h.fill1(0.5);
        let b: AidaObject = h.into();
        a.merge(&b).unwrap();
        assert_eq!(a.entries(), 1);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut a: AidaObject = Histogram1D::new("t", 10, 0.0, 1.0).into();
        let b: AidaObject = Profile1D::new("t", 10, 0.0, 1.0).into();
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, MergeError::KindMismatch { .. }));
        assert!(err.to_string().contains("Profile1D"));
    }

    #[test]
    fn diff_from_unchanged_is_none() {
        let o: AidaObject = Histogram1D::new("t", 10, 0.0, 1.0).into();
        assert!(o.diff_from(&o.clone()).is_none());
    }

    #[test]
    fn diff_from_histogram_is_replace() {
        let old: AidaObject = Histogram1D::new("t", 10, 0.0, 1.0).into();
        let mut h = Histogram1D::new("t", 10, 0.0, 1.0);
        h.fill1(0.5);
        let new: AidaObject = h.into();
        let Some(ObjectDelta::Replace(r)) = new.diff_from(&old) else {
            panic!("dense accumulators must replace");
        };
        assert_eq!(r, new);
    }

    #[test]
    fn diff_from_append_only_kinds_is_suffix() {
        // DataPointSet grows by one point → Append carrying exactly that one.
        let mut old = DataPointSet::new("d", 2);
        old.add_xy(1.0, 1.0, 0.0);
        let mut new = old.clone();
        new.add_xy(2.0, 2.0, 0.0);
        let (o, n): (AidaObject, AidaObject) = (old.clone().into(), new.clone().into());
        let Some(ObjectDelta::Append(suffix)) = n.diff_from(&o) else {
            panic!("dps must append");
        };
        assert_eq!(suffix.entries(), 1);
        // Applying the suffix via merge reproduces the new object exactly.
        let mut rebuilt: AidaObject = old.into();
        rebuilt.merge(&suffix).unwrap();
        assert_eq!(rebuilt, n);

        // A cloud that converted since the baseline must fall back to replace.
        let mut c_old = Cloud1D::with_max_entries("c", 2);
        c_old.fill1(1.0);
        let mut c_new = c_old.clone();
        c_new.fill1(2.0); // triggers conversion
        let (o, n): (AidaObject, AidaObject) = (c_old.into(), c_new.into());
        assert!(matches!(n.diff_from(&o), Some(ObjectDelta::Replace(_))));
    }

    #[test]
    fn entries_across_kinds() {
        let mut c = Cloud1D::new("c");
        c.fill1(1.0);
        let o: AidaObject = c.into();
        assert_eq!(o.entries(), 1);

        let mut d = DataPointSet::new("d", 2);
        d.add_xy(1.0, 2.0, 0.0);
        let o: AidaObject = d.into();
        assert_eq!(o.entries(), 1);
    }
}

//! Weighted running statistics.
//!
//! The moment accumulator shared by histograms, profiles, and clouds. It
//! stores raw sums (Σw, Σwx, Σwx², …) rather than derived quantities so that
//! merging partial results from different analysis engines is *exact* — the
//! property the IPA result-merge plane depends on.

use serde::{Deserialize, Serialize};

/// Running weighted statistics for a one-dimensional quantity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightedStats {
    /// Number of `fill` calls (unweighted entry count).
    pub entries: u64,
    /// Σw
    pub sum_w: f64,
    /// Σw²
    pub sum_w2: f64,
    /// Σw·x
    pub sum_wx: f64,
    /// Σw·x²
    pub sum_wx2: f64,
    /// Smallest x seen (`None` when empty). Stored as an option rather
    /// than a NaN sentinel: NaN serializes to JSON `null`, which can never
    /// be read back into a plain f64 — empty accumulators crossing the
    /// gateway or journal would poison the whole payload. `None` encodes
    /// to the same `null` on the wire but round-trips.
    pub min: Option<f64>,
    /// Largest x seen (`None` when empty).
    pub max: Option<f64>,
}

impl WeightedStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        WeightedStats {
            entries: 0,
            sum_w: 0.0,
            sum_w2: 0.0,
            sum_wx: 0.0,
            sum_wx2: 0.0,
            min: None,
            max: None,
        }
    }

    /// Accumulate one observation `x` with weight `w`.
    pub fn fill(&mut self, x: f64, w: f64) {
        self.entries += 1;
        self.sum_w += w;
        self.sum_w2 += w * w;
        self.sum_wx += w * x;
        self.sum_wx2 += w * x * x;
        if self.min.is_none_or(|m| x < m) {
            self.min = Some(x);
        }
        if self.max.is_none_or(|m| x > m) {
            self.max = Some(x);
        }
    }

    /// Weighted mean, or NaN when no weight has been accumulated.
    pub fn mean(&self) -> f64 {
        if self.sum_w == 0.0 {
            f64::NAN
        } else {
            self.sum_wx / self.sum_w
        }
    }

    /// Weighted RMS (population standard deviation), or NaN when empty.
    pub fn rms(&self) -> f64 {
        if self.sum_w == 0.0 {
            return f64::NAN;
        }
        let m = self.mean();
        // Guard against tiny negative values from cancellation.
        (self.sum_wx2 / self.sum_w - m * m).max(0.0).sqrt()
    }

    /// Effective number of entries, Neff = (Σw)²/Σw².
    pub fn effective_entries(&self) -> f64 {
        if self.sum_w2 == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w2
        }
    }

    /// True if nothing has been filled.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Absorb another accumulator; exact (raw sums add).
    pub fn merge(&mut self, other: &WeightedStats) {
        self.entries += other.entries;
        self.sum_w += other.sum_w;
        self.sum_w2 += other.sum_w2;
        self.sum_wx += other.sum_wx;
        self.sum_wx2 += other.sum_wx2;
        if let Some(om) = other.min {
            if self.min.is_none_or(|m| om < m) {
                self.min = Some(om);
            }
        }
        if let Some(om) = other.max {
            if self.max.is_none_or(|m| om > m) {
                self.max = Some(om);
            }
        }
    }

    /// Multiply all accumulated weights by `factor` (histogram `scale`).
    pub fn scale(&mut self, factor: f64) {
        self.sum_w *= factor;
        self.sum_w2 *= factor * factor;
        self.sum_wx *= factor;
        self.sum_wx2 *= factor;
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        *self = WeightedStats::new();
    }
}

/// NaN-aware equality: scripts can legitimately fill NaN coordinates
/// (0.0/0.0 and friends), and a derived impl would then make an
/// accumulator unequal to its own clone — which breaks
/// `AidaObject::diff_from`'s unchanged-means-`None` contract and forces
/// full `Replace` deltas for objects that did not change.
impl PartialEq for WeightedStats {
    fn eq(&self, other: &Self) -> bool {
        fn feq(a: Option<f64>, b: Option<f64>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
                _ => false,
            }
        }
        self.entries == other.entries
            && self.sum_w == other.sum_w
            && self.sum_w2 == other.sum_w2
            && self.sum_wx == other.sum_wx
            && self.sum_wx2 == other.sum_wx2
            && feq(self.min, other.min)
            && feq(self.max, other.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = WeightedStats::new();
        assert!(s.mean().is_nan());
        assert!(s.rms().is_nan());
        assert!(s.min.is_none());
        assert!(s.is_empty());
        assert_eq!(s.effective_entries(), 0.0);
    }

    #[test]
    fn unweighted_mean_and_rms() {
        let mut s = WeightedStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.fill(x, 1.0);
        }
        assert!(approx(s.mean(), 2.5));
        assert!(approx(s.rms(), (1.25f64).sqrt()));
        assert_eq!(s.entries, 4);
        assert!(approx(s.effective_entries(), 4.0));
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(4.0));
    }

    #[test]
    fn weights_shift_the_mean() {
        let mut s = WeightedStats::new();
        s.fill(0.0, 1.0);
        s.fill(10.0, 3.0);
        assert!(approx(s.mean(), 7.5));
    }

    #[test]
    fn merge_equals_sequential_fill() {
        let mut all = WeightedStats::new();
        let mut a = WeightedStats::new();
        let mut b = WeightedStats::new();
        for i in 0..100 {
            let x = (i as f64) * 0.37 - 5.0;
            let w = 1.0 + (i % 3) as f64;
            all.fill(x, w);
            if i % 2 == 0 {
                a.fill(x, w);
            } else {
                b.fill(x, w);
            }
        }
        a.merge(&b);
        assert_eq!(a.entries, all.entries);
        assert!(approx(a.sum_w, all.sum_w));
        assert!(approx(a.sum_wx, all.sum_wx));
        assert!(approx(a.sum_wx2, all.sum_wx2));
        assert_eq!(a.min, all.min);
        assert_eq!(a.max, all.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = WeightedStats::new();
        s.fill(3.0, 2.0);
        let before = s.clone();
        s.merge(&WeightedStats::new());
        assert_eq!(s, before);
    }

    #[test]
    fn scale_preserves_mean_and_rms() {
        let mut s = WeightedStats::new();
        s.fill(1.0, 1.0);
        s.fill(5.0, 2.0);
        let (m, r) = (s.mean(), s.rms());
        s.scale(3.0);
        assert!(approx(s.mean(), m));
        assert!(approx(s.rms(), r));
        assert!(approx(s.sum_w, 9.0));
    }

    #[test]
    fn rms_never_negative_sqrt() {
        let mut s = WeightedStats::new();
        // Identical values: variance should be exactly 0, not NaN from -0.0 noise.
        for _ in 0..1000 {
            s.fill(0.1 + 0.2, 1.0);
        }
        assert!(s.rms() >= 0.0);
    }
}

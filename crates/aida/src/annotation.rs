//! Key/value annotations attached to analysis objects.
//!
//! AIDA attaches a small string-keyed metadata map to every managed object
//! (title, axis labels, fill style hints …). We keep insertion order so that
//! rendered legends are stable.

use serde::{Deserialize, Serialize};

/// Ordered key/value annotation map.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    items: Vec<(String, String)>,
}

impl Annotation {
    /// Empty annotation set.
    pub fn new() -> Self {
        Annotation { items: Vec::new() }
    }

    /// Set (insert or replace) a key.
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        if let Some(slot) = self.items.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.items.push((key.to_string(), value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Remove a key, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        let pos = self.items.iter().position(|(k, _)| k == key)?;
        Some(self.items.remove(pos).1)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no annotations are set.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut a = Annotation::new();
        assert!(a.is_empty());
        a.set("title", "Mass");
        a.set("xlabel", "GeV");
        assert_eq!(a.get("title"), Some("Mass"));
        a.set("title", "Invariant mass");
        assert_eq!(a.get("title"), Some("Invariant mass"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_and_missing() {
        let mut a = Annotation::new();
        a.set("k", "v");
        assert_eq!(a.remove("k"), Some("v".to_string()));
        assert_eq!(a.remove("k"), None);
        assert_eq!(a.get("k"), None);
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut a = Annotation::new();
        a.set("b", "2");
        a.set("a", "1");
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "a"]);
    }
}

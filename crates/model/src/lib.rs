//! `ipa-model` — the paper's analytic cost model.
//!
//! Section 4 fits measurements to
//!
//! ```text
//! T_local(X)   = 6.2·X + 5.3·X = 11.5·X
//! T_grid(X, N) = 0.13·X + 0.25·X + T_move_parts + 7 + 5.3·X/N
//!              ≈ 0.338·X + 53 + (62 + 5.3·X)/N
//! ```
//!
//! with `X` the dataset size in MB and `N` the node count. This crate
//! provides:
//!
//! * [`equations`] — those closed forms with the paper's coefficients,
//! * [`fit`] — ordinary least squares (dense normal equations with a small
//!   Gaussian-elimination solver) to *recover* the coefficients from
//!   simulated measurements, reproducing the paper's fitting step,
//! * [`surface`] — the `T(X, N)` surfaces of Figure 5 and the local/grid
//!   crossover curve.

#![warn(missing_docs)]

pub mod equations;
pub mod fit;
pub mod surface;

pub use equations::{GridEquation, LocalEquation, PAPER_GRID, PAPER_LOCAL};
pub use fit::{fit_grid_equation, fit_local_equation, solve_least_squares, FitError};
pub use surface::{crossover_mb, generate_surface, SurfacePoint};

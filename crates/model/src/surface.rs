//! Figure-5 surfaces: `T(X, N)` for the local (gold) and grid (blue)
//! strategies, plus the crossover curve.

use serde::{Deserialize, Serialize};

use crate::equations::{GridEquation, LocalEquation};

/// One sampled point of the two surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Dataset size, MB.
    pub x_mb: f64,
    /// Node count.
    pub n: usize,
    /// Local analysis time, s (independent of `n`).
    pub t_local_s: f64,
    /// Grid analysis time, s.
    pub t_grid_s: f64,
}

impl SurfacePoint {
    /// True when the grid strategy wins at this point.
    pub fn grid_wins(&self) -> bool {
        self.t_grid_s < self.t_local_s
    }
}

/// Sample both surfaces over a log-ish grid of `x_values` × `n_values`.
pub fn generate_surface(
    local: &LocalEquation,
    grid: &GridEquation,
    x_values: &[f64],
    n_values: &[usize],
) -> Vec<SurfacePoint> {
    let mut out = Vec::with_capacity(x_values.len() * n_values.len());
    for &x in x_values {
        for &n in n_values {
            out.push(SurfacePoint {
                x_mb: x,
                n,
                t_local_s: local.total_s(x),
                t_grid_s: grid.total_s(x, n),
            });
        }
    }
    out
}

/// The dataset size above which the grid beats local for a given `n`
/// (bisection on the monotone difference; `None` if the grid never wins
/// below `x_max`).
pub fn crossover_mb(
    local: &LocalEquation,
    grid: &GridEquation,
    n: usize,
    x_max: f64,
) -> Option<f64> {
    let diff = |x: f64| grid.total_s(x, n) - local.total_s(x);
    if diff(x_max) >= 0.0 {
        return None;
    }
    if diff(0.0) <= 0.0 {
        return Some(0.0);
    }
    let (mut lo, mut hi) = (0.0f64, x_max);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if diff(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::{PAPER_GRID, PAPER_LOCAL};

    #[test]
    fn surface_dimensions_and_local_flatness() {
        let xs = [1.0, 10.0, 100.0];
        let ns = [1usize, 4, 16];
        let s = generate_surface(&PAPER_LOCAL, &PAPER_GRID, &xs, &ns);
        assert_eq!(s.len(), 9);
        // Local time does not depend on N.
        for x in xs {
            let vals: Vec<f64> = s
                .iter()
                .filter(|p| p.x_mb == x)
                .map(|p| p.t_local_s)
                .collect();
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn figure5_shape_grid_wins_large_x_large_n() {
        let s = generate_surface(
            &PAPER_LOCAL,
            &PAPER_GRID,
            &[1.0, 471.0, 1000.0],
            &[1, 16, 32],
        );
        let at = |x: f64, n: usize| {
            *s.iter()
                .find(|p| p.x_mb == x && p.n == n)
                .expect("sampled point")
        };
        assert!(at(1000.0, 32).grid_wins());
        assert!(at(471.0, 16).grid_wins());
        assert!(!at(1.0, 16).grid_wins()); // overheads dominate tiny data
    }

    #[test]
    fn paper_crossover_near_ten_mb() {
        // Paper: "for large dataset (> ~10 MB) … much better to use the Grid".
        let x = crossover_mb(&PAPER_LOCAL, &PAPER_GRID, 16, 1e5).expect("crossover exists");
        assert!(
            (2.0..25.0).contains(&x),
            "crossover at {x} MB, expected order-10 MB"
        );
    }

    #[test]
    fn crossover_moves_down_with_more_nodes() {
        let x2 = crossover_mb(&PAPER_LOCAL, &PAPER_GRID, 2, 1e5).unwrap();
        let x16 = crossover_mb(&PAPER_LOCAL, &PAPER_GRID, 16, 1e5).unwrap();
        assert!(x16 <= x2);
    }

    #[test]
    fn crossover_none_when_grid_never_wins() {
        // A grid slower than local everywhere.
        let slow_grid = GridEquation {
            a_s_per_mb: 100.0,
            c_s: 1000.0,
            d_s: 0.0,
            b_s_per_mb: 0.0,
        };
        assert_eq!(crossover_mb(&PAPER_LOCAL, &slow_grid, 16, 1e4), None);
    }

    #[test]
    fn crossover_zero_when_grid_always_wins() {
        let free_grid = GridEquation {
            a_s_per_mb: 0.0,
            c_s: 0.0,
            d_s: 0.0,
            b_s_per_mb: 0.0,
        };
        assert_eq!(crossover_mb(&PAPER_LOCAL, &free_grid, 16, 1e4), Some(0.0));
    }
}

//! Ordinary least squares over the cost-model bases.
//!
//! Reproduces the paper's fitting step: given `(X, N, T)` measurements —
//! here produced by the `ipa-simgrid` session simulator — recover the
//! coefficients of `T = a·X + c + (d + b·X)/N` (grid) and `T = k·X`
//! (local). The solver is dense normal equations with Gaussian elimination
//! and partial pivoting; for 2–4 unknowns that is numerically ample.

use crate::equations::{GridEquation, LocalEquation};

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer observations than unknowns.
    Underdetermined {
        /// Observations provided.
        observations: usize,
        /// Coefficients requested.
        unknowns: usize,
    },
    /// The normal matrix is singular (degenerate design, e.g. all X equal).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Underdetermined {
                observations,
                unknowns,
            } => write!(
                f,
                "{observations} observations cannot fit {unknowns} unknowns"
            ),
            FitError::Singular => write!(f, "design matrix is singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// Solve `min ‖A·β − y‖²` via the normal equations `AᵀA·β = Aᵀy`.
/// `rows` holds the design-matrix rows; each must have the same length.
pub fn solve_least_squares(rows: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, FitError> {
    assert_eq!(rows.len(), y.len(), "rows and targets must align");
    let m = rows.len();
    let k = rows.first().map(Vec::len).unwrap_or(0);
    if m < k || k == 0 {
        return Err(FitError::Underdetermined {
            observations: m,
            unknowns: k,
        });
    }
    assert!(rows.iter().all(|r| r.len() == k), "ragged design matrix");
    // Build AᵀA (k×k) and Aᵀy (k).
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &t) in rows.iter().zip(y) {
        for i in 0..k {
            aty[i] += row[i] * t;
            for j in 0..k {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    gauss_solve(&mut ata, &mut aty)?;
    Ok(aty)
}

/// In-place Gaussian elimination with partial pivoting; solution lands in `b`.
// The elimination inner loop reads row `col` while writing row `row`; index
// form is clearer than a split_at_mut dance for a 4×4 system.
#[allow(clippy::needless_range_loop)]
fn gauss_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<(), FitError> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(FitError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= f * a[col][j];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut v = b[col];
        for (j, bj) in b.iter().enumerate().take(n).skip(col + 1) {
            v -= a[col][j] * bj;
        }
        b[col] = v / a[col][col];
    }
    Ok(())
}

/// Fit `T = k·X` (through the origin) from `(x, t)` pairs, splitting `k`
/// into move/analyze parts using the known analyze fraction is not possible
/// from totals alone — so this fits the *slope* and the caller supplies the
/// decomposition (the paper measures the two phases separately; see
/// [`fit_local_equation_phases`]).
pub fn fit_local_slope(samples: &[(f64, f64)]) -> Result<f64, FitError> {
    let rows: Vec<Vec<f64>> = samples.iter().map(|&(x, _)| vec![x]).collect();
    let y: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
    Ok(solve_least_squares(&rows, &y)?[0])
}

/// Fit the local equation from per-phase measurements
/// `(x, t_move, t_analyze)`.
pub fn fit_local_equation(samples: &[(f64, f64, f64)]) -> Result<LocalEquation, FitError> {
    let move_k = fit_local_slope(&samples.iter().map(|&(x, m, _)| (x, m)).collect::<Vec<_>>())?;
    let analyze_k = fit_local_slope(&samples.iter().map(|&(x, _, a)| (x, a)).collect::<Vec<_>>())?;
    Ok(LocalEquation {
        move_s_per_mb: move_k,
        analyze_s_per_mb: analyze_k,
    })
}

/// Backwards-compatible alias used by the harness.
pub use fit_local_equation as fit_local_equation_phases;

/// Fit `T = a·X + c + (d + b·X)/N` from `(x, n, t)` observations.
pub fn fit_grid_equation(samples: &[(f64, usize, f64)]) -> Result<GridEquation, FitError> {
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|&(x, n, _)| {
            let n = n.max(1) as f64;
            vec![x, 1.0, 1.0 / n, x / n]
        })
        .collect();
    let y: Vec<f64> = samples.iter().map(|&(_, _, t)| t).collect();
    let beta = solve_least_squares(&rows, &y)?;
    Ok(GridEquation {
        a_s_per_mb: beta[0],
        c_s: beta[1],
        d_s: beta[2],
        b_s_per_mb: beta[3],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::{PAPER_GRID, PAPER_LOCAL};

    #[test]
    fn exact_linear_system() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1.
        let mut a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let mut b = vec![5.0, 1.0];
        gauss_solve(&mut a, &mut b).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert_eq!(gauss_solve(&mut a, &mut b), Err(FitError::Singular));
    }

    #[test]
    fn least_squares_recovers_exact_model() {
        // y = 3x + 7 sampled without noise.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 7.0).collect();
        let beta = solve_least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual_with_noise() {
        // y = 2x with ±1 alternating noise: slope stays near 2.
        let samples: Vec<(f64, f64)> = (1..50)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let k = fit_local_slope(&samples).unwrap();
        assert!((k - 2.0).abs() < 0.05, "k = {k}");
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(matches!(
            solve_least_squares(&[vec![1.0, 2.0]], &[3.0]),
            Err(FitError::Underdetermined { .. })
        ));
    }

    #[test]
    fn recovers_paper_local_equation_from_its_own_curve() {
        let samples: Vec<(f64, f64, f64)> = [1.0, 10.0, 100.0, 471.0, 1000.0]
            .iter()
            .map(|&x| {
                (
                    x,
                    PAPER_LOCAL.move_s_per_mb * x,
                    PAPER_LOCAL.analyze_s_per_mb * x,
                )
            })
            .collect();
        let eq = fit_local_equation(&samples).unwrap();
        assert!((eq.move_s_per_mb - 6.2).abs() < 1e-9);
        assert!((eq.analyze_s_per_mb - 5.3).abs() < 1e-9);
    }

    #[test]
    fn recovers_paper_grid_equation_from_its_own_surface() {
        let mut samples = Vec::new();
        for &x in &[1.0, 10.0, 50.0, 100.0, 471.0, 1000.0] {
            for &n in &[1usize, 2, 4, 8, 16, 32] {
                samples.push((x, n, PAPER_GRID.total_s(x, n)));
            }
        }
        let eq = fit_grid_equation(&samples).unwrap();
        assert!((eq.a_s_per_mb - 0.338).abs() < 1e-6, "{eq:?}");
        assert!((eq.c_s - 53.0).abs() < 1e-6);
        assert!((eq.d_s - 62.0).abs() < 1e-6);
        assert!((eq.b_s_per_mb - 5.3).abs() < 1e-6);
    }

    #[test]
    fn grid_fit_needs_variation_in_both_x_and_n() {
        // All N equal → 1, 1/N, X, X/N columns collinear → singular.
        let samples: Vec<(f64, usize, f64)> = [1.0, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|&x| (x, 4, PAPER_GRID.total_s(x, 4)))
            .collect();
        assert!(fit_grid_equation(&samples).is_err());
    }
}

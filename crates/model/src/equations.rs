//! The closed-form cost equations with the paper's fitted coefficients.

use serde::{Deserialize, Serialize};

/// `T_local(X) = move·X + analyze·X`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalEquation {
    /// WAN transfer seconds per MB (paper: 6.2).
    pub move_s_per_mb: f64,
    /// Analysis seconds per MB (paper: 5.3).
    pub analyze_s_per_mb: f64,
}

impl LocalEquation {
    /// Total local time for `x` MB.
    pub fn total_s(&self, x: f64) -> f64 {
        (self.move_s_per_mb + self.analyze_s_per_mb) * x
    }

    /// The combined slope (paper: 11.5 s/MB).
    pub fn slope(&self) -> f64 {
        self.move_s_per_mb + self.analyze_s_per_mb
    }
}

/// `T_grid(X, N) = a·X + c + (d + b·X)/N`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridEquation {
    /// Per-MB cost independent of N: move-whole + split + the X-dependent
    /// part of move-parts (paper: 0.338).
    pub a_s_per_mb: f64,
    /// Fixed session cost: code staging + startup-ish constant (paper: 53).
    pub c_s: f64,
    /// Per-node-divided constant (paper: 62).
    pub d_s: f64,
    /// Per-node-divided per-MB cost — the parallel analysis (paper: 5.3).
    pub b_s_per_mb: f64,
}

impl GridEquation {
    /// Total grid time for `x` MB on `n` nodes.
    pub fn total_s(&self, x: f64, n: usize) -> f64 {
        let n = n.max(1) as f64;
        self.a_s_per_mb * x + self.c_s + (self.d_s + self.b_s_per_mb * x) / n
    }
}

/// The paper's local fit: `T = 6.2X + 5.3X = 11.5X`.
pub const PAPER_LOCAL: LocalEquation = LocalEquation {
    move_s_per_mb: 6.2,
    analyze_s_per_mb: 5.3,
};

/// The paper's grid fit: `T = 0.338X + 53 + (62 + 5.3X)/N`.
pub const PAPER_GRID: GridEquation = GridEquation {
    a_s_per_mb: 0.338,
    c_s: 53.0,
    d_s: 62.0,
    b_s_per_mb: 5.3,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_local_slope() {
        assert!((PAPER_LOCAL.slope() - 11.5).abs() < 1e-12);
        assert!((PAPER_LOCAL.total_s(471.0) - 5416.5).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_values() {
        // X = 471, N = 16: 0.338·471 + 53 + (62 + 2496.3)/16 ≈ 372.1 s.
        let t = PAPER_GRID.total_s(471.0, 16);
        assert!((t - 372.1).abs() < 0.5, "t = {t}");
        // N → 1 recovers the full serial cost.
        let t1 = PAPER_GRID.total_s(471.0, 1);
        assert!(t1 > t);
    }

    #[test]
    fn grid_beats_local_for_large_datasets() {
        // Paper conclusion: "for large dataset (> ~10 MB) … it is much
        // better to use the Grid."
        for x in [20.0, 100.0, 471.0, 1000.0] {
            assert!(
                PAPER_GRID.total_s(x, 16) < PAPER_LOCAL.total_s(x),
                "x = {x}"
            );
        }
        // And locally wins for a tiny dataset.
        assert!(PAPER_GRID.total_s(1.0, 16) > PAPER_LOCAL.total_s(1.0));
    }

    #[test]
    fn monotone_in_x_and_n() {
        assert!(PAPER_GRID.total_s(100.0, 4) < PAPER_GRID.total_s(200.0, 4));
        assert!(PAPER_GRID.total_s(100.0, 8) < PAPER_GRID.total_s(100.0, 4));
        // n = 0 clamps to 1.
        assert_eq!(PAPER_GRID.total_s(10.0, 0), PAPER_GRID.total_s(10.0, 1));
    }
}

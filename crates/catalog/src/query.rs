//! The catalog query language.
//!
//! A small boolean expression language evaluated over an entry's metadata,
//! fulfilling the paper's "search … based on a query pattern" (§2.1):
//!
//! ```text
//! detector == "SiD" and energy >= 500
//! (kind = event or kind = dna) && size_mb < 100
//! name ~ "higgs*" and not archived
//! ```
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! query  := or
//! or     := and  ( ("or"  | "||") and )*
//! and    := unary( ("and" | "&&") unary )*
//! unary  := ("not" | "!") unary | "(" or ")" | compare | key
//! compare:= key op value
//! op     := == | = | != | <= | >= | < | > | ~ | !~
//! value  := number | "string" | true | false | bareword
//! ```
//!
//! Semantics:
//! * a bare `key` is true iff the key exists and is truthy (`true`,
//!   non-zero number, non-empty string),
//! * comparisons on a missing key are **false** (so `not archived` matches
//!   entries without the key),
//! * `==`/`!=` compare numerically when both sides are numeric, otherwise
//!   textually; `<` `<=` `>` `>=` require numeric values,
//! * `~` / `!~` are glob matches on the text value (`*` = any run,
//!   `?` = one character), case-insensitive.

use serde::{Deserialize, Serialize};

use crate::error::CatalogError;
use crate::meta::MetaValue;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==` / `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~` glob match
    Glob,
    /// `!~` negated glob match
    NotGlob,
}

/// A literal on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal.
    Num(f64),
    /// String literal (quoted or bareword).
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

/// Parsed query AST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Conjunction.
    And(Box<Query>, Box<Query>),
    /// Disjunction.
    Or(Box<Query>, Box<Query>),
    /// Negation.
    Not(Box<Query>),
    /// `key op literal`.
    Compare {
        /// Metadata key (builtins included).
        key: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// Bare key existence/truthiness test.
    Truthy(String),
}

/// Key lookup interface queries are evaluated against.
pub trait QueryContext {
    /// Resolve a key to a value; `None` when the key is absent.
    fn lookup(&self, key: &str) -> Option<MetaValue>;
}

impl QueryContext for crate::meta::Metadata {
    fn lookup(&self, key: &str) -> Option<MetaValue> {
        self.get(key).cloned()
    }
}

/// Case-insensitive glob match: `*` matches any run, `?` one character.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    // Classic two-pointer with backtracking over the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            star_ti = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

fn truthy(v: &MetaValue) -> bool {
    match v {
        MetaValue::Bool(b) => *b,
        MetaValue::Num(n) => *n != 0.0,
        MetaValue::Str(s) => !s.is_empty(),
    }
}

impl Query {
    /// Evaluate against a context.
    pub fn eval(&self, ctx: &dyn QueryContext) -> bool {
        match self {
            Query::And(a, b) => a.eval(ctx) && b.eval(ctx),
            Query::Or(a, b) => a.eval(ctx) || b.eval(ctx),
            Query::Not(q) => !q.eval(ctx),
            Query::Truthy(key) => ctx.lookup(key).map(|v| truthy(&v)).unwrap_or(false),
            Query::Compare { key, op, value } => {
                let Some(actual) = ctx.lookup(key) else {
                    return false;
                };
                compare(&actual, *op, value)
            }
        }
    }
}

fn compare(actual: &MetaValue, op: CmpOp, lit: &Literal) -> bool {
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let eq = match (actual.as_num(), lit_num(lit)) {
                (Some(a), Some(b)) => a == b,
                _ => actual.as_text().eq_ignore_ascii_case(&lit_text(lit)),
            };
            (op == CmpOp::Eq) == eq
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let (Some(a), Some(b)) = (actual.as_num(), lit_num(lit)) else {
                return false;
            };
            match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            }
        }
        CmpOp::Glob => glob_match(&lit_text(lit), &actual.as_text()),
        CmpOp::NotGlob => !glob_match(&lit_text(lit), &actual.as_text()),
    }
}

fn lit_num(l: &Literal) -> Option<f64> {
    match l {
        Literal::Num(n) => Some(*n),
        Literal::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        Literal::Str(s) => s.parse().ok(),
    }
}

fn lit_text(l: &Literal) -> String {
    match l {
        Literal::Num(n) => format!("{n}"),
        Literal::Bool(b) => format!("{b}"),
        Literal::Str(s) => s.clone(),
    }
}

// ---------------------------------------------------------------- lexer ---

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Op(CmpOp),
    And,
    Or,
    Not,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, CatalogError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '~' => {
                out.push((i, Tok::Op(CmpOp::Glob)));
                i += 1;
            }
            '=' => {
                let len = if b.get(i + 1) == Some(&b'=') { 2 } else { 1 };
                out.push((i, Tok::Op(CmpOp::Eq)));
                i += len;
            }
            '!' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push((i, Tok::Op(CmpOp::Ne)));
                    i += 2;
                }
                Some(b'~') => {
                    out.push((i, Tok::Op(CmpOp::NotGlob)));
                    i += 2;
                }
                _ => {
                    out.push((i, Tok::Not));
                    i += 1;
                }
            },
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Op(CmpOp::Le)));
                    i += 2;
                } else {
                    out.push((i, Tok::Op(CmpOp::Lt)));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Op(CmpOp::Ge)));
                    i += 2;
                } else {
                    out.push((i, Tok::Op(CmpOp::Gt)));
                    i += 1;
                }
            }
            '&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((i, Tok::And));
                    i += 2;
                } else {
                    return Err(CatalogError::QuerySyntax {
                        at: i,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((i, Tok::Or));
                    i += 2;
                } else {
                    return Err(CatalogError::QuerySyntax {
                        at: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '"' | '\'' => {
                let quote = b[i];
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(CatalogError::QuerySyntax {
                            at: start,
                            message: "unterminated string".into(),
                        });
                    }
                    if b[i] == quote {
                        i += 1;
                        break;
                    }
                    s.push(b[i] as char);
                    i += 1;
                }
                out.push((start, Tok::Str(s)));
            }
            c if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < b.len()
                    && ((b[i] as char).is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || (b[i] == b'-' && matches!(b[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| CatalogError::QuerySyntax {
                    at: start,
                    message: format!("bad number '{text}'"),
                })?;
                out.push((start, Tok::Num(n)));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '/' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric()
                        || matches!(b[i], b'_' | b'.' | b'-' | b'/' | b'*' | b'?'))
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word.to_ascii_lowercase().as_str() {
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push((start, tok));
            }
            other => {
                return Err(CatalogError::QuerySyntax {
                    at: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser ---

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map(|(a, _)| *a).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> CatalogError {
        CatalogError::QuerySyntax {
            at: self.at(),
            message: message.into(),
        }
    }

    fn parse_or(&mut self) -> Result<Query, CatalogError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Query::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Query, CatalogError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), Some(Tok::And)) {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Query::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Query, CatalogError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Query::Not(Box::new(self.parse_unary()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let q = self.parse_or()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(q),
                    _ => Err(self.err("expected ')'")),
                }
            }
            Some(Tok::Ident(_)) => self.parse_compare(),
            _ => Err(self.err("expected a key, 'not', or '('")),
        }
    }

    fn parse_compare(&mut self) -> Result<Query, CatalogError> {
        let Some(Tok::Ident(key)) = self.bump() else {
            return Err(self.err("expected key"));
        };
        let op = match self.peek() {
            Some(Tok::Op(op)) => {
                let op = *op;
                self.bump();
                op
            }
            // Bare key → truthiness test.
            _ => return Ok(Query::Truthy(key)),
        };
        let value = match self.bump() {
            Some(Tok::Num(n)) => Literal::Num(n),
            Some(Tok::Str(s)) => Literal::Str(s),
            Some(Tok::Ident(w)) => match w.to_ascii_lowercase().as_str() {
                "true" => Literal::Bool(true),
                "false" => Literal::Bool(false),
                _ => Literal::Str(w),
            },
            _ => return Err(self.err("expected a literal after operator")),
        };
        Ok(Query::Compare { key, op, value })
    }
}

/// Parse query text into a [`Query`].
pub fn parse_query(src: &str) -> Result<Query, CatalogError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(CatalogError::QuerySyntax {
            at: 0,
            message: "empty query".into(),
        });
    }
    let mut p = Parser {
        toks,
        pos: 0,
        len: src.len(),
    };
    let q = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{metadata, Metadata};

    fn ctx() -> Metadata {
        metadata([
            ("detector", "SiD".into()),
            ("energy", 500i64.into()),
            ("kind", "event".into()),
            ("name", "higgs-search-2006".into()),
            ("archived", false.into()),
            ("size_mb", 471.0.into()),
        ])
    }

    fn eval(q: &str) -> bool {
        parse_query(q).unwrap().eval(&ctx())
    }

    #[test]
    fn simple_comparisons() {
        assert!(eval("energy == 500"));
        assert!(eval("energy = 500"));
        assert!(!eval("energy != 500"));
        assert!(eval("energy >= 500"));
        assert!(!eval("energy > 500"));
        assert!(eval("size_mb < 1000"));
        assert!(eval("detector == \"SiD\""));
        assert!(eval("detector == sid")); // case-insensitive text equality
    }

    #[test]
    fn boolean_connectives_and_precedence() {
        assert!(eval("energy > 100 and detector == SiD"));
        assert!(eval("energy > 900 or detector == SiD"));
        assert!(!eval("energy > 900 and detector == SiD"));
        // 'and' binds tighter than 'or'.
        assert!(eval("energy > 900 and kind == dna or detector == SiD"));
        assert!(eval("(energy > 900 or kind == event) and detector == SiD"));
        assert!(eval("energy > 100 && detector == SiD || kind == dna"));
    }

    #[test]
    fn not_and_truthiness() {
        assert!(eval("not archived"));
        assert!(!eval("archived"));
        assert!(eval("!archived"));
        assert!(eval("detector")); // non-empty string is truthy
        assert!(!eval("missing_key"));
        assert!(eval("not missing_key"));
    }

    #[test]
    fn missing_keys_make_comparisons_false() {
        assert!(!eval("missing == 5"));
        assert!(!eval("missing != 5")); // != on missing is also false
        assert!(!eval("missing < 5"));
        assert!(eval("not (missing == 5)"));
    }

    #[test]
    fn glob_matching() {
        assert!(eval("name ~ \"higgs*\""));
        assert!(eval("name ~ higgs*"));
        assert!(eval("name ~ \"*2006\""));
        assert!(eval("name ~ \"*search*\""));
        assert!(!eval("name ~ \"zz*\""));
        assert!(eval("name !~ \"zz*\""));
        assert!(eval("name ~ \"HIGGS*\"")); // case-insensitive
        assert!(eval("detector ~ \"S?D\""));
    }

    #[test]
    fn glob_primitive() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b", "ab"));
        assert!(glob_match("a*b", "axxxb"));
        assert!(!glob_match("a*b", "axxxc"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(glob_match("*.part?", "lc-001.part3"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn string_vs_numeric_equality() {
        let m = metadata([("v", MetaValue::Str("10".into()))]);
        assert!(parse_query("v == 10").unwrap().eval(&m)); // numeric coercion
        assert!(parse_query("v == \"10\"").unwrap().eval(&m));
        let m2 = metadata([("v", MetaValue::Str("abc".into()))]);
        assert!(!parse_query("v < 5").unwrap().eval(&m2)); // non-numeric ordering
    }

    #[test]
    fn syntax_errors_carry_position() {
        for (q, _frag) in [
            ("energy >", "literal"),
            ("== 5", "key"),
            ("(energy > 5", "')'"),
            ("energy > 5 )", "trailing"),
            ("energy # 5", "unexpected"),
            ("\"unterminated", "unterminated"),
            ("a & b", "&&"),
            ("", "empty"),
        ] {
            let err = parse_query(q).unwrap_err();
            assert!(
                matches!(err, CatalogError::QuerySyntax { .. }),
                "query {q:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn bool_literals() {
        let m = metadata([("flag", true.into())]);
        assert!(parse_query("flag == true").unwrap().eval(&m));
        assert!(!parse_query("flag == false").unwrap().eval(&m));
    }

    #[test]
    fn ast_serializes() {
        let q = parse_query("a > 1 and b ~ \"x*\"").unwrap();
        let s = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&s).unwrap();
        assert_eq!(q, back);
    }
}

//! Catalog error type.

use std::fmt;

/// Errors from catalog operations and query parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// Path is syntactically invalid.
    BadPath(String),
    /// No folder at the path.
    NoSuchFolder(String),
    /// No entry with the given dataset id.
    NoSuchDataset(String),
    /// An entry or folder already exists where one was being created.
    AlreadyExists(String),
    /// Query text failed to parse: position and message.
    QuerySyntax {
        /// Byte offset of the error in the query text.
        at: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::BadPath(p) => write!(f, "bad catalog path '{p}'"),
            CatalogError::NoSuchFolder(p) => write!(f, "no catalog folder '{p}'"),
            CatalogError::NoSuchDataset(id) => write!(f, "no dataset '{id}' in catalog"),
            CatalogError::AlreadyExists(p) => write!(f, "'{p}' already exists in catalog"),
            CatalogError::QuerySyntax { at, message } => {
                write!(f, "query syntax error at byte {at}: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

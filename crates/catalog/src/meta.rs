//! Free-form key/value metadata attached to catalog entries.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A metadata value: string, number, or boolean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetaValue {
    /// Text value.
    Str(String),
    /// Numeric value.
    Num(f64),
    /// Boolean value.
    Bool(bool),
}

impl MetaValue {
    /// Numeric view (bools widen, strings parse if they look numeric).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            MetaValue::Num(n) => Some(*n),
            MetaValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            MetaValue::Str(s) => s.parse().ok(),
        }
    }

    /// String view (numbers/bools format themselves).
    pub fn as_text(&self) -> String {
        match self {
            MetaValue::Str(s) => s.clone(),
            MetaValue::Num(n) => format!("{n}"),
            MetaValue::Bool(b) => format!("{b}"),
        }
    }
}

impl fmt::Display for MetaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl From<&str> for MetaValue {
    fn from(s: &str) -> Self {
        MetaValue::Str(s.to_string())
    }
}

impl From<String> for MetaValue {
    fn from(s: String) -> Self {
        MetaValue::Str(s)
    }
}

impl From<f64> for MetaValue {
    fn from(n: f64) -> Self {
        MetaValue::Num(n)
    }
}

impl From<i64> for MetaValue {
    fn from(n: i64) -> Self {
        MetaValue::Num(n as f64)
    }
}

impl From<bool> for MetaValue {
    fn from(b: bool) -> Self {
        MetaValue::Bool(b)
    }
}

/// Sorted key → value map.
pub type Metadata = BTreeMap<String, MetaValue>;

/// Convenience constructor: `metadata([("detector", "SiD".into()), …])`.
pub fn metadata<I>(pairs: I) -> Metadata
where
    I: IntoIterator<Item = (&'static str, MetaValue)>,
{
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(MetaValue::Num(3.5).as_num(), Some(3.5));
        assert_eq!(MetaValue::Bool(true).as_num(), Some(1.0));
        assert_eq!(MetaValue::Str("2.5".into()).as_num(), Some(2.5));
        assert_eq!(MetaValue::Str("abc".into()).as_num(), None);
    }

    #[test]
    fn text_views_and_from_impls() {
        assert_eq!(MetaValue::from("x").as_text(), "x");
        assert_eq!(MetaValue::from(2i64).as_text(), "2");
        assert_eq!(MetaValue::from(false).as_text(), "false");
        assert_eq!(format!("{}", MetaValue::Num(1.5)), "1.5");
    }

    #[test]
    fn metadata_constructor() {
        let m = metadata([("a", 1i64.into()), ("b", "x".into())]);
        assert_eq!(m.len(), 2);
        assert_eq!(m["a"], MetaValue::Num(1.0));
    }
}

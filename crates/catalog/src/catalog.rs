//! The hierarchical catalog itself.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use ipa_dataset::{DatasetDescriptor, DatasetId};

use crate::error::CatalogError;
use crate::meta::{MetaValue, Metadata};
use crate::query::{Query, QueryContext};

/// A dataset entry: descriptor + user metadata + its folder path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Folder the entry lives in (e.g. `/lc/simulation`).
    pub folder: String,
    /// Dataset descriptor (id, kind, size).
    pub descriptor: DatasetDescriptor,
    /// Free-form key/value metadata.
    pub metadata: Metadata,
}

impl CatalogEntry {
    /// Full catalog path of the entry (`<folder>/<id>`).
    pub fn path(&self) -> String {
        if self.folder == "/" {
            format!("/{}", self.descriptor.id)
        } else {
            format!("{}/{}", self.folder, self.descriptor.id)
        }
    }
}

/// Builtin keys are resolved from the descriptor, then user metadata.
impl QueryContext for CatalogEntry {
    fn lookup(&self, key: &str) -> Option<MetaValue> {
        match key {
            "id" => Some(MetaValue::Str(self.descriptor.id.0.clone())),
            "name" => Some(MetaValue::Str(self.descriptor.name.clone())),
            "path" => Some(MetaValue::Str(self.path())),
            "folder" => Some(MetaValue::Str(self.folder.clone())),
            "kind" => Some(MetaValue::Str(
                match self.descriptor.kind {
                    ipa_dataset::DatasetKind::Event => "event",
                    ipa_dataset::DatasetKind::Dna => "dna",
                    ipa_dataset::DatasetKind::Trade => "trade",
                }
                .to_string(),
            )),
            "records" => Some(MetaValue::Num(self.descriptor.records as f64)),
            "size_mb" => Some(MetaValue::Num(self.descriptor.size_mb())),
            "size_bytes" => Some(MetaValue::Num(self.descriptor.size_bytes as f64)),
            _ => self.metadata.get(key).cloned(),
        }
    }
}

/// One item returned by [`Catalog::list`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ListItem {
    /// A sub-folder (name only).
    Folder(String),
    /// A dataset entry.
    Dataset(CatalogEntry),
}

/// The catalog: a set of folders, each holding dataset entries.
///
/// Folders are materialized explicitly (so empty folders can be browsed,
/// matching the screenshot in the paper's Figure 3), entries are keyed by
/// dataset id which must be globally unique.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// Normalized folder paths (always contains "/").
    folders: std::collections::BTreeSet<String>,
    /// Dataset id → entry.
    entries: BTreeMap<DatasetId, CatalogEntry>,
}

fn normalize_folder(path: &str) -> Result<String, CatalogError> {
    if path == "/" {
        return Ok("/".to_string());
    }
    if !path.starts_with('/') || path.ends_with('/') {
        return Err(CatalogError::BadPath(path.to_string()));
    }
    if path[1..].split('/').any(|s| s.is_empty()) {
        return Err(CatalogError::BadPath(path.to_string()));
    }
    Ok(path.to_string())
}

impl Catalog {
    /// New catalog with only the root folder.
    pub fn new() -> Self {
        let mut c = Catalog::default();
        c.folders.insert("/".to_string());
        c
    }

    /// Number of dataset entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Create a folder (and all missing ancestors). Idempotent.
    pub fn mkdirs(&mut self, path: &str) -> Result<(), CatalogError> {
        let p = normalize_folder(path)?;
        if p == "/" {
            return Ok(());
        }
        let segs: Vec<&str> = p[1..].split('/').collect();
        let mut cur = String::new();
        for s in segs {
            cur.push('/');
            cur.push_str(s);
            self.folders.insert(cur.clone());
        }
        self.folders.insert("/".to_string());
        Ok(())
    }

    /// Register a dataset under a folder (created if missing).
    pub fn add(
        &mut self,
        folder: &str,
        descriptor: DatasetDescriptor,
        metadata: Metadata,
    ) -> Result<(), CatalogError> {
        let f = normalize_folder(folder)?;
        if self.entries.contains_key(&descriptor.id) {
            return Err(CatalogError::AlreadyExists(descriptor.id.0.clone()));
        }
        self.mkdirs(&f)?;
        self.entries.insert(
            descriptor.id.clone(),
            CatalogEntry {
                folder: f,
                descriptor,
                metadata,
            },
        );
        Ok(())
    }

    /// Remove a dataset entry.
    pub fn remove(&mut self, id: &DatasetId) -> Result<CatalogEntry, CatalogError> {
        self.entries
            .remove(id)
            .ok_or_else(|| CatalogError::NoSuchDataset(id.0.clone()))
    }

    /// Look up an entry by dataset id.
    pub fn entry(&self, id: &DatasetId) -> Result<&CatalogEntry, CatalogError> {
        self.entries
            .get(id)
            .ok_or_else(|| CatalogError::NoSuchDataset(id.0.clone()))
    }

    /// Browse one folder: its sub-folders then its datasets, sorted.
    pub fn list(&self, folder: &str) -> Result<Vec<ListItem>, CatalogError> {
        let f = normalize_folder(folder)?;
        if !self.folders.contains(&f) {
            return Err(CatalogError::NoSuchFolder(f));
        }
        let prefix = if f == "/" {
            "/".to_string()
        } else {
            format!("{f}/")
        };
        let mut out = Vec::new();
        let mut seen_dirs = std::collections::BTreeSet::new();
        for folder_path in &self.folders {
            if let Some(rest) = folder_path.strip_prefix(&prefix) {
                if rest.is_empty() {
                    continue;
                }
                let first = rest.split('/').next().expect("non-empty rest");
                seen_dirs.insert(first.to_string());
            }
        }
        out.extend(seen_dirs.into_iter().map(ListItem::Folder));
        for e in self.entries.values() {
            if e.folder == f {
                out.push(ListItem::Dataset(e.clone()));
            }
        }
        Ok(out)
    }

    /// All folder paths, sorted.
    pub fn folders(&self) -> impl Iterator<Item = &str> {
        self.folders.iter().map(String::as_str)
    }

    /// All entries, sorted by id.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }

    /// Evaluate a parsed query over every entry.
    pub fn search(&self, query: &Query) -> Vec<&CatalogEntry> {
        self.entries.values().filter(|e| query.eval(*e)).collect()
    }

    /// Parse and evaluate query text.
    pub fn search_text(&self, query: &str) -> Result<Vec<&CatalogEntry>, CatalogError> {
        let q = crate::query::parse_query(query)?;
        Ok(self.search(&q))
    }

    /// Serialize the whole catalog to pretty JSON (site operators keep the
    /// catalog in version control; the format is stable via serde).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("catalog serializes")
    }

    /// Load a catalog from JSON produced by [`Catalog::to_json`].
    pub fn from_json(json: &str) -> Result<Self, CatalogError> {
        serde_json::from_str(json).map_err(|e| CatalogError::BadPath(format!("json: {e}")))
    }

    /// Write the catalog to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a catalog from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Result<Self, CatalogError>> {
        Ok(Self::from_json(&std::fs::read_to_string(path)?))
    }

    /// Render the folder tree with entry counts (the client's Figure-3
    /// style chooser view).
    pub fn render_tree(&self) -> String {
        let mut out = String::from("/\n");
        for f in &self.folders {
            if f == "/" {
                continue;
            }
            let depth = f.matches('/').count();
            let name = f.rsplit('/').next().expect("non-empty folder path");
            out.push_str(&"  ".repeat(depth));
            out.push_str(name);
            out.push('\n');
            for e in self.entries.values().filter(|e| &e.folder == f) {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!(
                    "{} [{} records, {:.1} MB]\n",
                    e.descriptor.id,
                    e.descriptor.records,
                    e.descriptor.size_mb()
                ));
            }
        }
        for e in self.entries.values().filter(|e| e.folder == "/") {
            out.push_str(&format!("  {}\n", e.descriptor.id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::metadata;
    use ipa_dataset::DatasetKind;

    fn desc(id: &str, records: u64, mb: f64) -> DatasetDescriptor {
        DatasetDescriptor {
            id: DatasetId::new(id),
            name: format!("Dataset {id}"),
            kind: DatasetKind::Event,
            records,
            size_bytes: (mb * 1e6) as u64,
        }
    }

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            "/lc/simulation",
            desc("lc-higgs-2006", 100_000, 471.0),
            metadata([("detector", "SiD".into()), ("energy", 500i64.into())]),
        )
        .unwrap();
        c.add(
            "/lc/simulation",
            desc("lc-zpole", 50_000, 120.0),
            metadata([("detector", "SiD".into()), ("energy", 91i64.into())]),
        )
        .unwrap();
        c.add(
            "/bio",
            desc("dna-sample", 2_000, 3.0),
            metadata([("organism", "human".into())]),
        )
        .unwrap();
        c
    }

    #[test]
    fn add_and_lookup() {
        let c = sample();
        assert_eq!(c.len(), 3);
        let e = c.entry(&DatasetId::new("lc-higgs-2006")).unwrap();
        assert_eq!(e.folder, "/lc/simulation");
        assert_eq!(e.path(), "/lc/simulation/lc-higgs-2006");
        assert!(matches!(
            c.entry(&DatasetId::new("nope")),
            Err(CatalogError::NoSuchDataset(_))
        ));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut c = sample();
        assert!(matches!(
            c.add("/other", desc("lc-zpole", 1, 1.0), Metadata::new()),
            Err(CatalogError::AlreadyExists(_))
        ));
    }

    #[test]
    fn mkdirs_creates_ancestors_and_list_browses() {
        let c = sample();
        let root = c.list("/").unwrap();
        assert!(matches!(&root[0], ListItem::Folder(f) if f == "bio"));
        assert!(matches!(&root[1], ListItem::Folder(f) if f == "lc"));

        let lc = c.list("/lc").unwrap();
        assert_eq!(lc.len(), 1);
        assert!(matches!(&lc[0], ListItem::Folder(f) if f == "simulation"));

        let sim = c.list("/lc/simulation").unwrap();
        let ids: Vec<&str> = sim
            .iter()
            .filter_map(|i| match i {
                ListItem::Dataset(e) => Some(e.descriptor.id.0.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec!["lc-higgs-2006", "lc-zpole"]);
    }

    #[test]
    fn list_unknown_folder_errors() {
        let c = sample();
        assert!(matches!(
            c.list("/nowhere"),
            Err(CatalogError::NoSuchFolder(_))
        ));
        assert!(matches!(c.list("bad"), Err(CatalogError::BadPath(_))));
    }

    #[test]
    fn search_over_metadata_and_builtins() {
        let c = sample();
        let r = c.search_text("energy >= 500").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].descriptor.id.0, "lc-higgs-2006");

        let r = c.search_text("detector == SiD").unwrap();
        assert_eq!(r.len(), 2);

        let r = c.search_text("size_mb > 100 and id ~ \"lc-*\"").unwrap();
        assert_eq!(r.len(), 2);

        let r = c.search_text("path ~ \"/bio/*\"").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].descriptor.id.0, "dna-sample");

        let r = c.search_text("kind == dna").unwrap();
        assert!(r.is_empty()); // all sample descriptors are Event kind
    }

    #[test]
    fn remove_entry() {
        let mut c = sample();
        c.remove(&DatasetId::new("dna-sample")).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.remove(&DatasetId::new("dna-sample")).is_err());
    }

    #[test]
    fn render_tree_shows_structure() {
        let c = sample();
        let t = c.render_tree();
        assert!(t.contains("lc"));
        assert!(t.contains("simulation"));
        assert!(t.contains("lc-higgs-2006 [100000 records, 471.0 MB]"));
    }

    #[test]
    fn serde_round_trip() {
        let c = sample();
        let s = serde_json::to_string(&c).unwrap();
        let back: Catalog = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_and_file_persistence() {
        let c = sample();
        let back = Catalog::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
        assert!(Catalog::from_json("{ not json").is_err());

        let dir = std::env::temp_dir().join("ipa_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        c.save(&path).unwrap();
        let loaded = Catalog::load(&path).unwrap().unwrap();
        assert_eq!(c, loaded);
        assert_eq!(loaded.search_text("energy >= 500").unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_folder_is_browsable() {
        let mut c = Catalog::new();
        c.mkdirs("/a/b/c").unwrap();
        assert_eq!(c.list("/a/b/c").unwrap().len(), 0);
        assert_eq!(c.list("/a").unwrap().len(), 1);
    }
}

//! `ipa-catalog` — the Dataset Catalog Service's data model.
//!
//! The paper (§2.1, §3.3) calls for "an abstract metadata catalog of
//! datasets … organized in a hierarchical fashion where the user can browse
//! the catalog and choose the dataset of interest", with the "added
//! advantage" of search "based on a query pattern". The catalog "makes no
//! assumptions about the type of metadata … except that the metadata
//! consists of key-value pairs stored in a hierarchical tree."
//!
//! This crate implements exactly that:
//!
//! * [`Catalog`] — a folder tree whose leaves are dataset entries, each a
//!   [`DatasetDescriptor`](ipa_dataset::DatasetDescriptor) plus free-form
//!   key/value [`Metadata`],
//! * browse ([`Catalog::list`]) and lookup ([`Catalog::entry`]) APIs,
//! * a query language ([`query`]) with comparisons, boolean connectives and
//!   glob matching, evaluated over the metadata (plus builtin keys `id`,
//!   `name`, `path`, `kind`, `records`, `size_mb`).
//!
//! The network-facing Dataset Catalog *Service* lives in `ipa-core`; this
//! crate is the engine behind it.

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod meta;
pub mod query;

pub use catalog::{Catalog, CatalogEntry, ListItem};
pub use error::CatalogError;
pub use meta::{MetaValue, Metadata};
pub use query::{parse_query, Query};

//! Runtime values.

use std::fmt;
use std::sync::Arc;

use ipa_dataset::{AnyRecord, FieldValue};

/// A cheap, shared handle to one dataset record: either a record with its
/// own allocation, or an index into a shared batch. Cloning the handle
/// clones an `Arc`, never the record data — this is what lets the engine
/// hand its `Arc<Vec<AnyRecord>>` partitions straight to scripts without a
/// per-record deep copy.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordRef {
    /// A record with its own allocation.
    One(Arc<AnyRecord>),
    /// One element of a shared record batch.
    Batch {
        /// The shared batch.
        batch: Arc<Vec<AnyRecord>>,
        /// Index into the batch (checked at construction).
        index: usize,
    },
}

impl RecordRef {
    /// Wrap a single shared record.
    pub fn one(record: Arc<AnyRecord>) -> RecordRef {
        RecordRef::One(record)
    }

    /// Point at `batch[index]` without copying.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn batch(batch: Arc<Vec<AnyRecord>>, index: usize) -> RecordRef {
        assert!(index < batch.len(), "record index out of batch bounds");
        RecordRef::Batch { batch, index }
    }

    /// Borrow the underlying record.
    pub fn get(&self) -> &AnyRecord {
        match self {
            RecordRef::One(r) => r,
            RecordRef::Batch { batch, index } => &batch[*index],
        }
    }
}

impl std::ops::Deref for RecordRef {
    type Target = AnyRecord;

    fn deref(&self) -> &AnyRecord {
        self.get()
    }
}

/// An IPAScript runtime value.
///
/// The derived `PartialEq` is structural (used by tests); the language's
/// `==` operator goes through [`Value::equals`], which compares records by
/// identity instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (also what missing record fields read as).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit float (the only numeric type).
    Num(f64),
    /// String.
    Str(String),
    /// Array with value semantics.
    Array(Vec<Value>),
    /// A dataset record (shared, immutable).
    Record(RecordRef),
}

impl Value {
    /// Truthiness: null/false/0/""/[] are false, records are true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Array(a) => !a.is_empty(),
            Value::Record(_) => true,
        }
    }

    /// Numeric view (bools widen; strings do NOT coerce implicitly).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "num",
            Value::Str(_) => "str",
            Value::Array(_) => "array",
            Value::Record(_) => "record",
        }
    }

    /// Convert a dataset field value.
    pub fn from_field(f: FieldValue) -> Value {
        match f {
            FieldValue::Num(x) => Value::Num(x),
            FieldValue::Int(i) => Value::Num(i as f64),
            FieldValue::Bool(b) => Value::Bool(b),
            FieldValue::Str(s) => Value::Str(s.to_string()),
            FieldValue::Missing => Value::Null,
        }
    }

    /// Structural equality (`==` in the language). Records compare by
    /// identity; null equals only null.
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equals(y))
            }
            (Value::Record(a), Value::Record(b)) => std::ptr::eq(a.get(), b.get()),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(r) => write!(f, "<{} record #{}>", r.kind(), r.id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(Value::Num(0.5).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Array(vec![]).truthy());
        assert!(Value::Array(vec![Value::Null]).truthy());
    }

    #[test]
    fn equality() {
        assert!(Value::Null.equals(&Value::Null));
        assert!(!Value::Null.equals(&Value::Num(0.0)));
        assert!(Value::Num(2.0).equals(&Value::Num(2.0)));
        assert!(Value::Array(vec![Value::Num(1.0)]).equals(&Value::Array(vec![Value::Num(1.0)])));
        assert!(!Value::Array(vec![Value::Num(1.0)]).equals(&Value::Array(vec![])));
        assert!(!Value::Str("1".into()).equals(&Value::Num(1.0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Value::Num(1.5)), "1.5");
        assert_eq!(
            format!(
                "{}",
                Value::Array(vec![Value::Num(1.0), Value::Str("a".into())])
            ),
            "[1, a]"
        );
    }

    #[test]
    fn from_field() {
        assert!(matches!(
            Value::from_field(FieldValue::Missing),
            Value::Null
        ));
        assert!(matches!(
            Value::from_field(FieldValue::Int(3)),
            Value::Num(n) if n == 3.0
        ));
    }
}

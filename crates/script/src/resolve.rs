//! Name resolution and bytecode emission: lowers a parsed [`Program`]
//! into a [`CompiledScript`] for [`crate::vm::Vm`].
//!
//! Resolution happens in four passes:
//! 1. collect top-level binders (`let`/assignment/loop variables) — they
//!    become the global slot table;
//! 2. assign every user function a proto index (sorted by name so output
//!    is deterministic);
//! 3. compile function bodies — parameters and body binders get flat
//!    local slots, call sites bind to proto indices or [`Builtin`]s;
//! 4. compile the top level as a synthetic body whose named slots mirror
//!    the global table (promoted into it after a successful run).
//!
//! Names that have no binder anywhere still compile — to `LoadUndef` /
//! `CallUnknown` error ops — because IPAScript reports unknown names
//! lazily, only when the offending expression actually executes.

use std::collections::HashMap;

use crate::ast::{AssignTarget, BinOp, Expr, ExprKind, Function, Program, Stmt, UnOp};
use crate::bytecode::{CompiledScript, FnProto, Op};
use crate::error::ScriptError;
use crate::stdlib::Builtin;
use crate::value::Value;

/// Lower a parsed program into VM bytecode.
pub fn compile_program(program: &Program) -> Result<CompiledScript, ScriptError> {
    let mut shared = Shared::default();

    // Pass 1: top-level binders become the global slot table.
    let mut binders = Vec::new();
    collect_binders(&program.top_level, &mut binders);
    for name in binders {
        if !shared.global_map.contains_key(&name) {
            let slot =
                u16::try_from(shared.globals.len()).map_err(|_| limits("global variables"))?;
            shared.global_map.insert(name.clone(), slot);
            shared.globals.push(name);
        }
    }

    // Pass 2: proto indices, sorted by name for deterministic output.
    let mut fn_names: Vec<&String> = program.functions.keys().collect();
    fn_names.sort();
    for (i, name) in fn_names.iter().enumerate() {
        let idx = u16::try_from(i).map_err(|_| limits("functions"))?;
        shared.fn_index.insert((*name).clone(), idx);
    }

    // Pass 3: function bodies.
    let mut protos = vec![FnProto::default(); fn_names.len()];
    for name in &fn_names {
        let f = &program.functions[name.as_str()];
        let idx = shared.fn_index[name.as_str()] as usize;
        protos[idx] = compile_fn(&mut shared, f)?;
    }

    // Pass 4: the synthetic top-level body.
    let (top_level, promote) = compile_top_level(&mut shared, &program.top_level)?;

    Ok(CompiledScript {
        consts: shared.consts,
        names: shared.names,
        protos,
        fn_index: shared.fn_index,
        top_level,
        globals: shared.globals,
        promote,
    })
}

fn limits(what: &str) -> ScriptError {
    ScriptError::runtime(
        format!("script exceeds bytecode limits (too many {what})"),
        0,
    )
}

/// Tables shared across all function bodies.
#[derive(Default)]
struct Shared {
    consts: Vec<Value>,
    num_consts: HashMap<u64, u16>,
    str_consts: HashMap<String, u16>,
    names: Vec<String>,
    name_map: HashMap<String, u16>,
    globals: Vec<String>,
    global_map: HashMap<String, u16>,
    fn_index: HashMap<String, u16>,
}

impl Shared {
    fn const_num(&mut self, n: f64) -> Result<u16, ScriptError> {
        if let Some(&i) = self.num_consts.get(&n.to_bits()) {
            return Ok(i);
        }
        let i = u16::try_from(self.consts.len()).map_err(|_| limits("constants"))?;
        self.num_consts.insert(n.to_bits(), i);
        self.consts.push(Value::Num(n));
        Ok(i)
    }

    fn const_str(&mut self, s: &str) -> Result<u16, ScriptError> {
        if let Some(&i) = self.str_consts.get(s) {
            return Ok(i);
        }
        let i = u16::try_from(self.consts.len()).map_err(|_| limits("constants"))?;
        self.str_consts.insert(s.to_string(), i);
        self.consts.push(Value::Str(s.to_string()));
        Ok(i)
    }

    fn intern(&mut self, name: &str) -> Result<u16, ScriptError> {
        if let Some(&i) = self.name_map.get(name) {
            return Ok(i);
        }
        let i = u16::try_from(self.names.len()).map_err(|_| limits("identifiers"))?;
        self.name_map.insert(name.to_string(), i);
        self.names.push(name.to_string());
        Ok(i)
    }
}

/// Collect every name a statement list can bind (function-level scoping:
/// `let`, plain assignment, and `for` loop variables, at any nesting).
fn collect_binders(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Let { name, .. } => out.push(name.clone()),
            Stmt::Assign {
                target: AssignTarget::Var(name),
                ..
            } => out.push(name.clone()),
            Stmt::Assign { .. }
            | Stmt::Expr(_)
            | Stmt::Return(_)
            | Stmt::Break
            | Stmt::Continue => {}
            Stmt::If {
                then, otherwise, ..
            } => {
                collect_binders(then, out);
                collect_binders(otherwise, out);
            }
            Stmt::While { body, .. } => collect_binders(body, out),
            Stmt::For { var, body, .. } => {
                out.push(var.clone());
                collect_binders(body, out);
            }
        }
    }
}

struct LoopCtx {
    /// Jump target for `continue` (the condition or `IterNext`).
    continue_to: usize,
    /// `break` jump sites to patch to the loop exit.
    breaks: Vec<usize>,
}

struct FnCompiler<'a> {
    shared: &'a mut Shared,
    slots: HashMap<String, u16>,
    n_slots: u16,
    code: Vec<Op>,
    lines: Vec<u32>,
    loops: Vec<LoopCtx>,
    top_level: bool,
    fn_line: u32,
}

fn compile_fn(shared: &mut Shared, f: &Function) -> Result<FnProto, ScriptError> {
    let mut c = FnCompiler::new(shared, false, f.line);
    let mut params = Vec::with_capacity(f.params.len());
    for p in &f.params {
        params.push(c.binder_slot(p)?);
    }
    let mut binders = Vec::new();
    collect_binders(&f.body, &mut binders);
    for b in &binders {
        c.binder_slot(b)?;
    }
    for s in &f.body {
        c.stmt(s)?;
    }
    c.emit(Op::ReturnNull, f.line);
    Ok(FnProto {
        name: f.name.clone(),
        params,
        n_slots: c.n_slots,
        code: c.code,
        lines: c.lines,
        line: f.line,
    })
}

fn compile_top_level(
    shared: &mut Shared,
    stmts: &[Stmt],
) -> Result<(FnProto, Vec<(u16, u16)>), ScriptError> {
    // The top level's named slots mirror the global table one-to-one.
    let global_names = shared.globals.clone();
    let mut c = FnCompiler::new(shared, true, 0);
    for name in &global_names {
        c.binder_slot(name)?;
    }
    for s in stmts {
        c.stmt(s)?;
    }
    c.emit(Op::Halt, 0);
    let promote = global_names
        .iter()
        .map(|n| (c.slots[n.as_str()], c.shared.global_map[n.as_str()]))
        .collect();
    Ok((
        FnProto {
            name: String::new(),
            params: Vec::new(),
            n_slots: c.n_slots,
            code: c.code,
            lines: c.lines,
            line: 0,
        },
        promote,
    ))
}

impl<'a> FnCompiler<'a> {
    fn new(shared: &'a mut Shared, top_level: bool, fn_line: u32) -> Self {
        FnCompiler {
            shared,
            slots: HashMap::new(),
            n_slots: 0,
            code: Vec::new(),
            lines: Vec::new(),
            loops: Vec::new(),
            top_level,
            fn_line,
        }
    }

    fn emit(&mut self, op: Op, line: u32) {
        self.code.push(op);
        self.lines.push(line);
    }

    /// Emit a jump whose target is patched later; returns its index.
    fn emit_patch(&mut self, op: Op, line: u32) -> usize {
        self.emit(op, line);
        self.code.len() - 1
    }

    /// Point the jump at `at` to the next instruction to be emitted.
    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndCircuit(t) | Op::OrCircuit(t) => *t = target,
            Op::IterNext { done, .. } => *done = target,
            other => unreachable!("cannot patch {other:?}"),
        }
    }

    fn alloc_slot(&mut self) -> Result<u16, ScriptError> {
        let s = self.n_slots;
        self.n_slots = self
            .n_slots
            .checked_add(1)
            .ok_or_else(|| limits("local variables"))?;
        Ok(s)
    }

    fn binder_slot(&mut self, name: &str) -> Result<u16, ScriptError> {
        if let Some(&s) = self.slots.get(name) {
            return Ok(s);
        }
        let s = self.alloc_slot()?;
        self.slots.insert(name.to_string(), s);
        Ok(s)
    }

    fn hidden_slot(&mut self) -> Result<u16, ScriptError> {
        self.alloc_slot()
    }

    fn emit_load(&mut self, name: &str, line: u32) -> Result<(), ScriptError> {
        let local = self.slots.get(name).copied();
        let global = self.shared.global_map.get(name).copied();
        let nm = self.shared.intern(name)?;
        let op = match (local, global) {
            (Some(l), Some(g)) => Op::LoadEither {
                local: l,
                global: g,
                name: nm,
            },
            (Some(l), None) => Op::LoadLocal { slot: l, name: nm },
            (None, Some(g)) => Op::LoadGlobal { slot: g, name: nm },
            (None, None) => Op::LoadUndef { name: nm },
        };
        self.emit(op, line);
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ScriptError> {
        match s {
            Stmt::Let { name, value } => {
                self.expr(value)?;
                let slot = self.slots[name.as_str()];
                self.emit(Op::StoreLocal { slot }, value.line);
            }
            Stmt::Assign { target, value } => match target {
                AssignTarget::Var(name) => {
                    self.expr(value)?;
                    let local = self.slots[name.as_str()];
                    match self.shared.global_map.get(name).copied() {
                        Some(global) => self.emit(Op::StoreEither { local, global }, value.line),
                        None => self.emit(Op::StoreLocal { slot: local }, value.line),
                    }
                }
                AssignTarget::Index { name, index } => {
                    // Value first, then index — same order as the tree-walk.
                    self.expr(value)?;
                    self.expr(index)?;
                    let local = self.slots.get(name.as_str()).copied();
                    let global = self.shared.global_map.get(name).copied();
                    let nm = self.shared.intern(name)?;
                    let op = match (local, global) {
                        (Some(l), Some(g)) => Op::IndexSetEither {
                            local: l,
                            global: g,
                            name: nm,
                        },
                        (Some(l), None) => Op::IndexSetLocal { slot: l, name: nm },
                        (None, Some(g)) => Op::IndexSetGlobal { slot: g, name: nm },
                        (None, None) => Op::IndexSetUndef { name: nm },
                    };
                    self.emit(op, index.line);
                }
            },
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.emit(Op::Pop, e.line);
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond)?;
                let jf = self.emit_patch(Op::JumpIfFalse(0), cond.line);
                for s in then {
                    self.stmt(s)?;
                }
                if otherwise.is_empty() {
                    self.patch(jf);
                } else {
                    let jend = self.emit_patch(Op::Jump(0), cond.line);
                    self.patch(jf);
                    for s in otherwise {
                        self.stmt(s)?;
                    }
                    self.patch(jend);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.code.len();
                self.expr(cond)?;
                let jf = self.emit_patch(Op::JumpIfFalse(0), cond.line);
                self.loops.push(LoopCtx {
                    continue_to: top,
                    breaks: Vec::new(),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.emit(Op::Jump(top as u32), cond.line);
                let ctx = self.loops.pop().expect("loop context");
                self.patch(jf);
                for at in ctx.breaks {
                    self.patch(at);
                }
            }
            Stmt::For { var, iter, body } => {
                // Ranges materialize inline (start, then end, then the
                // array); anything else must already evaluate to an array.
                if let ExprKind::Range { start, end } = &iter.kind {
                    self.expr(start)?;
                    self.emit(Op::RangeStart, iter.line);
                    self.expr(end)?;
                    self.emit(Op::RangeToArray, iter.line);
                } else {
                    self.expr(iter)?;
                }
                let islot = self.hidden_slot()?;
                let xslot = self.hidden_slot()?;
                self.emit(
                    Op::IterInit {
                        iter: islot,
                        idx: xslot,
                    },
                    iter.line,
                );
                let top = self.code.len();
                let next = self.emit_patch(
                    Op::IterNext {
                        iter: islot,
                        idx: xslot,
                        done: 0,
                    },
                    iter.line,
                );
                let vslot = self.slots[var.as_str()];
                self.emit(Op::StoreLocal { slot: vslot }, iter.line);
                self.loops.push(LoopCtx {
                    continue_to: top,
                    breaks: Vec::new(),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.emit(Op::Jump(top as u32), iter.line);
                let ctx = self.loops.pop().expect("loop context");
                self.patch(next);
                for at in ctx.breaks {
                    self.patch(at);
                }
            }
            Stmt::Return(e) => {
                if self.top_level {
                    // Top-level return: evaluate (errors propagate), then
                    // halt the body — globals still promote afterwards.
                    if let Some(e) = e {
                        self.expr(e)?;
                        self.emit(Op::Pop, e.line);
                    }
                    self.emit(Op::Halt, 0);
                } else {
                    match e {
                        Some(e) => {
                            self.expr(e)?;
                            self.emit(Op::Return, e.line);
                        }
                        None => self.emit(Op::ReturnNull, self.fn_line),
                    }
                }
            }
            Stmt::Break => {
                if !self.loops.is_empty() {
                    let at = self.emit_patch(Op::Jump(0), 0);
                    self.loops.last_mut().expect("loop context").breaks.push(at);
                } else if self.top_level {
                    self.emit(Op::Halt, 0);
                } else {
                    self.emit(Op::LooseBreak, self.fn_line);
                }
            }
            Stmt::Continue => {
                if let Some(ctx) = self.loops.last() {
                    let target = ctx.continue_to as u32;
                    self.emit(Op::Jump(target), 0);
                } else if self.top_level {
                    self.emit(Op::Halt, 0);
                } else {
                    self.emit(Op::LooseBreak, self.fn_line);
                }
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), ScriptError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Null => self.emit(Op::PushNull, line),
            ExprKind::Bool(true) => self.emit(Op::PushTrue, line),
            ExprKind::Bool(false) => self.emit(Op::PushFalse, line),
            ExprKind::Num(n) => {
                let c = self.shared.const_num(*n)?;
                self.emit(Op::Const(c), line);
            }
            ExprKind::Str(s) => {
                let c = self.shared.const_str(s)?;
                self.emit(Op::Const(c), line);
            }
            ExprKind::Array(items) => {
                for it in items {
                    self.expr(it)?;
                }
                let n = u16::try_from(items.len()).map_err(|_| limits("array elements"))?;
                self.emit(Op::MakeArray(n), line);
            }
            ExprKind::Var(name) => self.emit_load(name, line)?,
            ExprKind::Unary { op, expr } => {
                self.expr(expr)?;
                let op = match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                };
                self.emit(op, line);
            }
            ExprKind::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                self.expr(lhs)?;
                let at = self.emit_patch(Op::AndCircuit(0), line);
                self.expr(rhs)?;
                self.emit(Op::Truthy, line);
                self.patch(at);
            }
            ExprKind::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                self.expr(lhs)?;
                let at = self.emit_patch(Op::OrCircuit(0), line);
                self.expr(rhs)?;
                self.emit(Op::Truthy, line);
                self.patch(at);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                let op = match *op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Rem => Op::Rem,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.emit(op, line);
            }
            ExprKind::Index { target, index } => {
                self.expr(target)?;
                self.expr(index)?;
                self.emit(Op::IndexGet, line);
            }
            ExprKind::Field { target, field } => {
                self.expr(target)?;
                let nm = self.shared.intern(field)?;
                self.emit(Op::FieldGet { name: nm }, line);
            }
            ExprKind::Range { .. } => self.emit(Op::RangeOutsideFor, line),
            ExprKind::Call { name, args } => {
                for a in args {
                    self.expr(a)?;
                }
                let argc = u8::try_from(args.len()).map_err(|_| {
                    ScriptError::runtime(format!("call to '{name}' has too many arguments"), line)
                })?;
                // User functions win name clashes with builtins — the same
                // rule the tree-walk applies at call time.
                if let Some(&func) = self.shared.fn_index.get(name) {
                    self.emit(Op::CallFn { func, argc }, line);
                } else if let Some(builtin) = Builtin::lookup(name) {
                    self.emit(Op::CallBuiltin { builtin, argc }, line);
                } else {
                    let nm = self.shared.intern(name)?;
                    self.emit(Op::CallUnknown { name: nm }, line);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::compile;

    fn resolved(src: &str) -> CompiledScript {
        compile_program(&compile(src).unwrap()).unwrap()
    }

    #[test]
    fn top_level_binders_become_globals() {
        let c = resolved("let cut = 30.0; threshold = 2; for i in 0..3 { }");
        assert_eq!(c.globals, vec!["cut", "threshold", "i"]);
        assert_eq!(c.promote.len(), 3);
        // Top-level named slots map one-to-one onto global slots.
        for &(l, g) in &c.promote {
            assert_eq!(l, g);
        }
    }

    #[test]
    fn calls_resolve_at_compile_time() {
        let c =
            resolved("fn sqrt(x) { return x; }\nfn process(e) { sqrt(1); abs(2); nothing(3); }");
        let proc_idx = c.fn_index["process"] as usize;
        let code = &c.protos[proc_idx].code;
        // User function shadows the builtin.
        assert!(code
            .iter()
            .any(|op| matches!(op, Op::CallFn { func, .. } if *func == c.fn_index["sqrt"])));
        assert!(code.iter().any(|op| matches!(
            op,
            Op::CallBuiltin {
                builtin: Builtin::Abs,
                ..
            }
        )));
        // Unknown callees still compile — they error lazily at runtime.
        assert!(code.iter().any(|op| matches!(op, Op::CallUnknown { .. })));
    }

    #[test]
    fn unknown_variables_compile_to_lazy_error_ops() {
        let c = resolved("fn f() { return nope; }");
        let code = &c.protos[c.fn_index["f"] as usize].code;
        assert!(code.iter().any(|op| matches!(op, Op::LoadUndef { .. })));
    }

    #[test]
    fn jumps_are_patched_in_bounds() {
        let c = resolved(
            "fn f(n) {\n  let t = 0;\n  for i in 0..n {\n    if i % 2 == 0 { continue; }\n    if i > 10 { break; }\n    t = t + i;\n  }\n  while t > 0 { t = t - 1; }\n  return t;\n}",
        );
        let proto = &c.protos[c.fn_index["f"] as usize];
        assert_eq!(proto.code.len(), proto.lines.len());
        for op in &proto.code {
            let target = match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndCircuit(t) | Op::OrCircuit(t) => *t,
                Op::IterNext { done, .. } => *done,
                _ => continue,
            };
            assert!(
                (target as usize) < proto.code.len(),
                "target {target} in bounds"
            );
        }
    }

    #[test]
    fn duplicate_params_share_a_slot() {
        let c = resolved("fn f(a, a) { return a; }");
        let proto = &c.protos[c.fn_index["f"] as usize];
        assert_eq!(proto.params.len(), 2);
        assert_eq!(proto.params[0], proto.params[1]);
    }

    #[test]
    fn constants_are_deduplicated() {
        let c = resolved("fn f() { return 1 + 1 + 1; }");
        let ones = c
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Num(n) if *n == 1.0))
            .count();
        assert_eq!(ones, 1);
    }
}

//! The batch kernel: vectorized execution of canonical analyze bodies.
//!
//! The per-record hot path — even through the bytecode VM with
//! superinstructions — pays per-record dispatch, `RecordRef` construction,
//! and boxed-`Value` traffic for every row. But the dominant analysis
//! shape is tiny and regular: a straight-line `process(rec)` body of
//! `let` bindings over record fields, an optional guard predicate, and
//! `fill`/`fill2`/`pfill` calls:
//!
//! ```text
//! fn process(e) {
//!     fill("/higgs/n_btags", e.n_btags);
//!     let m = e.bb_mass;
//!     if m != null { fill("/higgs/bb_mass", m); }
//! }
//! ```
//!
//! [`BatchKernel::compile`] recognizes that shape and lowers it to a small
//! dataflow plan executed directly over [`ColumnBatch`] typed slices:
//! every expression evaluates column-at-a-time into flat `f64` vectors
//! with validity and error bitmaps, guards become selection masks, and
//! each fill call becomes one bulk [`Host`] slice fill over the surviving
//! rows. Anything the plan cannot express — string operations, loops,
//! global mutation, user-function calls, records as first-class values —
//! makes the whole program ineligible, and everything falls back to the
//! per-record engine loop.
//!
//! # Record-exact semantics
//!
//! The kernel's contract ([`BatchKernel::run`]) is a *prefix* contract:
//! `Some(p)` means the first `p` rows of the range executed exactly as the
//! per-record loop would have — same fills, bit-identical accumulator
//! values (AIDA bulk fills are defined as the scalar fill repeated in
//! slice order), no observable errors. The caller resumes the per-record
//! VM at row `p`, which reproduces any error with its exact message and
//! line, including the erroring record's partial fills. `None` means the
//! batch was ineligible (missing column, string column, unresolvable
//! global, unbooked fill path, fuel budget below the static bound) and no
//! side effects happened. Error detection is conservative: a row is
//! marked erroring if *any* statement the per-record loop would execute
//! errors there, and the prefix stops at the first such row — marking too
//! many rows only shrinks the prefix, never changes results.
//!
//! Fuel: eligible bodies are loop-free and call-free, so per-record fuel
//! use is bounded by a static count. `run` executes only when the
//! engine's per-record budget is at least 16 + 8 × (AST node count) — a
//! generous over-estimate of the per-record burn — which proves
//! `OutOfFuel` unobservable and licenses skipping per-op accounting.
//!
//! # Host contract for bulk fills
//!
//! Before applying any fill the kernel *probes* every fill path with an
//! empty slice; a probe error (unbooked path, kind mismatch) aborts to
//! the fallback before any side effect. After successful probes the bulk
//! fills are assumed infallible: [`Host`] fill errors must depend only on
//! the path, never on the coordinates (true of [`AidaHost`] and every
//! host in this codebase). A host violating that contract panics here.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use ipa_dataset::{AnyRecord, ColumnBatch};

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, UnOp};
use crate::error::ScriptError;
use crate::interp::Host;
use crate::stdlib::Builtin;
use crate::value::{RecordRef, Value};
use crate::ScriptEngine;

/// Static value kind of a vectorized expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Numbers (booleans widen to 0/1 exactly like [`Value::as_num`]).
    Num,
    /// Booleans, stored as 0.0/1.0.
    Bool,
    /// The `null` literal (and unbound-looking rows).
    Null,
}

/// A vectorizable expression over one batch range.
#[derive(Debug, Clone)]
enum KExpr {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `param.field`, by index into the plan's field list.
    Col(usize),
    /// A global read, by index into the plan's global list.
    Global(usize),
    /// A prior `let` binding, by definition order.
    Let(usize),
    /// Binary operator (including short-circuit `&&`/`||`, which
    /// vectorize because eligible operands are side-effect-free).
    Bin(BinOp, Box<KExpr>, Box<KExpr>),
    /// Numeric negation.
    Neg(Box<KExpr>),
    /// Logical not.
    Not(Box<KExpr>),
    /// `is_null(x)` (never errors).
    IsNull(Box<KExpr>),
    /// One-argument math builtin (`sqrt`…`round`).
    Math1(Builtin, Box<KExpr>),
    /// Two-argument math builtin (`pow`/`atan2`/`min`/`max`).
    Math2(Builtin, Box<KExpr>, Box<KExpr>),
}

/// Which fill family a [`KFill`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillKind {
    /// `fill(path, x, w?)` → [`Host::fill1_slice`].
    H1,
    /// `fill2(path, x, y, w?)` → [`Host::fill2_slice`].
    H2,
    /// `pfill(path, x, y, w?)` → [`Host::fill_profile_slice`].
    Prof,
}

/// The weight operand of a fill.
#[derive(Debug, Clone)]
enum Weight {
    /// No weight argument: 1.0.
    One,
    /// A numeric literal weight (the only expression form the 2-D slice
    /// fills can carry).
    Const(f64),
    /// An arbitrary eligible weight expression (1-D fills only, via
    /// [`Host::fill1_slice_weighted`]).
    Expr(KExpr),
}

/// One lowered fill call.
#[derive(Debug, Clone)]
struct KFill {
    kind: FillKind,
    path: String,
    x: KExpr,
    /// Second coordinate for `H2`/`Prof`.
    y: Option<KExpr>,
    w: Weight,
}

/// One lowered statement of the `process` body.
#[derive(Debug, Clone)]
enum KStep {
    /// `let name = expr;` — evaluated unconditionally (errors count even
    /// when the binding goes unused).
    Let(KExpr),
    /// An unconditional fill.
    Fill(KFill),
    /// `if cond { fills… } else { fills… }` — branches may contain only
    /// fill calls, which become disjoint selection masks.
    If {
        cond: KExpr,
        then: Vec<KFill>,
        els: Vec<KFill>,
    },
}

/// The full lowered `process` body.
#[derive(Debug, Clone)]
struct KernelProgram {
    /// Record fields read by the body, in [`KExpr::Col`] index order.
    fields: Vec<String>,
    /// Globals read by the body, in [`KExpr::Global`] index order.
    globals: Vec<String>,
    steps: Vec<KStep>,
}

/// One resolved record field of the bound batch.
#[derive(Debug)]
struct BoundCol {
    kind: Kind,
    /// Column index in the batch (validity lookups).
    col: usize,
    /// Cells converted to `f64` for integer/boolean columns; `None` for
    /// native `f64` columns, which are read in place.
    conv: Option<Vec<f64>>,
}

/// Per-batch binding, cached by pointer identity so the integer/boolean
/// conversions happen once per part, not once per `process_batch` chunk.
#[derive(Debug)]
struct Bind {
    batch: Arc<ColumnBatch>,
    /// `None`: this batch can never run the kernel (missing field or
    /// string-typed column).
    cols: Option<Vec<BoundCol>>,
}

/// A compiled vectorized `process` body. Construct with
/// [`BatchKernel::compile`]; drive with [`BatchKernel::run`] (or the
/// [`run_fused`] helper, which owns the fallback loop too).
#[derive(Debug)]
pub struct BatchKernel {
    plan: KernelProgram,
    /// Static per-record fuel bound; `run` refuses budgets below it.
    cost: u64,
    bind: Option<Bind>,
}

// ---------------------------------------------------------------------------
// Compilation: AST shape recognition.

struct Lowerer<'p> {
    program: &'p Program,
    param: &'p str,
    fields: Vec<String>,
    globals: Vec<String>,
    /// In-scope `let` bindings: name → definition index.
    lets: HashMap<String, usize>,
    n_lets: usize,
    nodes: u64,
}

impl<'p> Lowerer<'p> {
    fn intern(list: &mut Vec<String>, name: &str) -> usize {
        match list.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                list.push(name.to_string());
                list.len() - 1
            }
        }
    }

    /// Lower an eligible value expression, or bail.
    fn expr(&mut self, e: &Expr) -> Option<KExpr> {
        self.nodes += 1;
        Some(match &e.kind {
            ExprKind::Null => KExpr::Null,
            ExprKind::Bool(b) => KExpr::Bool(*b),
            ExprKind::Num(n) => KExpr::Num(*n),
            // Strings, arrays, ranges, indexing, and the record itself as
            // a value all stay on the per-record path.
            ExprKind::Str(_) | ExprKind::Array(_) | ExprKind::Range { .. } => return None,
            ExprKind::Index { .. } => return None,
            ExprKind::Var(name) => {
                if name.as_str() == self.param {
                    return None;
                }
                match self.lets.get(name) {
                    Some(&i) => KExpr::Let(i),
                    None => KExpr::Global(Self::intern(&mut self.globals, name)),
                }
            }
            ExprKind::Field { target, field } => match &target.kind {
                ExprKind::Var(v) if v.as_str() == self.param => {
                    KExpr::Col(Self::intern(&mut self.fields, field))
                }
                _ => return None,
            },
            ExprKind::Binary { op, lhs, rhs } => KExpr::Bin(
                *op,
                Box::new(self.expr(lhs)?),
                Box::new(self.expr(rhs)?),
            ),
            ExprKind::Unary { op, expr } => match op {
                UnOp::Neg => KExpr::Neg(Box::new(self.expr(expr)?)),
                UnOp::Not => KExpr::Not(Box::new(self.expr(expr)?)),
            },
            ExprKind::Call { name, args } => {
                // User functions shadow builtins, and their bodies can do
                // anything — punt.
                if self.program.functions.contains_key(name) {
                    return None;
                }
                match Builtin::lookup(name)? {
                    b @ (Builtin::Sqrt
                    | Builtin::Abs
                    | Builtin::Ln
                    | Builtin::Log10
                    | Builtin::Exp
                    | Builtin::Sin
                    | Builtin::Cos
                    | Builtin::Tan
                    | Builtin::Floor
                    | Builtin::Ceil
                    | Builtin::Round) => {
                        if args.len() != 1 {
                            return None; // arity error: per-record path reports it
                        }
                        KExpr::Math1(b, Box::new(self.expr(&args[0])?))
                    }
                    b @ (Builtin::Pow | Builtin::Atan2 | Builtin::Min | Builtin::Max) => {
                        if args.len() != 2 {
                            return None;
                        }
                        KExpr::Math2(
                            b,
                            Box::new(self.expr(&args[0])?),
                            Box::new(self.expr(&args[1])?),
                        )
                    }
                    Builtin::Pi => {
                        if !args.is_empty() {
                            return None;
                        }
                        KExpr::Num(std::f64::consts::PI)
                    }
                    Builtin::IsNull => {
                        if args.len() != 1 {
                            return None;
                        }
                        KExpr::IsNull(Box::new(self.expr(&args[0])?))
                    }
                    _ => return None,
                }
            }
        })
    }

    /// Lower a fill-family call statement, or bail.
    fn fill(&mut self, e: &Expr) -> Option<KFill> {
        self.nodes += 1;
        let ExprKind::Call { name, args } = &e.kind else {
            return None;
        };
        if self.program.functions.contains_key(name) {
            return None;
        }
        let (kind, n_coords) = match Builtin::lookup(name)? {
            Builtin::Fill => (FillKind::H1, 1),
            Builtin::Fill2 => (FillKind::H2, 2),
            Builtin::Pfill => (FillKind::Prof, 2),
            _ => return None,
        };
        // path + coordinates, optionally + weight.
        if args.len() < 1 + n_coords || args.len() > 2 + n_coords {
            return None;
        }
        let ExprKind::Str(path) = &args[0].kind else {
            return None; // dynamic paths stay per-record
        };
        let x = self.expr(&args[1])?;
        let y = if n_coords == 2 {
            Some(self.expr(&args[2])?)
        } else {
            None
        };
        let w = match args.get(1 + n_coords) {
            None => Weight::One,
            Some(warg) => match (&warg.kind, kind) {
                (ExprKind::Num(w), _) => Weight::Const(*w),
                // Only the 1-D fill has a per-row weighted slice call.
                (_, FillKind::H1) => Weight::Expr(self.expr(warg)?),
                _ => return None,
            },
        };
        Some(KFill {
            kind,
            path: path.clone(),
            x,
            y,
            w,
        })
    }

    /// Lower a branch body: fill-family calls only.
    fn branch(&mut self, stmts: &[Stmt]) -> Option<Vec<KFill>> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Expr(e) => self.fill(e),
                _ => None,
            })
            .collect()
    }
}

impl BatchKernel {
    /// Try to lower `program`'s `process` body to a vectorized plan.
    /// `None` means the body is not kernel-shaped; callers run the
    /// per-record engine loop unconditionally.
    pub fn compile(program: &Program) -> Option<BatchKernel> {
        let process = program.function("process")?;
        let [param] = process.params.as_slice() else {
            return None;
        };
        let mut lo = Lowerer {
            program,
            param: param.as_str(),
            fields: Vec::new(),
            globals: Vec::new(),
            lets: HashMap::new(),
            n_lets: 0,
            nodes: 0,
        };
        let mut steps = Vec::new();
        for stmt in &process.body {
            lo.nodes += 1;
            match stmt {
                Stmt::Let { name, value } => {
                    if name == param {
                        return None; // shadowing the record breaks Col resolution
                    }
                    let e = lo.expr(value)?;
                    lo.lets.insert(name.clone(), lo.n_lets);
                    lo.n_lets += 1;
                    steps.push(KStep::Let(e));
                }
                Stmt::Expr(e) => steps.push(KStep::Fill(lo.fill(e)?)),
                Stmt::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    let cond = lo.expr(cond)?;
                    let then = lo.branch(then)?;
                    let els = lo.branch(otherwise)?;
                    steps.push(KStep::If { cond, then, els });
                }
                _ => return None, // loops, assignment, return, break, continue
            }
        }
        // Two fills into one path would interleave differently per-record
        // vs. in bulk (f64 accumulation is order-sensitive): require
        // distinct paths so each histogram sees record order either way.
        let mut paths: Vec<&str> = Vec::new();
        for_each_fill(&steps, &mut |f| paths.push(&f.path));
        let n_paths = paths.len();
        paths.sort_unstable();
        paths.dedup();
        if paths.len() != n_paths {
            return None;
        }
        Some(BatchKernel {
            cost: 16 + 8 * lo.nodes,
            plan: KernelProgram {
                fields: lo.fields,
                globals: lo.globals,
                steps,
            },
            bind: None,
        })
    }

    /// The static per-record fuel bound `run` requires of the budget.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Execute the plan over `columns[range]`, filling `host` in bulk.
    ///
    /// Returns `Some(prefix)` when the first `prefix` rows of the range
    /// executed exactly as the per-record loop would have (the caller runs
    /// rows `range.start + prefix..range.end` through the engine), or
    /// `None` — with no side effects — when this batch cannot run
    /// vectorized. `globals` resolves current global values (the engine's
    /// [`ScriptEngine::global`]); `fuel_budget` is the engine's per-record
    /// budget.
    pub fn run(
        &mut self,
        columns: &Arc<ColumnBatch>,
        range: Range<usize>,
        globals: &dyn Fn(&str) -> Option<Value>,
        fuel_budget: u64,
        host: &mut dyn Host,
    ) -> Option<usize> {
        if fuel_budget < self.cost || range.end > columns.len() {
            return None;
        }
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return Some(0);
        }
        self.ensure_bind(columns);
        let bind = self.bind.as_ref().expect("bind ensured above");
        let cols = bind.cols.as_ref()?;

        // Globals resolve fresh per run (eligible bodies never mutate
        // them). Anything non-scalar falls back.
        let mut gvals: Vec<(Kind, f64)> = Vec::with_capacity(self.plan.globals.len());
        for name in &self.plan.globals {
            gvals.push(match globals(name)? {
                Value::Num(x) => (Kind::Num, x),
                Value::Bool(b) => (Kind::Bool, b as u8 as f64),
                Value::Null => (Kind::Null, 0.0),
                _ => return None,
            });
        }

        // Probe every fill path with an empty slice before any side
        // effect: unbooked paths and kind mismatches fall back here.
        let mut probes_ok = true;
        for_each_fill(&self.plan.steps, &mut |f| {
            let r = match (f.kind, &f.w) {
                (FillKind::H1, Weight::Expr(_)) => host.fill1_slice_weighted(&f.path, &[], &[]),
                (FillKind::H1, _) => host.fill1_slice(&f.path, &[], 1.0),
                (FillKind::H2, _) => host.fill2_slice(&f.path, &[], &[], 1.0),
                (FillKind::Prof, _) => host.fill_profile_slice(&f.path, &[], &[], 1.0),
            };
            probes_ok &= r.is_ok();
        });
        if !probes_ok {
            return None;
        }

        let ctx = EvalCtx {
            batch: &bind.batch,
            cols,
            gvals: &gvals,
            range: range.clone(),
            n,
        };

        // Evaluate every step, accumulating per-row error flags and the
        // fill argument vectors (gathered after the prefix is known).
        let mut lets: Vec<Ev> = Vec::new();
        let mut err_any = vec![false; n];
        let mut apps: Vec<FillApp<'_>> = Vec::new();
        for step in &self.plan.steps {
            match step {
                KStep::Let(e) => {
                    let ev = ctx.eval(e, &lets);
                    or_assign(&mut err_any, &ev.err);
                    lets.push(ev);
                }
                KStep::Fill(f) => {
                    let app = ctx.fill_app(f, None, &lets, &mut err_any);
                    apps.push(app);
                }
                KStep::If { cond, then, els } => {
                    let cev = ctx.eval(cond, &lets);
                    or_assign(&mut err_any, &cev.err);
                    let mut then_sel = vec![false; n];
                    let mut els_sel = vec![false; n];
                    for r in 0..n {
                        if !cev.err[r] {
                            let t = cev.truthy(r);
                            then_sel[r] = t;
                            els_sel[r] = !t;
                        }
                    }
                    for f in then {
                        let app = ctx.fill_app(f, Some(then_sel.clone()), &lets, &mut err_any);
                        apps.push(app);
                    }
                    for f in els {
                        let app = ctx.fill_app(f, Some(els_sel.clone()), &lets, &mut err_any);
                        apps.push(app);
                    }
                }
            }
        }

        let prefix = err_any.iter().position(|&e| e).unwrap_or(n);

        // Apply the fills for the error-free prefix, in statement order.
        // Paths are distinct (compile invariant), so each histogram sees
        // its values in record order — bit-identical to the scalar loop.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut ws: Vec<f64> = Vec::new();
        for app in &apps {
            xs.clear();
            ys.clear();
            ws.clear();
            let selected = (0..prefix).filter(|&r| app.sel.as_ref().is_none_or(|s| s[r]));
            for r in selected {
                xs.push(app.x.vals[r]);
                if let Some(y) = &app.y {
                    ys.push(y.vals[r]);
                }
                if let WeightApp::Expr(w) = &app.w {
                    ws.push(w.vals[r]);
                }
            }
            let scalar_w = match &app.w {
                WeightApp::Scalar(w) => *w,
                WeightApp::Expr(_) => 1.0,
            };
            // Probed above; see the module docs for the host contract.
            let res = match (app.fill.kind, &app.w) {
                (FillKind::H1, WeightApp::Expr(_)) => {
                    host.fill1_slice_weighted(&app.fill.path, &xs, &ws)
                }
                (FillKind::H1, _) => host.fill1_slice(&app.fill.path, &xs, scalar_w),
                (FillKind::H2, _) => host.fill2_slice(&app.fill.path, &xs, &ys, scalar_w),
                (FillKind::Prof, _) => host.fill_profile_slice(&app.fill.path, &xs, &ys, scalar_w),
            };
            res.expect("bulk fill failed after its empty-slice probe succeeded; host fill errors must depend only on the path");
        }
        Some(prefix)
    }

    /// (Re)build the per-batch column binding when the batch changes.
    fn ensure_bind(&mut self, columns: &Arc<ColumnBatch>) {
        if let Some(b) = &self.bind {
            if Arc::ptr_eq(&b.batch, columns) {
                return;
            }
        }
        let mut cols = Vec::with_capacity(self.plan.fields.len());
        let mut ok = true;
        for name in &self.plan.fields {
            let Some(ci) = columns.column_index(name) else {
                ok = false; // unknown field: per-record path reports it
                break;
            };
            let col = columns.column(ci);
            let bc = if col.f64s().is_some() {
                BoundCol {
                    kind: Kind::Num,
                    col: ci,
                    conv: None,
                }
            } else if let Some(is) = col.i64s() {
                BoundCol {
                    kind: Kind::Num,
                    col: ci,
                    conv: Some(is.iter().map(|&i| i as f64).collect()),
                }
            } else if let Some(bs) = col.bools() {
                BoundCol {
                    kind: Kind::Bool,
                    col: ci,
                    conv: Some(bs.iter().map(|&b| b as u8 as f64).collect()),
                }
            } else {
                ok = false; // string column: stays per-record
                break;
            };
            cols.push(bc);
        }
        self.bind = Some(Bind {
            batch: columns.clone(),
            cols: ok.then_some(cols),
        });
    }
}

/// Visit every fill of `steps` in statement order.
fn for_each_fill<'a>(steps: &'a [KStep], f: &mut dyn FnMut(&'a KFill)) {
    for step in steps {
        match step {
            KStep::Let(_) => {}
            KStep::Fill(fill) => f(fill),
            KStep::If { then, els, .. } => {
                for fill in then {
                    f(fill);
                }
                for fill in els {
                    f(fill);
                }
            }
        }
    }
}

fn or_assign(acc: &mut [bool], src: &[bool]) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a |= s;
    }
}

// ---------------------------------------------------------------------------
// Vector evaluation.

/// A vectorized expression result over the active range: `vals[r]` is the
/// numeric view (booleans as 0/1), `valid[r]` false means the row is
/// `null`, `err[r]` true means the per-record loop would have errored at
/// or before this expression on row `r`.
#[derive(Clone)]
struct Ev {
    kind: Kind,
    vals: Vec<f64>,
    valid: Vec<bool>,
    err: Vec<bool>,
}

impl Ev {
    fn broadcast(n: usize, kind: Kind, val: f64) -> Ev {
        Ev {
            kind,
            vals: vec![val; n],
            valid: vec![kind != Kind::Null; n],
            err: vec![false; n],
        }
    }

    /// Row truthiness, mirroring [`Value::truthy`] for Num/Bool/Null
    /// (`NaN` is truthy: `NaN != 0.0`).
    fn truthy(&self, r: usize) -> bool {
        self.valid[r] && self.vals[r] != 0.0
    }
}

/// Evaluated fill arguments awaiting the prefix gather.
struct FillApp<'a> {
    fill: &'a KFill,
    /// Branch selection mask; `None` for unconditional fills.
    sel: Option<Vec<bool>>,
    x: Ev,
    y: Option<Ev>,
    w: WeightApp,
}

enum WeightApp {
    Scalar(f64),
    Expr(Ev),
}

struct EvalCtx<'a> {
    batch: &'a ColumnBatch,
    cols: &'a [BoundCol],
    gvals: &'a [(Kind, f64)],
    range: Range<usize>,
    n: usize,
}

impl EvalCtx<'_> {
    fn eval(&self, e: &KExpr, lets: &[Ev]) -> Ev {
        let n = self.n;
        match e {
            KExpr::Num(k) => Ev::broadcast(n, Kind::Num, *k),
            KExpr::Bool(b) => Ev::broadcast(n, Kind::Bool, *b as u8 as f64),
            KExpr::Null => Ev::broadcast(n, Kind::Null, 0.0),
            KExpr::Col(i) => {
                let bc = &self.cols[*i];
                let col = self.batch.column(bc.col);
                let vals: Vec<f64> = match &bc.conv {
                    Some(v) => v[self.range.clone()].to_vec(),
                    None => col.f64s().expect("bound as native f64")[self.range.clone()].to_vec(),
                };
                let valid: Vec<bool> = if col.all_valid() {
                    vec![true; n]
                } else {
                    (self.range.clone()).map(|row| col.is_valid(row)).collect()
                };
                Ev {
                    kind: bc.kind,
                    vals,
                    valid,
                    err: vec![false; n],
                }
            }
            KExpr::Global(i) => {
                let (kind, val) = self.gvals[*i];
                Ev::broadcast(n, kind, val)
            }
            KExpr::Let(i) => lets[*i].clone(),
            KExpr::Bin(op, a, b) => {
                let a = self.eval(a, lets);
                let b = self.eval(b, lets);
                self.bin(*op, a, b)
            }
            KExpr::Neg(a) => {
                let a = self.eval(a, lets);
                let mut out = Ev::broadcast(n, Kind::Num, 0.0);
                for r in 0..n {
                    out.err[r] = a.err[r] || !a.valid[r];
                    out.vals[r] = -a.vals[r];
                }
                out
            }
            KExpr::Not(a) => {
                let a = self.eval(a, lets);
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                for r in 0..n {
                    out.err[r] = a.err[r];
                    out.vals[r] = (!a.truthy(r)) as u8 as f64;
                }
                out
            }
            KExpr::IsNull(a) => {
                let a = self.eval(a, lets);
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                for r in 0..n {
                    out.err[r] = a.err[r];
                    out.vals[r] = (!a.valid[r]) as u8 as f64;
                }
                out
            }
            KExpr::Math1(b, a) => {
                let a = self.eval(a, lets);
                let mut out = Ev::broadcast(n, Kind::Num, 0.0);
                let f = math1(*b);
                for r in 0..n {
                    out.err[r] = a.err[r] || !a.valid[r];
                    out.vals[r] = f(a.vals[r]);
                }
                out
            }
            KExpr::Math2(b, x, y) => {
                let x = self.eval(x, lets);
                let y = self.eval(y, lets);
                let mut out = Ev::broadcast(n, Kind::Num, 0.0);
                let f = math2(*b);
                for r in 0..n {
                    out.err[r] = x.err[r] || y.err[r] || !x.valid[r] || !y.valid[r];
                    out.vals[r] = f(x.vals[r], y.vals[r]);
                }
                out
            }
        }
    }

    /// Apply a binary operator row-wise, mirroring
    /// [`crate::interp`]'s `eval_binary_values` and the short-circuit
    /// evaluation order for `&&`/`||`.
    fn bin(&self, op: BinOp, a: Ev, b: Ev) -> Ev {
        let n = self.n;
        match op {
            BinOp::And => {
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                for r in 0..n {
                    let ta = a.truthy(r);
                    // rhs only evaluates (and can only error) when the
                    // lhs is truthy.
                    out.err[r] = a.err[r] || (ta && b.err[r]);
                    out.vals[r] = (ta && b.truthy(r)) as u8 as f64;
                }
                out
            }
            BinOp::Or => {
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                for r in 0..n {
                    let ta = a.truthy(r);
                    out.err[r] = a.err[r] || (!ta && b.err[r]);
                    out.vals[r] = (ta || b.truthy(r)) as u8 as f64;
                }
                out
            }
            BinOp::Eq | BinOp::Ne => {
                // `Value::equals`: null == null, cross-kind never equal,
                // NaN != NaN. Never errors.
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                let same_kind = a.kind == b.kind;
                for r in 0..n {
                    out.err[r] = a.err[r] || b.err[r];
                    let eq = match (a.valid[r], b.valid[r]) {
                        (false, false) => true,
                        (true, true) => same_kind && a.vals[r] == b.vals[r],
                        _ => false,
                    };
                    out.vals[r] = (eq != (op == BinOp::Ne)) as u8 as f64;
                }
                out
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let mut out = Ev::broadcast(n, Kind::Bool, 0.0);
                for r in 0..n {
                    // "cannot order": null rows have no numeric view.
                    out.err[r] = a.err[r] || b.err[r] || !a.valid[r] || !b.valid[r];
                    let (x, y) = (a.vals[r], b.vals[r]);
                    out.vals[r] = (match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        _ => unreachable!(),
                    }) as u8 as f64;
                }
                out
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                // String operands are compile-ineligible, so `+` is
                // always arithmetic here; "arithmetic needs numbers" on
                // null rows.
                let mut out = Ev::broadcast(n, Kind::Num, 0.0);
                for r in 0..n {
                    out.err[r] = a.err[r] || b.err[r] || !a.valid[r] || !b.valid[r];
                    let (x, y) = (a.vals[r], b.vals[r]);
                    out.vals[r] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        _ => unreachable!(),
                    };
                }
                out
            }
        }
    }

    /// Evaluate one fill's arguments and fold its per-row eligibility
    /// into `err_any` (a fill errors where its selection is live and a
    /// coordinate or weight is erroring or null).
    fn fill_app<'a>(
        &self,
        fill: &'a KFill,
        sel: Option<Vec<bool>>,
        lets: &[Ev],
        err_any: &mut [bool],
    ) -> FillApp<'a> {
        let x = self.eval(&fill.x, lets);
        let y = fill.y.as_ref().map(|y| self.eval(y, lets));
        let w = match &fill.w {
            Weight::One => WeightApp::Scalar(1.0),
            Weight::Const(w) => WeightApp::Scalar(*w),
            Weight::Expr(e) => WeightApp::Expr(self.eval(e, lets)),
        };
        for (r, err) in err_any.iter_mut().enumerate() {
            if sel.as_ref().is_some_and(|s| !s[r]) {
                continue;
            }
            let mut bad = x.err[r] || !x.valid[r];
            if let Some(y) = &y {
                bad |= y.err[r] || !y.valid[r];
            }
            if let WeightApp::Expr(w) = &w {
                bad |= w.err[r] || !w.valid[r];
            }
            *err |= bad;
        }
        FillApp {
            fill,
            sel,
            x,
            y,
            w,
        }
    }
}

fn math1(b: Builtin) -> fn(f64) -> f64 {
    match b {
        Builtin::Sqrt => f64::sqrt,
        Builtin::Abs => f64::abs,
        Builtin::Ln => f64::ln,
        Builtin::Log10 => f64::log10,
        Builtin::Exp => f64::exp,
        Builtin::Sin => f64::sin,
        Builtin::Cos => f64::cos,
        Builtin::Tan => f64::tan,
        Builtin::Floor => f64::floor,
        Builtin::Ceil => f64::ceil,
        Builtin::Round => f64::round,
        _ => unreachable!("not a 1-arg math builtin"),
    }
}

fn math2(b: Builtin) -> fn(f64, f64) -> f64 {
    match b {
        Builtin::Pow => f64::powf,
        Builtin::Atan2 => f64::atan2,
        Builtin::Min => f64::min,
        Builtin::Max => f64::max,
        _ => unreachable!("not a 2-arg math builtin"),
    }
}

// ---------------------------------------------------------------------------
// The shared fused dispatch loop.

/// Run `records[range]` through `engine`, letting `kernel` vectorize an
/// error-free prefix when `columns` is the batch's transcode.
///
/// This is the one dispatch path shared by the engine's script analyzer
/// and the differential tests, so every fusion level drives identical
/// code. Returns `(processed, error)`: `processed` counts records fully
/// executed (kernel prefix + per-record loop), and an error stops the
/// loop exactly at the offending record, leaving its partial side effects
/// applied — byte-for-byte the plain per-record contract.
pub fn run_fused(
    engine: &mut dyn ScriptEngine,
    kernel: Option<&mut BatchKernel>,
    records: &Arc<Vec<AnyRecord>>,
    columns: Option<&Arc<ColumnBatch>>,
    range: Range<usize>,
    host: &mut dyn Host,
) -> (usize, Option<ScriptError>) {
    let mut start = range.start;
    if let Some(cols) = columns {
        engine.bind_columns(records, cols);
        if let Some(k) = kernel {
            if cols.len() == records.len() {
                let budget = engine.fuel_budget();
                let eng: &dyn ScriptEngine = engine;
                if let Some(prefix) =
                    k.run(cols, range.clone(), &|name| eng.global(name), budget, host)
                {
                    start += prefix;
                }
            }
        }
    }
    let mut done = start - range.start;
    for i in start..range.end {
        if let Err(e) = engine.process(host, RecordRef::batch(records.clone(), i)) {
            return (done, Some(e));
        }
        done += 1;
    }
    (done, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::AidaHost;
    use crate::{compile, engine_for, ScriptBackend, ScriptFusion};
    use ipa_dataset::TradeRecord;

    const HIGGS_LIKE: &str = r#"
        fn init() {
            h1("/t/volume", 20, 0.0, 200.0);
            h1("/t/price", 30, 0.0, 300.0);
        }
        fn process(t) {
            fill("/t/volume", t.volume);
            let p = t.price;
            if p != null { fill("/t/price", p); }
        }
    "#;

    fn trades(n: usize) -> Arc<Vec<AnyRecord>> {
        Arc::new(
            (0..n)
                .map(|i| {
                    AnyRecord::Trade(TradeRecord {
                        trade_id: i as u64,
                        timestamp_ms: 1_000 * i as u64,
                        symbol: "IPA".into(),
                        price: 100.0 + (i as f64) * 0.75,
                        volume: 50 + (i as u32 % 90),
                        buyer_initiated: i % 3 == 0,
                    })
                })
                .collect(),
        )
    }

    /// Drive `src` over `records` at the given fusion level and return
    /// the host.
    fn run_mode(src: &str, records: &Arc<Vec<AnyRecord>>, fusion: ScriptFusion) -> AidaHost {
        let program = compile(src).unwrap();
        let mut engine = engine_for(&program, ScriptBackend::Vm, fusion).unwrap();
        let mut kernel = (fusion == ScriptFusion::Kernel)
            .then(|| BatchKernel::compile(&program))
            .flatten();
        let columns = ColumnBatch::from_records(records.as_slice()).map(Arc::new);
        let mut host = AidaHost::new();
        engine.run_init(&mut host).unwrap();
        let (done, err) = run_fused(
            engine.as_mut(),
            kernel.as_mut(),
            records,
            columns.as_ref(),
            0..records.len(),
            &mut host,
        );
        assert_eq!(done, records.len());
        assert!(err.is_none(), "unexpected error: {err:?}");
        engine.run_end(&mut host).unwrap();
        host
    }

    /// Tree comparison via the Debug dump: empty stats carry NaN
    /// min/max, and NaN != NaN under the derived `PartialEq`, so
    /// structural equality spuriously fails on any empty profile bin.
    fn dump(host: &AidaHost) -> String {
        format!("{:?}", host.tree)
    }

    #[test]
    fn canonical_body_compiles_and_matches_per_record_execution() {
        let program = compile(HIGGS_LIKE).unwrap();
        assert!(BatchKernel::compile(&program).is_some());
        let records = trades(257);
        let vectorized = run_mode(HIGGS_LIKE, &records, ScriptFusion::Kernel);
        let scalar = run_mode(HIGGS_LIKE, &records, ScriptFusion::Off);
        assert_eq!(dump(&vectorized), dump(&scalar));
    }

    #[test]
    fn kernel_prefix_runs_the_whole_clean_batch() {
        let program = compile(HIGGS_LIKE).unwrap();
        let mut kernel = BatchKernel::compile(&program).unwrap();
        let records = trades(64);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut engine = engine_for(&program, ScriptBackend::Vm, ScriptFusion::Kernel).unwrap();
        let mut host = AidaHost::new();
        engine.run_init(&mut host).unwrap();
        let eng: &dyn ScriptEngine = engine.as_ref();
        let prefix = kernel
            .run(
                &columns,
                0..64,
                &|n| eng.global(n),
                crate::DEFAULT_FUEL,
                &mut host,
            )
            .unwrap();
        assert_eq!(prefix, 64);
        assert_eq!(host.tree.get("/t/volume").unwrap().entries(), 64);
    }

    #[test]
    fn fuel_budget_below_cost_refuses_to_run() {
        let program = compile(HIGGS_LIKE).unwrap();
        let mut kernel = BatchKernel::compile(&program).unwrap();
        assert!(kernel.cost() > 1);
        let records = trades(8);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut host = AidaHost::new();
        host.book_h1("/t/volume", 20, 0.0, 200.0).unwrap();
        host.book_h1("/t/price", 30, 0.0, 300.0).unwrap();
        assert_eq!(kernel.run(&columns, 0..8, &|_| None, 1, &mut host), None);
        assert_eq!(host.tree.get("/t/volume").unwrap().entries(), 0);
    }

    #[test]
    fn unbooked_fill_path_falls_back_without_side_effects() {
        let program = compile(HIGGS_LIKE).unwrap();
        let mut kernel = BatchKernel::compile(&program).unwrap();
        let records = trades(8);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut host = AidaHost::new(); // nothing booked
        assert_eq!(
            kernel.run(&columns, 0..8, &|_| None, crate::DEFAULT_FUEL, &mut host),
            None
        );
    }

    #[test]
    fn string_operations_are_ineligible() {
        let src = r#"fn process(t) { if t.symbol == "IPA" { fill("/x", t.price); } }"#;
        assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    }

    #[test]
    fn global_mutation_is_ineligible() {
        let src = "fn init() { n = 0; } fn process(t) { n = n + 1; }";
        assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    }

    #[test]
    fn user_function_calls_are_ineligible() {
        let src = "fn cut(p) { return p > 100; } fn process(t) { if cut(t.price) { fill(\"/x\", t.price); } }";
        assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    }

    #[test]
    fn duplicate_fill_paths_are_ineligible() {
        // Two fills into one path would reorder f64 accumulation.
        let src = "fn process(t) { fill(\"/x\", t.price); fill(\"/x\", t.volume); }";
        assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    }

    #[test]
    fn loops_and_logging_are_ineligible() {
        for src in [
            "fn process(t) { while t.volume > 0 { fill(\"/x\", 1); } }",
            "fn process(t) { for i in 0..3 { fill(\"/x\", i); } }",
            "fn process(t) { log(t.price); }",
        ] {
            assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
        }
    }

    #[test]
    fn string_column_read_falls_back_at_bind_time() {
        // `t.symbol` compiles nowhere… use a body that reads it through a
        // comparison-free let so compile succeeds, then bind must refuse.
        let src = "fn process(t) { let s = t.symbol; }";
        let program = compile(src).unwrap();
        let mut kernel = BatchKernel::compile(&program).expect("let of a field is eligible");
        let records = trades(4);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut host = AidaHost::new();
        assert_eq!(
            kernel.run(&columns, 0..4, &|_| None, crate::DEFAULT_FUEL, &mut host),
            None
        );
    }

    #[test]
    fn unknown_field_falls_back_at_bind_time() {
        let src = "fn process(t) { fill(\"/x\", t.no_such_field); }";
        let program = compile(src).unwrap();
        let mut kernel = BatchKernel::compile(&program).unwrap();
        let records = trades(4);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut host = AidaHost::new();
        host.book_h1("/x", 10, 0.0, 1.0).unwrap();
        assert_eq!(
            kernel.run(&columns, 0..4, &|_| None, crate::DEFAULT_FUEL, &mut host),
            None
        );
    }

    #[test]
    fn guards_weights_math_and_globals_match_scalar_execution() {
        let src = r#"
            scale = 2.5;
            fn init() {
                h1("/w/hist", 25, 0.0, 500.0);
                h2("/w/h2", 10, 0.0, 300.0, 10, 0.0, 200.0);
                prof("/w/prof", 10, 0.0, 300.0);
            }
            fn process(t) {
                let v = t.volume;
                let p = t.price;
                if p > 110.0 && v < 120 {
                    fill("/w/hist", sqrt(p * v), scale);
                    fill2("/w/h2", p, v, 0.5);
                    pfill("/w/prof", p, v);
                }
            }
        "#;
        let program = compile(src).unwrap();
        assert!(BatchKernel::compile(&program).is_some());
        let records = trades(200);
        let vectorized = run_mode(src, &records, ScriptFusion::Kernel);
        let scalar = run_mode(src, &records, ScriptFusion::Off);
        assert_eq!(dump(&vectorized), dump(&scalar));
        assert!(vectorized.tree.get("/w/hist").unwrap().entries() > 0);
    }

    #[test]
    fn missing_heavy_columns_match_scalar_execution() {
        // `bb_mass`-style missing data: guard on null, fill survivors.
        let src = r#"
            fn init() { h1("/m/q", 10, 0.0, 60.0); }
            fn process(d) {
                let q = d.quality;
                if q != null { fill("/m/q", q); }
            }
        "#;
        let records: Arc<Vec<AnyRecord>> = Arc::new(
            (0..50u64)
                .map(|i| {
                    AnyRecord::Dna(ipa_dataset::DnaRead {
                        read_id: i,
                        sample: (i % 4) as u32,
                        bases: if i % 3 == 0 { "".into() } else { "ACGT".into() },
                        quality: (i % 45) as f32,
                    })
                })
                .collect(),
        );
        let vectorized = run_mode(src, &records, ScriptFusion::Kernel);
        let scalar = run_mode(src, &records, ScriptFusion::Off);
        assert_eq!(dump(&vectorized), dump(&scalar));
    }

    #[test]
    fn erroring_row_stops_the_prefix_and_the_vm_reports_it() {
        // Ordering null errors per-record at the guard; the kernel must
        // hand exactly the clean prefix back and let the VM produce the
        // error at the first bad row.
        let src = r#"
            fn init() { h1("/e/x", 10, 0.0, 10.0); }
            fn process(t) {
                if t.price < nothing { fill("/e/x", 1); }
            }
        "#;
        // `nothing` is an unknown global → kernel global resolution fails
        // → full fallback; VM errors on record 0.
        let program = compile(src).unwrap();
        let mut kernel = BatchKernel::compile(&program);
        assert!(kernel.is_some());
        let records = trades(6);
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut engine = engine_for(&program, ScriptBackend::Vm, ScriptFusion::Kernel).unwrap();
        let mut host = AidaHost::new();
        engine.run_init(&mut host).unwrap();
        let (done, err) = run_fused(
            engine.as_mut(),
            kernel.as_mut(),
            &records,
            Some(&columns),
            0..6,
            &mut host,
        );
        assert_eq!(done, 0);
        let err = err.expect("unknown variable must surface");
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }

    #[test]
    fn run_fused_without_kernel_or_columns_is_the_plain_loop() {
        let program = compile(HIGGS_LIKE).unwrap();
        let records = trades(10);
        let mut engine = engine_for(&program, ScriptBackend::Vm, ScriptFusion::Off).unwrap();
        let mut host = AidaHost::new();
        engine.run_init(&mut host).unwrap();
        let (done, err) = run_fused(engine.as_mut(), None, &records, None, 0..10, &mut host);
        assert_eq!((done, err), (10, None));
        assert_eq!(host.tree.get("/t/volume").unwrap().entries(), 10);
    }

    #[test]
    fn subrange_prefixes_compose_across_chunks() {
        // The engine feeds parts in publish-cadence chunks; two chunked
        // kernel runs must equal one whole-part run.
        let records = trades(100);
        let program = compile(HIGGS_LIKE).unwrap();
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());
        let mut whole = AidaHost::new();
        let mut chunked = AidaHost::new();
        for (host, ranges) in [
            (&mut whole, vec![0..100]),
            (&mut chunked, vec![0..33, 33..66, 66..100]),
        ] {
            let mut engine = engine_for(&program, ScriptBackend::Vm, ScriptFusion::Kernel).unwrap();
            let mut kernel = BatchKernel::compile(&program);
            engine.run_init(host).unwrap();
            for range in ranges {
                let expect = range.len();
                let (done, err) = run_fused(
                    engine.as_mut(),
                    kernel.as_mut(),
                    &records,
                    Some(&columns),
                    range,
                    host,
                );
                assert_eq!((done, err), (expect, None));
            }
            engine.run_end(host).unwrap();
        }
        assert_eq!(dump(&whole), dump(&chunked));
    }
}

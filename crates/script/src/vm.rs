//! The bytecode virtual machine: executes a [`CompiledScript`] produced
//! by [`crate::resolve::compile_program`].
//!
//! The VM is a stack machine with per-frame `Vec<Option<Value>>` local
//! slots (compile-time resolved — the hot loop never hashes a name) and a
//! frame pool so steady-state `process()` calls allocate nothing. Fuel is
//! one unit per dispatched instruction, charged at the top of the loop, so
//! runaway scripts stop with [`ScriptError::OutOfFuel`] exactly like the
//! tree-walk. All operator, indexing, and field semantics funnel through
//! the shared helpers in [`crate::interp`], keeping the two backends
//! bit-for-bit identical in results and error messages.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use ipa_dataset::{AnyRecord, ColumnBatch};

use crate::ast::{BinOp, UnOp};
use crate::bytecode::{CompiledScript, FnProto, Op};
use crate::error::ScriptError;
use crate::interp::{
    eval_binary_values, eval_unary, field_value, index_to_usize, index_value, store_index, Host,
    DEFAULT_FUEL, MAX_DEPTH,
};
use crate::stdlib::dispatch_builtin;
use crate::value::{RecordRef, Value};

/// One call frame: operand stack plus flat local slots. `None` means "this
/// binder exists in the function but is not bound yet" — reading it is the
/// lazy "unknown variable" error, mirroring the tree-walk's hash lookup.
#[derive(Default)]
struct Frame {
    locals: Vec<Option<Value>>,
    stack: Vec<Value>,
    /// Per-slot `LoadEither` resolution cache, parallel to `locals`:
    /// `true` means the last probe found the local unbound and the global
    /// bound, so subsequent loads read the global directly. Globals never
    /// unbind within a VM's lifetime; anything that *binds* the local slot
    /// (`StoreLocal`, `StoreEither`'s implicit creation, `IterInit`)
    /// clears the entry.
    either_global: Vec<bool>,
}

thread_local! {
    /// Frames recycled across *all* VMs on this thread, not per-VM: an
    /// engine thread builds a fresh `Vm` per part, and per-VM pools would
    /// re-allocate every frame at each part boundary. Engines are
    /// single-threaded, so a thread-local needs no locking.
    static FRAME_POOL: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Pool misses on this thread (a fresh `Frame` had to be allocated).
    static FRAME_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// How many frames this thread has allocated fresh because the pool was
/// empty. Steady-state processing keeps this flat — the allocation-count
/// regression tests assert exactly that across part boundaries.
pub fn frame_allocations() -> u64 {
    FRAME_ALLOCS.with(|c| c.get())
}

/// Check a cleared frame out of the thread pool, sized for `n_slots`.
fn take_frame(n_slots: usize) -> Frame {
    let mut f = FRAME_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
        FRAME_ALLOCS.with(|c| c.set(c.get() + 1));
        Frame::default()
    });
    f.locals.clear();
    f.locals.resize(n_slots, None);
    f.either_global.clear();
    f.either_global.resize(n_slots, false);
    f.stack.clear();
    f
}

/// Return a frame to the thread pool (values dropped, buffers kept).
fn put_frame(mut f: Frame) {
    f.locals.clear();
    f.stack.clear();
    FRAME_POOL.with(|p| {
        let mut p = p.borrow_mut();
        // Cap the pool at the call-depth limit: that is the most frames
        // any execution can have live at once.
        if p.len() < MAX_DEPTH {
            p.push(f);
        }
    });
}

/// A columnar view of the part currently streaming through the VM. Field
/// names are resolved to column indices once here, at bind time, so the
/// per-record `Op::FieldGet` fast path is two array reads.
struct ColumnBinding {
    /// The row batch the incoming `RecordRef::Batch` handles point into —
    /// pointer identity is the fast-path guard.
    records: Arc<Vec<AnyRecord>>,
    /// The transcode of `records`.
    columns: Arc<ColumnBatch>,
    /// Column index per `script.names` entry; `None` = the name is not a
    /// field of this batch's record kind.
    cols: Vec<Option<u32>>,
}

/// The bytecode interpreter: compiled script + global state. Drop-in
/// behavioral replacement for [`crate::Interpreter`].
pub struct Vm {
    script: Arc<CompiledScript>,
    /// Global slots, parallel to `script.globals`.
    globals: Vec<Option<Value>>,
    /// Per-entry-point fuel budget.
    fuel_budget: u64,
    fuel: u64,
    depth: usize,
    init_fn: Option<u16>,
    process_fn: Option<u16>,
    end_fn: Option<u16>,
    /// Column binding for the part being streamed, when the engine runs
    /// the columnar data plane.
    bound: Option<ColumnBinding>,
}

impl Vm {
    /// Build a VM around a resolved script.
    pub fn new(script: CompiledScript) -> Self {
        let globals = vec![None; script.globals.len()];
        let init_fn = script.fn_index.get("init").copied();
        let process_fn = script.fn_index.get("process").copied();
        let end_fn = script.fn_index.get("end").copied();
        Vm {
            script: Arc::new(script),
            globals,
            fuel_budget: DEFAULT_FUEL,
            fuel: DEFAULT_FUEL,
            depth: 0,
            init_fn,
            process_fn,
            end_fn,
            bound: None,
        }
    }

    /// Bind a columnar transcode of the part about to stream through
    /// `process()`. Field names are resolved to column indices once per
    /// part; re-binding the same `(records, columns)` pair is free.
    pub fn bind_columns(&mut self, records: &Arc<Vec<AnyRecord>>, columns: &Arc<ColumnBatch>) {
        if let Some(b) = &self.bound {
            if Arc::ptr_eq(&b.records, records) && Arc::ptr_eq(&b.columns, columns) {
                return;
            }
        }
        let cols = self
            .script
            .names
            .iter()
            .map(|n| columns.column_index(n).map(|i| i as u32))
            .collect();
        self.bound = Some(ColumnBinding {
            records: Arc::clone(records),
            columns: Arc::clone(columns),
            cols,
        });
    }

    /// Drop any column binding; subsequent field reads use the row path.
    pub fn unbind_columns(&mut self) {
        self.bound = None;
    }

    /// Override the per-call fuel budget (tests and paranoid deployments).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_budget = fuel;
        self.fuel = fuel;
        self
    }

    /// The per-entry-point fuel budget currently in force.
    pub fn fuel_budget(&self) -> u64 {
        self.fuel_budget
    }

    /// Run the top-level body (promoting its locals to globals on
    /// success), then `init()` if defined. Call once per run.
    pub fn run_init(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        self.fuel = self.fuel_budget;
        let script = Arc::clone(&self.script);
        let proto = &script.top_level;
        let mut frame = take_frame(proto.n_slots as usize);
        let r = self.exec(&script, proto, &mut frame, host);
        if r.is_ok() {
            // Promote bound top-level locals into their global slots; an
            // error skips promotion, same as the tree-walk's early return.
            for &(l, g) in &script.promote {
                if let Some(v) = frame.locals[l as usize].take() {
                    self.globals[g as usize] = Some(v);
                }
            }
        }
        put_frame(frame);
        r?;
        if let Some(idx) = self.init_fn {
            // Shares the budget refilled above — no second reset, matching
            // the tree-walk's single refill in run_init.
            self.call_proto(idx, Vec::new(), host)?;
        }
        Ok(())
    }

    /// Feed one record handle to `process(record)` — the per-event hot
    /// path; only the `Arc` inside the handle is cloned, never the data.
    pub fn process_ref(
        &mut self,
        host: &mut dyn Host,
        record: RecordRef,
    ) -> Result<(), ScriptError> {
        let Some(idx) = self.process_fn else {
            return Err(ScriptError::MissingEntryPoint("process"));
        };
        self.fuel = self.fuel_budget;
        self.call_proto(idx, vec![Value::Record(record)], host)?;
        Ok(())
    }

    /// Run `end()` if defined. Call after the last record.
    pub fn run_end(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        if let Some(idx) = self.end_fn {
            self.fuel = self.fuel_budget;
            self.call_proto(idx, Vec::new(), host)?;
        }
        Ok(())
    }

    /// Call a named user function with arguments. Does not refill fuel —
    /// same contract as [`crate::Interpreter::call_function`].
    pub fn call_function(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let Some(&idx) = self.script.fn_index.get(name) else {
            return Err(ScriptError::runtime(
                format!("unknown function '{name}'"),
                0,
            ));
        };
        self.call_proto(idx, args, host)
    }

    /// Read a global variable (inspection from tests/tools).
    pub fn global(&self, name: &str) -> Option<Value> {
        let i = self.script.globals.iter().position(|g| g == name)?;
        self.globals[i].clone()
    }

    /// Invoke proto `idx` with `args`, reusing a pooled frame. Performs
    /// the same arity-then-depth check order as the tree-walk (arity
    /// errors win over [`ScriptError::StackOverflow`]).
    fn call_proto(
        &mut self,
        idx: u16,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let script = Arc::clone(&self.script);
        let proto = &script.protos[idx as usize];
        if args.len() != proto.params.len() {
            return Err(ScriptError::runtime(
                format!(
                    "function '{}' takes {} arguments, got {}",
                    proto.name,
                    proto.params.len(),
                    args.len()
                ),
                proto.line,
            ));
        }
        if self.depth >= MAX_DEPTH {
            return Err(ScriptError::StackOverflow);
        }
        let mut frame = take_frame(proto.n_slots as usize);
        // Duplicate parameter names share a slot: later args overwrite.
        for (k, v) in args.into_iter().enumerate() {
            frame.locals[proto.params[k] as usize] = Some(v);
        }
        self.depth += 1;
        let r = self.exec(&script, proto, &mut frame, host);
        self.depth -= 1;
        put_frame(frame);
        r
    }

    /// Read field `name` of `target`, preferring the column-bound fast
    /// path: when the target is a handle into the bound batch, the
    /// transcoded column is read directly instead of dispatching a
    /// name-keyed field lookup. `ColumnBatch` round-trips are
    /// bit-identical to `RecordFields::field`, and the miss error matches
    /// `field_value` exactly. Shared by `FieldGet` and the fused
    /// `LocalFieldGet`/`FieldConstCmpJump` superinstructions.
    fn read_field(
        &self,
        script: &CompiledScript,
        target: &Value,
        name: u16,
        line: u32,
    ) -> Result<Value, ScriptError> {
        if let (Value::Record(RecordRef::Batch { batch, index }), Some(b)) = (target, &self.bound) {
            if Arc::ptr_eq(batch, &b.records) {
                return match b.cols[name as usize] {
                    Some(ci) => Ok(Value::from_field(b.columns.field_at(ci as usize, *index))),
                    None => Err(ScriptError::runtime(
                        format!(
                            "record kind '{}' has no field '{}'",
                            b.columns.kind(),
                            script.names[name as usize]
                        ),
                        line,
                    )),
                };
            }
        }
        field_value(target, script.names[name as usize].as_str(), line)
    }

    /// The dispatch loop. `script` is an `Arc` clone held by the caller so
    /// `proto` can borrow from it while `self` stays mutable.
    fn exec(
        &mut self,
        script: &Arc<CompiledScript>,
        proto: &FnProto,
        frame: &mut Frame,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let code = &proto.code;
        let lines = &proto.lines;
        let mut pc = 0usize;
        loop {
            self.fuel = match self.fuel.checked_sub(1) {
                Some(f) => f,
                None => return Err(ScriptError::OutOfFuel),
            };
            let op = code[pc];
            let line = lines[pc];
            pc += 1;
            match op {
                Op::Const(i) => frame.stack.push(script.consts[i as usize].clone()),
                Op::PushNull => frame.stack.push(Value::Null),
                Op::PushTrue => frame.stack.push(Value::Bool(true)),
                Op::PushFalse => frame.stack.push(Value::Bool(false)),
                Op::Pop => {
                    frame.stack.pop().expect("operand stack underflow");
                }
                Op::LoadLocal { slot, name } => match frame.locals[slot as usize].clone() {
                    Some(v) => frame.stack.push(v),
                    None => return Err(unknown_var(script, name, line)),
                },
                Op::LoadGlobal { slot, name } => match self.globals[slot as usize].clone() {
                    Some(v) => frame.stack.push(v),
                    None => return Err(unknown_var(script, name, line)),
                },
                Op::LoadEither {
                    local,
                    global,
                    name,
                } => {
                    if frame.either_global[local as usize] {
                        // Cached resolution: the local was unbound at the
                        // last probe and globals never unbind, so the
                        // global read cannot fail.
                        let v = self.globals[global as usize]
                            .clone()
                            .expect("cached either-global unbound");
                        frame.stack.push(v);
                    } else if let Some(v) = frame.locals[local as usize].clone() {
                        frame.stack.push(v);
                    } else if let Some(v) = self.globals[global as usize].clone() {
                        frame.either_global[local as usize] = true;
                        frame.stack.push(v);
                    } else {
                        return Err(unknown_var(script, name, line));
                    }
                }
                Op::LoadUndef { name } => return Err(unknown_var(script, name, line)),
                Op::StoreLocal { slot } => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    frame.locals[slot as usize] = Some(v);
                    frame.either_global[slot as usize] = false;
                }
                Op::StoreEither { local, global } => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    if frame.locals[local as usize].is_some() {
                        frame.locals[local as usize] = Some(v);
                    } else if let Some(slot) = self.globals[global as usize].as_mut() {
                        *slot = v;
                    } else {
                        // Implicit creation in the current scope.
                        frame.locals[local as usize] = Some(v);
                        frame.either_global[local as usize] = false;
                    }
                }
                Op::IndexSetLocal { name, .. }
                | Op::IndexSetGlobal { name, .. }
                | Op::IndexSetEither { name, .. }
                | Op::IndexSetUndef { name } => {
                    let idx = frame.stack.pop().expect("operand stack underflow");
                    let v = frame.stack.pop().expect("operand stack underflow");
                    // Index conversion errors win over unknown-variable
                    // errors — that order is observable.
                    let i = index_to_usize(&idx, line)?;
                    let name_str = script.names[name as usize].as_str();
                    let target: Option<&mut Value> = match op {
                        Op::IndexSetLocal { slot, .. } => frame.locals[slot as usize].as_mut(),
                        Op::IndexSetGlobal { slot, .. } => self.globals[slot as usize].as_mut(),
                        Op::IndexSetEither { local, global, .. } => {
                            if frame.locals[local as usize].is_some() {
                                frame.locals[local as usize].as_mut()
                            } else {
                                self.globals[global as usize].as_mut()
                            }
                        }
                        _ => None,
                    };
                    let slot_val = target.ok_or_else(|| {
                        ScriptError::runtime(format!("unknown variable '{name_str}'"), line)
                    })?;
                    store_index(slot_val, name_str, i, v, line)?;
                }
                Op::Add => bin_op(frame, BinOp::Add, line)?,
                Op::Sub => bin_op(frame, BinOp::Sub, line)?,
                Op::Mul => bin_op(frame, BinOp::Mul, line)?,
                Op::Div => bin_op(frame, BinOp::Div, line)?,
                Op::Rem => bin_op(frame, BinOp::Rem, line)?,
                Op::Eq => bin_op(frame, BinOp::Eq, line)?,
                Op::Ne => bin_op(frame, BinOp::Ne, line)?,
                Op::Lt => bin_op(frame, BinOp::Lt, line)?,
                Op::Le => bin_op(frame, BinOp::Le, line)?,
                Op::Gt => bin_op(frame, BinOp::Gt, line)?,
                Op::Ge => bin_op(frame, BinOp::Ge, line)?,
                Op::Neg => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    frame.stack.push(eval_unary(UnOp::Neg, &v, line)?);
                }
                Op::Not => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    frame.stack.push(eval_unary(UnOp::Not, &v, line)?);
                }
                Op::Truthy => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    frame.stack.push(Value::Bool(v.truthy()));
                }
                Op::Jump(t) => pc = t as usize,
                Op::JumpIfFalse(t) => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    if !v.truthy() {
                        pc = t as usize;
                    }
                }
                Op::AndCircuit(t) => {
                    let l = frame.stack.pop().expect("operand stack underflow");
                    if !l.truthy() {
                        frame.stack.push(Value::Bool(false));
                        pc = t as usize;
                    }
                }
                Op::OrCircuit(t) => {
                    let l = frame.stack.pop().expect("operand stack underflow");
                    if l.truthy() {
                        frame.stack.push(Value::Bool(true));
                        pc = t as usize;
                    }
                }
                Op::MakeArray(n) => {
                    let base = frame.stack.len() - n as usize;
                    let items = frame.stack.split_off(base);
                    frame.stack.push(Value::Array(items));
                }
                Op::IndexGet => {
                    let idx = frame.stack.pop().expect("operand stack underflow");
                    let target = frame.stack.pop().expect("operand stack underflow");
                    frame.stack.push(index_value(target, &idx, line)?);
                }
                Op::FieldGet { name } => {
                    let t = frame.stack.pop().expect("operand stack underflow");
                    let v = self.read_field(script, &t, name, line)?;
                    frame.stack.push(v);
                }
                Op::RangeStart => {
                    let v = frame.stack.last().expect("operand stack underflow");
                    if v.as_num().is_none() {
                        return Err(ScriptError::runtime("range start must be numeric", line));
                    }
                }
                Op::RangeOutsideFor => {
                    return Err(ScriptError::runtime(
                        "a range is only valid in 'for … in'",
                        line,
                    ));
                }
                Op::RangeToArray => {
                    let end = frame.stack.pop().expect("operand stack underflow");
                    let start = frame.stack.pop().expect("operand stack underflow");
                    let s = start.as_num().expect("start checked by RangeStart");
                    let e = end
                        .as_num()
                        .ok_or_else(|| ScriptError::runtime("range end must be numeric", line))?;
                    let mut items = Vec::new();
                    let mut x = s;
                    while x < e {
                        // Fuel per element: a huge range runs out of fuel
                        // instead of out of memory.
                        self.fuel = self.fuel.checked_sub(1).ok_or(ScriptError::OutOfFuel)?;
                        items.push(Value::Num(x));
                        x += 1.0;
                    }
                    frame.stack.push(Value::Array(items));
                }
                Op::IterInit { iter, idx } => {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    match v {
                        Value::Array(_) => {
                            frame.locals[iter as usize] = Some(v);
                            frame.locals[idx as usize] = Some(Value::Num(0.0));
                            frame.either_global[iter as usize] = false;
                            frame.either_global[idx as usize] = false;
                        }
                        other => {
                            return Err(ScriptError::runtime(
                                format!("cannot iterate a {}", other.type_name()),
                                line,
                            ))
                        }
                    }
                }
                Op::IterNext { iter, idx, done } => {
                    let i = match &frame.locals[idx as usize] {
                        Some(Value::Num(n)) => *n as usize,
                        _ => unreachable!("corrupt iterator cursor slot"),
                    };
                    let item = match &frame.locals[iter as usize] {
                        Some(Value::Array(a)) => a.get(i).cloned(),
                        _ => unreachable!("corrupt iterator array slot"),
                    };
                    match item {
                        Some(v) => {
                            // One extra unit per yielded element, matching
                            // the tree-walk's per-iteration burn.
                            self.fuel = self.fuel.checked_sub(1).ok_or(ScriptError::OutOfFuel)?;
                            frame.locals[idx as usize] = Some(Value::Num((i + 1) as f64));
                            frame.stack.push(v);
                        }
                        None => pc = done as usize,
                    }
                }
                Op::CallFn { func, argc } => {
                    let callee = &script.protos[func as usize];
                    let argc = argc as usize;
                    // Arity error first, then depth — that order is
                    // observable through which error surfaces.
                    if argc != callee.params.len() {
                        return Err(ScriptError::runtime(
                            format!(
                                "function '{}' takes {} arguments, got {}",
                                callee.name,
                                callee.params.len(),
                                argc
                            ),
                            callee.line,
                        ));
                    }
                    if self.depth >= MAX_DEPTH {
                        return Err(ScriptError::StackOverflow);
                    }
                    let base = frame.stack.len() - argc;
                    let mut callee_frame = take_frame(callee.n_slots as usize);
                    for (k, v) in frame.stack.drain(base..).enumerate() {
                        callee_frame.locals[callee.params[k] as usize] = Some(v);
                    }
                    self.depth += 1;
                    let r = self.exec(script, callee, &mut callee_frame, host);
                    self.depth -= 1;
                    put_frame(callee_frame);
                    frame.stack.push(r?);
                }
                Op::CallBuiltin { builtin, argc } => {
                    let base = frame.stack.len() - argc as usize;
                    let r = dispatch_builtin(builtin, &frame.stack[base..], line, host);
                    frame.stack.truncate(base);
                    frame.stack.push(r?);
                }
                Op::CallUnknown { name } => {
                    return Err(ScriptError::runtime(
                        format!("unknown function '{}'", script.names[name as usize]),
                        line,
                    ));
                }
                Op::Return => return Ok(frame.stack.pop().expect("operand stack underflow")),
                Op::ReturnNull | Op::Halt => return Ok(Value::Null),
                Op::LooseBreak => {
                    return Err(ScriptError::runtime("break/continue outside a loop", line));
                }
                // --- Superinstructions: one dispatch (and one unit of
                // fuel) per fused pattern, same values/errors/lines as
                // the constituent ops.
                Op::LocalFieldGet { slot, name, field } => {
                    let v = match &frame.locals[slot as usize] {
                        Some(rec) => self.read_field(script, rec, field, line)?,
                        None => return Err(unknown_var(script, name, line)),
                    };
                    frame.stack.push(v);
                }
                Op::LocalConstBin {
                    slot,
                    name,
                    cidx,
                    op,
                } => {
                    let v = match &frame.locals[slot as usize] {
                        Some(l) => eval_binary_values(op, l, &script.consts[cidx as usize], line)?,
                        None => return Err(unknown_var(script, name, line)),
                    };
                    frame.stack.push(v);
                }
                Op::CmpJump { op, target } => {
                    let r = frame.stack.pop().expect("operand stack underflow");
                    let l = frame.stack.pop().expect("operand stack underflow");
                    if !eval_binary_values(op, &l, &r, line)?.truthy() {
                        pc = target as usize;
                    }
                }
                Op::FieldConstCmpJump {
                    name,
                    cidx,
                    op,
                    target,
                } => {
                    let t = frame.stack.pop().expect("operand stack underflow");
                    let fv = self.read_field(script, &t, name, line)?;
                    if !eval_binary_values(op, &fv, &script.consts[cidx as usize], line)?.truthy() {
                        pc = target as usize;
                    }
                }
            }
        }
    }
}

fn unknown_var(script: &CompiledScript, name: u16, line: u32) -> ScriptError {
    ScriptError::runtime(
        format!("unknown variable '{}'", script.names[name as usize]),
        line,
    )
}

fn bin_op(frame: &mut Frame, op: BinOp, line: u32) -> Result<(), ScriptError> {
    let r = frame.stack.pop().expect("operand stack underflow");
    let l = frame.stack.pop().expect("operand stack underflow");
    frame.stack.push(eval_binary_values(op, &l, &r, line)?);
    Ok(())
}

impl crate::ScriptEngine for Vm {
    fn run_init(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        Vm::run_init(self, host)
    }

    fn process(&mut self, host: &mut dyn Host, record: RecordRef) -> Result<(), ScriptError> {
        self.process_ref(host, record)
    }

    fn run_end(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        Vm::run_end(self, host)
    }

    fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        self.call_function(name, args, host)
    }

    fn global(&self, name: &str) -> Option<Value> {
        Vm::global(self, name)
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel_budget = fuel;
        self.fuel = fuel;
    }

    fn backend(&self) -> crate::ScriptBackend {
        crate::ScriptBackend::Vm
    }

    fn fuel_budget(&self) -> u64 {
        Vm::fuel_budget(self)
    }

    fn bind_columns(&mut self, records: &Arc<Vec<AnyRecord>>, columns: &Arc<ColumnBatch>) {
        Vm::bind_columns(self, records, columns);
    }

    fn unbind_columns(&mut self) {
        Vm::unbind_columns(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullHost;
    use crate::parser::compile;
    use crate::resolve::compile_program;
    use crate::ScriptEngine;

    fn vm(src: &str) -> Vm {
        Vm::new(compile_program(&compile(src).unwrap()).unwrap())
    }

    #[test]
    fn top_level_locals_promote_to_globals() {
        let mut v = vm("let cut = 30.0; let total = cut * 2;");
        v.run_init(&mut NullHost).unwrap();
        assert_eq!(v.global("cut"), Some(Value::Num(30.0)));
        assert_eq!(v.global("total"), Some(Value::Num(60.0)));
    }

    #[test]
    fn functions_and_loops_compute() {
        let mut v = vm(
            "fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }\nlet x = fib(12);",
        );
        v.run_init(&mut NullHost).unwrap();
        assert_eq!(v.global("x"), Some(Value::Num(144.0)));
    }

    #[test]
    fn for_range_accumulates() {
        let mut v = vm("let t = 0; for i in 0..5 { t = t + i; }");
        v.run_init(&mut NullHost).unwrap();
        assert_eq!(v.global("t"), Some(Value::Num(10.0)));
    }

    #[test]
    fn break_and_continue_route_correctly() {
        let mut v = vm(
            "let t = 0;\nfor i in 0..100 {\n  if i % 2 == 0 { continue; }\n  if i > 8 { break; }\n  t = t + i;\n}",
        );
        v.run_init(&mut NullHost).unwrap();
        // 1 + 3 + 5 + 7 = 16
        assert_eq!(v.global("t"), Some(Value::Num(16.0)));
    }

    #[test]
    fn unknown_variable_is_lazy() {
        // Never executed → no error.
        let mut v = vm("fn f() { return nope; }\nlet x = 1;");
        v.run_init(&mut NullHost).unwrap();
        // Executed → the error carries the right line.
        let err = v.call_function("f", vec![], &mut NullHost).unwrap_err();
        assert_eq!(err, ScriptError::runtime("unknown variable 'nope'", 1));
    }

    #[test]
    fn fuel_exhaustion_stops_infinite_loops() {
        let mut v = vm("while true { }").with_fuel(10_000);
        assert_eq!(v.run_init(&mut NullHost), Err(ScriptError::OutOfFuel));
    }

    #[test]
    fn huge_ranges_hit_fuel_not_memory() {
        let mut v = vm("for i in 0..100000000000000000 { }").with_fuel(50_000);
        assert_eq!(v.run_init(&mut NullHost), Err(ScriptError::OutOfFuel));
    }

    #[test]
    fn arity_error_matches_tree_walk_wording() {
        let mut v = vm("fn f(a, b) { return a + b; }");
        v.run_init(&mut NullHost).unwrap();
        let err = v
            .call_function("f", vec![Value::Num(1.0)], &mut NullHost)
            .unwrap_err();
        assert_eq!(
            err,
            ScriptError::runtime("function 'f' takes 2 arguments, got 1", 1)
        );
    }

    #[test]
    fn deep_recursion_overflows_cleanly() {
        let mut v = vm("fn f(n) { return f(n + 1); }");
        v.run_init(&mut NullHost).unwrap();
        let err = v
            .call_function("f", vec![Value::Num(0.0)], &mut NullHost)
            .unwrap_err();
        assert_eq!(err, ScriptError::StackOverflow);
    }

    fn trade_batch() -> Arc<Vec<AnyRecord>> {
        Arc::new(
            (0..8u64)
                .map(|i| {
                    AnyRecord::Trade(ipa_dataset::TradeRecord {
                        trade_id: i,
                        timestamp_ms: i * 1000,
                        symbol: "IPA".into(),
                        price: 10.0 + i as f64,
                        volume: 100 + i as u32,
                        buyer_initiated: i % 2 == 0,
                    })
                })
                .collect(),
        )
    }

    #[test]
    fn column_binding_matches_row_reads() {
        let src = "let total = 0;\nfn process(t) { total = total + t.price * t.volume; }";
        let records = trade_batch();
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());

        let mut row = vm(src);
        row.run_init(&mut NullHost).unwrap();
        for i in 0..records.len() {
            ScriptEngine::process(
                &mut row,
                &mut NullHost,
                RecordRef::batch(records.clone(), i),
            )
            .unwrap();
        }

        let mut col = vm(src);
        col.run_init(&mut NullHost).unwrap();
        col.bind_columns(&records, &columns);
        for i in 0..records.len() {
            ScriptEngine::process(
                &mut col,
                &mut NullHost,
                RecordRef::batch(records.clone(), i),
            )
            .unwrap();
        }

        assert_eq!(row.global("total"), col.global("total"));
        assert!(matches!(col.global("total"), Some(Value::Num(n)) if n > 0.0));
    }

    #[test]
    fn column_binding_preserves_unknown_field_error() {
        let src = "fn process(t) { let x = t.nope; }";
        let records = trade_batch();
        let columns = Arc::new(ColumnBatch::from_records(&records).unwrap());

        let mut row = vm(src);
        row.run_init(&mut NullHost).unwrap();
        let row_err = ScriptEngine::process(
            &mut row,
            &mut NullHost,
            RecordRef::batch(records.clone(), 0),
        )
        .unwrap_err();

        let mut col = vm(src);
        col.run_init(&mut NullHost).unwrap();
        col.bind_columns(&records, &columns);
        let col_err = ScriptEngine::process(
            &mut col,
            &mut NullHost,
            RecordRef::batch(records.clone(), 0),
        )
        .unwrap_err();

        assert_eq!(row_err, col_err);
    }

    #[test]
    fn stale_binding_falls_back_to_row_reads() {
        let src = "let total = 0;\nfn process(t) { total = total + t.volume; }";
        let records = trade_batch();
        let other = trade_batch();
        let columns = Arc::new(ColumnBatch::from_records(&other).unwrap());

        // Bound to a *different* batch: ptr-identity guard must reject the
        // binding and read through the row path.
        let mut v = vm(src);
        v.run_init(&mut NullHost).unwrap();
        v.bind_columns(&other, &columns);
        for i in 0..records.len() {
            ScriptEngine::process(&mut v, &mut NullHost, RecordRef::batch(records.clone(), i))
                .unwrap();
        }
        let expected: f64 = (0..8).map(|i| 100.0 + i as f64).sum();
        assert_eq!(v.global("total"), Some(Value::Num(expected)));

        v.unbind_columns();
        assert_eq!(v.global("total"), Some(Value::Num(expected)));
    }

    #[test]
    fn frame_pool_survives_part_boundaries() {
        // An engine builds a fresh Vm per part; the frame pool is
        // thread-local, so the second "part" must process without a
        // single new frame allocation.
        let src = "fn helper(x) { return x * 2; }\nfn process(t) { let v = helper(t.volume); }";
        let records = trade_batch();
        let run_part = |records: &Arc<Vec<AnyRecord>>| {
            let mut v = vm(src);
            v.run_init(&mut NullHost).unwrap();
            for i in 0..records.len() {
                ScriptEngine::process(&mut v, &mut NullHost, RecordRef::batch(records.clone(), i))
                    .unwrap();
            }
        };
        run_part(&records); // warm the pool
        let before = frame_allocations();
        run_part(&records); // a brand-new Vm — same thread, same pool
        assert_eq!(
            frame_allocations(),
            before,
            "second part allocated fresh frames instead of reusing the pool"
        );
    }

    #[test]
    fn load_either_cache_respects_shadowing() {
        // `x` is global; `process` reads it (caching the global
        // resolution), mutates it through the cached path, then binds a
        // shadowing local `x` mid-body — later reads must see the local,
        // and the next call must start on the global again.
        let src = "let x = 10;\nlet a = 0;\nlet b = 0;\nfn process(t) {\n  a = a + x;\n  if t.volume > 103 { x = x + 1; let x = 1000; b = b + x; }\n}";
        let mut v = vm(src);
        v.run_init(&mut NullHost).unwrap();
        let records = trade_batch();
        for i in 0..6 {
            ScriptEngine::process(&mut v, &mut NullHost, RecordRef::batch(records.clone(), i))
                .unwrap();
        }
        // Records 0..=3 (volumes 100..=103) skip the branch: a = 4 × 10.
        // Record 4 reads x=10 (a=50) then bumps the global to 11 and adds
        // the shadowed local (b=1000). Record 5 reads the *updated*
        // global 11 (a=61), bumps it to 12, adds the local again (b=2000).
        assert_eq!(v.global("x"), Some(Value::Num(12.0)));
        assert_eq!(v.global("a"), Some(Value::Num(61.0)));
        assert_eq!(v.global("b"), Some(Value::Num(2000.0)));
    }
}

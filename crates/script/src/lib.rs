//! `ipa-script` — IPAScript, the analysis scripting language.
//!
//! The paper's reference implementation ships user analysis code to the grid
//! as Java classes or [PNUTS] scripts, reloaded on the fly between runs
//! (§3.5, §3.6). IPAScript is the Rust equivalent: a small, dynamically
//! typed language compiled to an AST and interpreted by each analysis
//! engine. A script defines up to three entry points:
//!
//! ```text
//! fn init() { h1("/higgs/mass", 60, 0.0, 240.0); }      // book plots
//! fn process(event) {                                    // per record
//!     let m = event.bb_mass;
//!     if m != null { fill("/higgs/mass", m); }
//! }
//! fn end() { log("done"); }                              // after last record
//! ```
//!
//! Scripts interact with the outside world only through the [`Host`]
//! interface (histogram booking/filling, logging), which the engine backs
//! with an AIDA [`ipa_aida::Tree`] — exactly the paper's AIDA pattern.
//! The interpreter is *fuel-limited*: a runaway loop in user code aborts
//! with [`ScriptError::OutOfFuel`] instead of wedging an engine, a
//! requirement for an interactive service that executes untrusted code.
//!
//! Language summary: `let`, assignment, `if`/`else`, `while`, `for x in
//! a..b`, `fn`, `return`, `break`, `continue`; values are null, booleans,
//! 64-bit floats, strings, and arrays; operators `+ - * / %`,
//! comparisons, `&& || !`, indexing, calls, and `record.field` access.
//!
//! [PNUTS]: https://en.wikipedia.org/wiki/Pnuts

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod stdlib;
pub mod value;

pub use ast::Program;
pub use error::ScriptError;
pub use interp::{AidaHost, Host, Interpreter, NullHost, DEFAULT_FUEL};
pub use parser::compile;
pub use value::Value;

/// Convenience: compile a script and run it against a host as an analysis —
/// `init()`, `process(record)` per record, then `end()`.
pub fn run_analysis(
    source: &str,
    records: &[ipa_dataset::AnyRecord],
    host: &mut dyn Host,
) -> Result<(), ScriptError> {
    let program = compile(source)?;
    let mut interp = Interpreter::new(&program);
    interp.run_init(host)?;
    for r in records {
        interp.process_record(host, r)?;
    }
    interp.run_end(host)?;
    Ok(())
}

//! `ipa-script` — IPAScript, the analysis scripting language.
//!
//! The paper's reference implementation ships user analysis code to the grid
//! as Java classes or [PNUTS] scripts, reloaded on the fly between runs
//! (§3.5, §3.6). IPAScript is the Rust equivalent: a small, dynamically
//! typed language compiled to an AST and executed by each analysis
//! engine. A script defines up to three entry points:
//!
//! ```text
//! fn init() { h1("/higgs/mass", 60, 0.0, 240.0); }      // book plots
//! fn process(event) {                                    // per record
//!     let m = event.bb_mass;
//!     if m != null { fill("/higgs/mass", m); }
//! }
//! fn end() { log("done"); }                              // after last record
//! ```
//!
//! Scripts interact with the outside world only through the [`Host`]
//! interface (histogram booking/filling, logging), which the engine backs
//! with an AIDA [`ipa_aida::Tree`] — exactly the paper's AIDA pattern.
//! Execution is *fuel-limited*: a runaway loop in user code aborts with
//! [`ScriptError::OutOfFuel`] instead of wedging an engine, a requirement
//! for an interactive service that executes untrusted code.
//!
//! Two backends execute the same AST behind the [`ScriptEngine`] trait:
//!
//! - [`vm::Vm`] (default): a compile-to-bytecode stack VM. Names resolve
//!   to flat slots at compile time ([`resolve::compile_program`]), so the
//!   per-record hot path never hashes a string.
//! - [`Interpreter`]: the original tree-walk, retained as the semantic
//!   oracle for differential testing and selectable via
//!   [`ScriptBackend::Interp`] / `IPA_SCRIPT_BACKEND=interp`.
//!
//! Language summary: `let`, assignment, `if`/`else`, `while`, `for x in
//! a..b`, `fn`, `return`, `break`, `continue`; values are null, booleans,
//! 64-bit floats, strings, and arrays; operators `+ - * / %`,
//! comparisons, `&& || !`, indexing, calls, and `record.field` access.
//!
//! [PNUTS]: https://en.wikipedia.org/wiki/Pnuts

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod error;
pub mod fuse;
pub mod interp;
pub mod kernel;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod stdlib;
pub mod value;
pub mod vm;

pub use ast::Program;
pub use error::ScriptError;
pub use interp::{AidaHost, Host, Interpreter, NullHost, DEFAULT_FUEL};
pub use kernel::{run_fused, BatchKernel};
pub use parser::compile;
pub use stdlib::Builtin;
pub use value::{RecordRef, Value};
pub use vm::Vm;

/// Which execution backend runs IPAScript.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScriptBackend {
    /// The original AST tree-walk ([`Interpreter`]) — the semantic oracle.
    Interp,
    /// The bytecode VM ([`vm::Vm`]) — compile-time name resolution, flat
    /// slot frames, and a dense dispatch loop. The default.
    #[default]
    Vm,
}

impl ScriptBackend {
    /// Read the backend from `IPA_SCRIPT_BACKEND` (`interp`/`vm`),
    /// defaulting to [`ScriptBackend::Vm`] when unset or unrecognized.
    pub fn from_env() -> Self {
        match std::env::var("IPA_SCRIPT_BACKEND") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "interp" | "interpreter" | "ast" | "tree" => ScriptBackend::Interp,
                "vm" | "bytecode" => ScriptBackend::Vm,
                _ => ScriptBackend::default(),
            },
            Err(_) => ScriptBackend::default(),
        }
    }
}

impl std::fmt::Display for ScriptBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptBackend::Interp => write!(f, "interp"),
            ScriptBackend::Vm => write!(f, "vm"),
        }
    }
}

/// How aggressively the bytecode pipeline fuses ops. The tree-walk
/// interpreter ignores this knob; the unfused VM (`Off`) and the
/// interpreter stay available as differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScriptFusion {
    /// No fusion: the exact per-op bytecode stream the resolver emits.
    Off,
    /// Peephole superinstructions only ([`fuse::fuse`]): dominant multi-op
    /// patterns collapse into one dispatch, fuel charged per dispatch.
    Super,
    /// Superinstructions plus the [`BatchKernel`]: eligible `process`
    /// bodies execute vectorized over `ColumnBatch` slices, falling back
    /// to the per-record VM loop otherwise. The default.
    #[default]
    Kernel,
}

impl ScriptFusion {
    /// Read the fusion level from `IPA_SCRIPT_FUSION` (`off`/`super`/
    /// `kernel`), defaulting to [`ScriptFusion::Kernel`] when unset or
    /// unrecognized.
    pub fn from_env() -> Self {
        match std::env::var("IPA_SCRIPT_FUSION") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "off" | "none" => ScriptFusion::Off,
                "super" | "superinstruction" | "peephole" => ScriptFusion::Super,
                "kernel" | "batch" => ScriptFusion::Kernel,
                _ => ScriptFusion::default(),
            },
            Err(_) => ScriptFusion::default(),
        }
    }
}

impl std::fmt::Display for ScriptFusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptFusion::Off => write!(f, "off"),
            ScriptFusion::Super => write!(f, "super"),
            ScriptFusion::Kernel => write!(f, "kernel"),
        }
    }
}

/// A running script: either backend, same observable behavior. The engine
/// holds one per analysis and drives it through the standard lifecycle —
/// `run_init` once, `process` per record, `run_end` after the last one.
pub trait ScriptEngine: Send {
    /// Run top-level statements then `init()` if defined. Call once per run.
    fn run_init(&mut self, host: &mut dyn Host) -> Result<(), ScriptError>;
    /// Feed one record handle to `process(record)` — the per-event hot path.
    fn process(&mut self, host: &mut dyn Host, record: RecordRef) -> Result<(), ScriptError>;
    /// Run `end()` if defined. Call after the last record.
    fn run_end(&mut self, host: &mut dyn Host) -> Result<(), ScriptError>;
    /// Call a named user function with arguments (does not refill fuel).
    fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError>;
    /// Read a global variable (inspection from tests/tools).
    fn global(&self, name: &str) -> Option<Value>;
    /// Override the per-entry-point fuel budget.
    fn set_fuel(&mut self, fuel: u64);
    /// Which backend this engine is.
    fn backend(&self) -> ScriptBackend;
    /// Offer a columnar transcode of the part about to stream through
    /// `process` — `records` is the row batch the upcoming
    /// `RecordRef::Batch` handles point into, `columns` its transcode.
    /// Backends that cannot exploit columns ignore the call (the default);
    /// the bytecode VM resolves field names to column indices once here.
    fn bind_columns(
        &mut self,
        records: &std::sync::Arc<Vec<ipa_dataset::AnyRecord>>,
        columns: &std::sync::Arc<ipa_dataset::ColumnBatch>,
    ) {
        let _ = (records, columns);
    }
    /// Drop any column binding (row-path field reads resume).
    fn unbind_columns(&mut self) {}
    /// The per-entry-point fuel budget currently in force. The batch
    /// kernel uses this to prove fuel exhaustion is unobservable before
    /// skipping per-op accounting.
    fn fuel_budget(&self) -> u64 {
        DEFAULT_FUEL
    }
}

/// Build a script engine for `program` using the requested backend and
/// fusion level.
///
/// Compilation to bytecode can fail only on pathological inputs (more than
/// 65 535 constants, identifiers, or functions); the tree-walk never fails
/// to construct. Fusion applies to the VM only: `Super` and `Kernel` run
/// the [`fuse`] peephole pass over the compiled code (the kernel itself is
/// constructed by the caller via [`BatchKernel::compile`]); `Off` leaves
/// the resolver's op stream untouched.
pub fn engine_for(
    program: &Program,
    backend: ScriptBackend,
    fusion: ScriptFusion,
) -> Result<Box<dyn ScriptEngine>, ScriptError> {
    match backend {
        ScriptBackend::Interp => Ok(Box::new(Interpreter::new(program))),
        ScriptBackend::Vm => {
            let mut compiled = resolve::compile_program(program)?;
            if fusion != ScriptFusion::Off {
                fuse::fuse(&mut compiled);
            }
            Ok(Box::new(Vm::new(compiled)))
        }
    }
}

/// Convenience: compile a script and run it against a host as an analysis —
/// `init()`, `process(record)` per record, then `end()`. Uses the backend
/// selected by `IPA_SCRIPT_BACKEND` (default: the bytecode VM) and the
/// fusion level from `IPA_SCRIPT_FUSION`.
pub fn run_analysis(
    source: &str,
    records: &[ipa_dataset::AnyRecord],
    host: &mut dyn Host,
) -> Result<(), ScriptError> {
    let program = compile(source)?;
    let mut engine = engine_for(&program, ScriptBackend::from_env(), ScriptFusion::from_env())?;
    engine.run_init(host)?;
    for r in records {
        engine.process(host, RecordRef::one(std::sync::Arc::new(r.clone())))?;
    }
    engine.run_end(host)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_the_vm() {
        assert_eq!(ScriptBackend::default(), ScriptBackend::Vm);
        assert_eq!(ScriptBackend::Vm.to_string(), "vm");
        assert_eq!(ScriptBackend::Interp.to_string(), "interp");
    }

    #[test]
    fn default_fusion_is_the_kernel() {
        assert_eq!(ScriptFusion::default(), ScriptFusion::Kernel);
        assert_eq!(ScriptFusion::Off.to_string(), "off");
        assert_eq!(ScriptFusion::Super.to_string(), "super");
        assert_eq!(ScriptFusion::Kernel.to_string(), "kernel");
    }

    #[test]
    fn fusion_serde_round_trips() {
        for f in [ScriptFusion::Off, ScriptFusion::Super, ScriptFusion::Kernel] {
            let json = serde_json::to_string(&f).unwrap();
            assert_eq!(json, format!("\"{f}\""));
            assert_eq!(serde_json::from_str::<ScriptFusion>(&json).unwrap(), f);
        }
    }

    #[test]
    fn engine_for_builds_both_backends() {
        let p = compile("fn process(e) { }").unwrap();
        let interp = engine_for(&p, ScriptBackend::Interp, ScriptFusion::Off).unwrap();
        let vm = engine_for(&p, ScriptBackend::Vm, ScriptFusion::Kernel).unwrap();
        assert_eq!(interp.backend(), ScriptBackend::Interp);
        assert_eq!(vm.backend(), ScriptBackend::Vm);
    }
}

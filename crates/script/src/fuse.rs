//! Superinstruction fusion: a peephole pass over compiled bytecode.
//!
//! The resolver emits one [`Op`] per AST step; a handful of multi-op
//! shapes dominate per-record analysis bodies (`rec.field` reads, guard
//! comparisons against constants, compare-and-branch). This pass rewrites
//! those windows into single superinstructions so the VM pays one
//! dispatch — and one unit of fuel — per pattern instead of per op. Fuel
//! accounting therefore becomes per-*dispatch*: a fused loop body burns
//! fuel proportional to its backedges, not its source op count. Runaway
//! loops still exhaust fuel; exact fuel counts across fusion levels
//! diverge by design, exactly as they already do between the tree-walk
//! and the VM.
//!
//! Safety rules — a window is fused only when:
//!
//! 1. **No jump lands strictly inside it.** A target equal to the window
//!    start is fine (the fused op inherits it); a target past the end is
//!    fine (the next instruction inherits it). Anything in between would
//!    vanish.
//! 2. **Every constituent op carries the same source line**, so a fused
//!    op reports runtime errors on exactly the line the unfused stream
//!    would have.
//!
//! After emission every absolute jump target is remapped through the
//! old-pc → new-pc table. With fusion off this module is never invoked
//! and the op stream is byte-for-byte the resolver's output.

use crate::ast::BinOp;
use crate::bytecode::{CompiledScript, FnProto, Op};

/// Fuse every function body (and the top level) of `script` in place.
pub fn fuse(script: &mut CompiledScript) {
    fuse_proto(&mut script.top_level);
    for proto in &mut script.protos {
        fuse_proto(proto);
    }
}

/// The bare stack binop encoded by `op`, if any (`And`/`Or` compile to
/// short-circuit jumps, never to bare ops).
fn bare_binop(op: Op) -> Option<BinOp> {
    Some(match op {
        Op::Add => BinOp::Add,
        Op::Sub => BinOp::Sub,
        Op::Mul => BinOp::Mul,
        Op::Div => BinOp::Div,
        Op::Rem => BinOp::Rem,
        _ => return cmp_binop(op),
    })
}

/// The comparison binop encoded by `op`, if any.
fn cmp_binop(op: Op) -> Option<BinOp> {
    Some(match op {
        Op::Eq => BinOp::Eq,
        Op::Ne => BinOp::Ne,
        Op::Lt => BinOp::Lt,
        Op::Le => BinOp::Le,
        Op::Gt => BinOp::Gt,
        Op::Ge => BinOp::Ge,
        _ => return None,
    })
}

/// Every absolute jump target in `code` (positions that must survive).
fn jump_targets(code: &[Op]) -> Vec<bool> {
    let mut targeted = vec![false; code.len() + 1];
    for op in code {
        match *op {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::AndCircuit(t)
            | Op::OrCircuit(t)
            | Op::IterNext { done: t, .. } => targeted[t as usize] = true,
            _ => {}
        }
    }
    targeted
}

fn fuse_proto(proto: &mut FnProto) {
    let code = &proto.code;
    let lines = &proto.lines;
    let targeted = jump_targets(code);

    // A window [s, s+len) is fusable when no jump lands strictly inside
    // it and all its ops share one source line.
    let window_ok = |s: usize, len: usize| -> bool {
        s + len <= code.len()
            && !(s + 1..s + len).any(|i| targeted[i])
            && (s + 1..s + len).all(|i| lines[i] == lines[s])
    };
    // `FieldGet + Const + <cmp> + JumpIfFalse` starting at `s`?
    let guard_at = |s: usize| -> Option<(u16, u16, BinOp, u32)> {
        match (
            code.get(s),
            code.get(s + 1),
            code.get(s + 2).copied().and_then(cmp_binop),
            code.get(s + 3),
        ) {
            (
                Some(&Op::FieldGet { name }),
                Some(&Op::Const(cidx)),
                Some(op),
                Some(&Op::JumpIfFalse(target)),
            ) if window_ok(s, 4) => Some((name, cidx, op, target)),
            _ => None,
        }
    };

    let mut new_code: Vec<Op> = Vec::with_capacity(code.len());
    let mut new_lines: Vec<u32> = Vec::with_capacity(code.len());
    let mut map: Vec<u32> = vec![0; code.len() + 1];

    let mut i = 0;
    while i < code.len() {
        let new_pc = new_code.len() as u32;
        // Interior positions of a fused window are never jump targets
        // (checked above); map them to the fused op defensively.
        let (op, len) = fused_at(code, i, &window_ok, &guard_at);
        for slot in &mut map[i..i + len] {
            *slot = new_pc;
        }
        new_code.push(op);
        new_lines.push(lines[i]);
        i += len;
    }
    map[code.len()] = new_code.len() as u32;

    // Remap every absolute target through the old-pc → new-pc table.
    for op in &mut new_code {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::AndCircuit(t)
            | Op::OrCircuit(t)
            | Op::IterNext { done: t, .. }
            | Op::CmpJump { target: t, .. }
            | Op::FieldConstCmpJump { target: t, .. } => *t = map[*t as usize],
            _ => {}
        }
    }

    proto.code = new_code;
    proto.lines = new_lines;
}

/// The (possibly fused) op starting at `i` and how many source ops it
/// consumes. Longest profitable pattern wins, with one lookahead
/// exception: a `LoadLocal` directly ahead of a 4-op guard window stays
/// unfused so the guard can take the bigger fusion.
fn fused_at(
    code: &[Op],
    i: usize,
    window_ok: &dyn Fn(usize, usize) -> bool,
    guard_at: &dyn Fn(usize) -> Option<(u16, u16, BinOp, u32)>,
) -> (Op, usize) {
    if let Some((name, cidx, op, target)) = guard_at(i) {
        return (
            Op::FieldConstCmpJump {
                name,
                cidx,
                op,
                target,
            },
            4,
        );
    }
    if let Op::LoadLocal { slot, name } = code[i] {
        if guard_at(i + 1).is_none() {
            if let (Some(&Op::Const(cidx)), Some(op)) = (
                code.get(i + 1),
                code.get(i + 2).copied().and_then(bare_binop),
            ) {
                if window_ok(i, 3) {
                    return (
                        Op::LocalConstBin {
                            slot,
                            name,
                            cidx,
                            op,
                        },
                        3,
                    );
                }
            }
            if let Some(&Op::FieldGet { name: field }) = code.get(i + 1) {
                if window_ok(i, 2) {
                    return (Op::LocalFieldGet { slot, name, field }, 2);
                }
            }
        }
    }
    if let Some(op) = cmp_binop(code[i]) {
        if let Some(&Op::JumpIfFalse(target)) = code.get(i + 1) {
            if window_ok(i, 2) {
                return (Op::CmpJump { op, target }, 2);
            }
        }
    }
    (code[i], 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::compile;
    use crate::resolve::compile_program;

    fn fused(src: &str) -> CompiledScript {
        let mut s = compile_program(&compile(src).unwrap()).unwrap();
        fuse(&mut s);
        s
    }

    fn proc_code(s: &CompiledScript) -> &[Op] {
        let idx = s.fn_index["process"];
        &s.protos[idx as usize].code
    }

    #[test]
    fn guard_shape_becomes_field_const_cmp_jump() {
        let s = fused("fn process(e) { if e.n_btags >= 2 { log(\"hi\"); } }");
        let code = proc_code(&s);
        assert!(
            code.iter()
                .any(|op| matches!(op, Op::FieldConstCmpJump { op: BinOp::Ge, .. })),
            "expected a fused guard in {code:?}"
        );
        // The LoadLocal ahead of the guard stays unfused.
        assert!(code.iter().any(|op| matches!(op, Op::LoadLocal { .. })));
    }

    #[test]
    fn local_field_reads_fuse() {
        let s = fused("fn process(e) { let m = e.bb_mass; }");
        assert!(proc_code(&s)
            .iter()
            .any(|op| matches!(op, Op::LocalFieldGet { .. })));
    }

    #[test]
    fn local_const_binop_fuses() {
        let s = fused("fn process(e) { let m = 1; let k = m + 2; }");
        assert!(proc_code(&s)
            .iter()
            .any(|op| matches!(op, Op::LocalConstBin { op: BinOp::Add, .. })));
    }

    #[test]
    fn compare_and_branch_fuses() {
        let s = fused("fn process(e) { let m = e.x; if m != null { log(\"y\"); } }");
        assert!(proc_code(&s)
            .iter()
            .any(|op| matches!(op, Op::CmpJump { op: BinOp::Ne, .. })));
    }

    #[test]
    fn jump_targets_survive_remapping() {
        // A while loop whose body contains fusable windows: the backedge
        // and exit targets must still point at real instructions.
        let src = "fn process(e) {\n  let i = 0;\n  while i < 3 { i = i + 1; }\n}";
        let s = fused(src);
        let code = proc_code(&s);
        for op in code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::CmpJump { target: t, .. } = op {
                assert!((*t as usize) <= code.len(), "target {t} out of range");
            }
        }
        // Execute it to prove the rewritten control flow is sound.
        let mut vm = crate::vm::Vm::new(s);
        let mut host = crate::interp::NullHost;
        vm.run_init(&mut host).unwrap();
        use crate::ScriptEngine;
        vm.process(
            &mut host,
            crate::value::RecordRef::one(std::sync::Arc::new(ipa_dataset::AnyRecord::Dna(
                ipa_dataset::DnaRead {
                    read_id: 0,
                    sample: 1,
                    bases: "ACGT".into(),
                    quality: 1.0,
                },
            ))),
        )
        .unwrap();
    }

    #[test]
    fn mixed_line_windows_do_not_fuse() {
        // The guard spans two source lines: FieldGet on line 2, the
        // comparison pieces on line 3 — no 4-op fusion may form.
        let src = "fn process(e) { if e.\nx\n>= 2 { log(\"z\"); } }";
        let s = fused(src);
        assert!(!proc_code(&s)
            .iter()
            .any(|op| matches!(op, Op::FieldConstCmpJump { .. })));
    }
}

//! Script compilation and runtime errors.

use std::fmt;

/// Errors from compiling or running IPAScript code.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Lexer/parser error with source position.
    Syntax {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Description.
        message: String,
    },
    /// Runtime error (type error, unknown name, bad argument …).
    Runtime {
        /// Description.
        message: String,
        /// Line of the offending expression when known.
        line: u32,
    },
    /// The fuel budget was exhausted — almost certainly an unbounded loop
    /// in user code.
    OutOfFuel,
    /// Call stack exceeded the recursion limit.
    StackOverflow,
    /// The script does not define a required entry point.
    MissingEntryPoint(&'static str),
}

impl ScriptError {
    /// Build a runtime error.
    pub fn runtime(message: impl Into<String>, line: u32) -> Self {
        ScriptError::Runtime {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Syntax { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            ScriptError::Runtime { message, line } => {
                write!(f, "runtime error at line {line}: {message}")
            }
            ScriptError::OutOfFuel => write!(f, "script exceeded its execution budget"),
            ScriptError::StackOverflow => write!(f, "script recursion too deep"),
            ScriptError::MissingEntryPoint(name) => {
                write!(f, "script does not define required function '{name}'")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

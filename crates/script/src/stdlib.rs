//! Builtin functions: math, strings, arrays, and the analysis host calls.

use ipa_dataset::RecordFields;

use crate::error::ScriptError;
use crate::interp::Host;
use crate::value::Value;

fn want_num(v: &Value, what: &str, line: u32) -> Result<f64, ScriptError> {
    v.as_num().ok_or_else(|| {
        ScriptError::runtime(
            format!("{what} must be numeric, got {}", v.type_name()),
            line,
        )
    })
}

fn want_str<'a>(v: &'a Value, what: &str, line: u32) -> Result<&'a str, ScriptError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(ScriptError::runtime(
            format!("{what} must be a string, got {}", other.type_name()),
            line,
        )),
    }
}

fn arity(
    name: &str,
    args: &[Value],
    expect: std::ops::RangeInclusive<usize>,
    line: u32,
) -> Result<(), ScriptError> {
    if expect.contains(&args.len()) {
        Ok(())
    } else {
        Err(ScriptError::runtime(
            format!(
                "{name}() takes {}..{} arguments, got {}",
                expect.start(),
                expect.end(),
                args.len()
            ),
            line,
        ))
    }
}

/// Try to dispatch a builtin. Returns `None` when `name` is not a builtin so
/// the interpreter can fall back to user functions.
pub fn call_builtin(
    name: &str,
    args: &[Value],
    line: u32,
    host: &mut dyn Host,
) -> Option<Result<Value, ScriptError>> {
    Some(match name {
        // ------------------------------------------------------- math ----
        "sqrt" | "abs" | "ln" | "log10" | "exp" | "sin" | "cos" | "tan" | "floor" | "ceil"
        | "round" => (|| {
            arity(name, args, 1..=1, line)?;
            let x = want_num(&args[0], "argument", line)?;
            let y = match name {
                "sqrt" => x.sqrt(),
                "abs" => x.abs(),
                "ln" => x.ln(),
                "log10" => x.log10(),
                "exp" => x.exp(),
                "sin" => x.sin(),
                "cos" => x.cos(),
                "tan" => x.tan(),
                "floor" => x.floor(),
                "ceil" => x.ceil(),
                "round" => x.round(),
                _ => unreachable!(),
            };
            Ok(Value::Num(y))
        })(),
        "pow" | "atan2" | "min" | "max" => (|| {
            arity(name, args, 2..=2, line)?;
            let a = want_num(&args[0], "argument", line)?;
            let b = want_num(&args[1], "argument", line)?;
            let y = match name {
                "pow" => a.powf(b),
                "atan2" => a.atan2(b),
                "min" => a.min(b),
                "max" => a.max(b),
                _ => unreachable!(),
            };
            Ok(Value::Num(y))
        })(),
        "pi" => (|| {
            arity(name, args, 0..=0, line)?;
            Ok(Value::Num(std::f64::consts::PI))
        })(),
        // ------------------------------------------------ conversions ----
        "num" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(match &args[0] {
                Value::Num(n) => Value::Num(*n),
                Value::Bool(b) => Value::Num(if *b { 1.0 } else { 0.0 }),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Num)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            })
        })(),
        "str" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(format!("{}", args[0])))
        })(),
        "is_null" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Bool(matches!(args[0], Value::Null)))
        })(),
        // ------------------------------------------------ strings/arrays --
        "len" => (|| {
            arity(name, args, 1..=1, line)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Num(s.chars().count() as f64)),
                Value::Array(a) => Ok(Value::Num(a.len() as f64)),
                other => Err(ScriptError::runtime(
                    format!("len() needs a string or array, got {}", other.type_name()),
                    line,
                )),
            }
        })(),
        "substr" => (|| {
            arity(name, args, 3..=3, line)?;
            let s = want_str(&args[0], "substr() target", line)?;
            let start = want_num(&args[1], "substr() start", line)? as usize;
            let n = want_num(&args[2], "substr() length", line)? as usize;
            let out: String = s.chars().skip(start).take(n).collect();
            Ok(Value::Str(out))
        })(),
        "contains" => (|| {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "contains() target", line)?;
            let sub = want_str(&args[1], "contains() pattern", line)?;
            Ok(Value::Bool(s.contains(sub)))
        })(),
        "count_matches" => (|| {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "count_matches() target", line)?;
            let sub = want_str(&args[1], "count_matches() pattern", line)?;
            if sub.is_empty() || sub.len() > s.len() {
                return Ok(Value::Num(0.0));
            }
            // Overlapping count (matches DnaRead::count_motif semantics).
            let (sb, mb) = (s.as_bytes(), sub.as_bytes());
            let c = (0..=sb.len() - mb.len())
                .filter(|&i| &sb[i..i + mb.len()] == mb)
                .count();
            Ok(Value::Num(c as f64))
        })(),
        "upper" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "upper() target", line)?.to_uppercase(),
            ))
        })(),
        "lower" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "lower() target", line)?.to_lowercase(),
            ))
        })(),
        "append" => (|| {
            arity(name, args, 2..=2, line)?;
            match &args[0] {
                Value::Array(a) => {
                    let mut out = a.clone();
                    out.push(args[1].clone());
                    Ok(Value::Array(out))
                }
                other => Err(ScriptError::runtime(
                    format!("append() needs an array, got {}", other.type_name()),
                    line,
                )),
            }
        })(),
        // ---------------------------------------------------- records ----
        "field" => (|| {
            arity(name, args, 2..=2, line)?;
            let Value::Record(r) = &args[0] else {
                return Err(ScriptError::runtime(
                    format!("field() needs a record, got {}", args[0].type_name()),
                    line,
                ));
            };
            let fname = want_str(&args[1], "field() name", line)?;
            match r.field(fname) {
                Some(f) => Ok(Value::from_field(f)),
                None => Err(ScriptError::runtime(
                    format!("record kind '{}' has no field '{fname}'", r.kind()),
                    line,
                )),
            }
        })(),
        "fields" => (|| {
            arity(name, args, 1..=1, line)?;
            let Value::Record(r) = &args[0] else {
                return Err(ScriptError::runtime(
                    "fields() needs a record".to_string(),
                    line,
                ));
            };
            Ok(Value::Array(
                r.field_names()
                    .iter()
                    .map(|n| Value::Str(n.to_string()))
                    .collect(),
            ))
        })(),
        // ------------------------------------------------------- host ----
        "h1" => (|| {
            arity(name, args, 4..=4, line)?;
            let path = want_str(&args[0], "h1() path", line)?;
            let nbins = want_num(&args[1], "h1() nbins", line)? as usize;
            let lo = want_num(&args[2], "h1() lo", line)?;
            let hi = want_num(&args[3], "h1() hi", line)?;
            host.book_h1(path, nbins, lo, hi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "h2" => (|| {
            arity(name, args, 7..=7, line)?;
            let path = want_str(&args[0], "h2() path", line)?;
            let nx = want_num(&args[1], "h2() nx", line)? as usize;
            let xlo = want_num(&args[2], "h2() xlo", line)?;
            let xhi = want_num(&args[3], "h2() xhi", line)?;
            let ny = want_num(&args[4], "h2() ny", line)? as usize;
            let ylo = want_num(&args[5], "h2() ylo", line)?;
            let yhi = want_num(&args[6], "h2() yhi", line)?;
            host.book_h2(path, nx, xlo, xhi, ny, ylo, yhi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "prof" => (|| {
            arity(name, args, 4..=4, line)?;
            let path = want_str(&args[0], "prof() path", line)?;
            let nbins = want_num(&args[1], "prof() nbins", line)? as usize;
            let lo = want_num(&args[2], "prof() lo", line)?;
            let hi = want_num(&args[3], "prof() hi", line)?;
            host.book_profile(path, nbins, lo, hi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "fill" => (|| {
            arity(name, args, 2..=3, line)?;
            let path = want_str(&args[0], "fill() path", line)?;
            let x = want_num(&args[1], "fill() x", line)?;
            let w = if args.len() == 3 {
                want_num(&args[2], "fill() weight", line)?
            } else {
                1.0
            };
            host.fill1(path, x, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "fill2" => (|| {
            arity(name, args, 3..=4, line)?;
            let path = want_str(&args[0], "fill2() path", line)?;
            let x = want_num(&args[1], "fill2() x", line)?;
            let y = want_num(&args[2], "fill2() y", line)?;
            let w = if args.len() == 4 {
                want_num(&args[3], "fill2() weight", line)?
            } else {
                1.0
            };
            host.fill2(path, x, y, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "pfill" => (|| {
            arity(name, args, 3..=4, line)?;
            let path = want_str(&args[0], "pfill() path", line)?;
            let x = want_num(&args[1], "pfill() x", line)?;
            let y = want_num(&args[2], "pfill() y", line)?;
            let w = if args.len() == 4 {
                want_num(&args[3], "pfill() weight", line)?
            } else {
                1.0
            };
            host.fill_profile(path, x, y, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "log" => (|| {
            arity(name, args, 1..=1, line)?;
            host.log(&format!("{}", args[0]));
            Ok(Value::Null)
        })(),
        "cloud1" => (|| {
            arity(name, args, 1..=1, line)?;
            let path = want_str(&args[0], "cloud1() path", line)?;
            host.book_cloud1(path)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "tuple" => (|| {
            arity(name, args, 2..=2, line)?;
            let path = want_str(&args[0], "tuple() path", line)?;
            let cols_text = want_str(&args[1], "tuple() columns", line)?;
            let cols: Vec<&str> = cols_text.split(',').map(str::trim).collect();
            if cols.iter().any(|c| c.is_empty()) {
                return Err(ScriptError::runtime(
                    "tuple() columns must be non-empty",
                    line,
                ));
            }
            host.book_tuple(path, &cols)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "tfill" => (|| {
            arity(name, args, 2..=17, line)?;
            let path = want_str(&args[0], "tfill() path", line)?;
            let mut row = Vec::with_capacity(args.len() - 1);
            for v in &args[1..] {
                row.push(want_num(v, "tfill() value", line)?);
            }
            host.fill_tuple(path, &row)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        "cfill" => (|| {
            arity(name, args, 2..=3, line)?;
            let path = want_str(&args[0], "cfill() path", line)?;
            let x = want_num(&args[1], "cfill() x", line)?;
            let w = if args.len() == 3 {
                want_num(&args[2], "cfill() weight", line)?
            } else {
                1.0
            };
            host.fill_cloud1(path, x, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        })(),
        // ----------------------------------------------- array helpers ---
        "sum" | "avg" | "min_of" | "max_of" => (|| {
            arity(name, args, 1..=1, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    format!("{name}() needs an array, got {}", args[0].type_name()),
                    line,
                ));
            };
            let mut nums = Vec::with_capacity(a.len());
            for v in a {
                nums.push(want_num(v, "array element", line)?);
            }
            if nums.is_empty() {
                return Ok(match name {
                    "sum" => Value::Num(0.0),
                    _ => Value::Null,
                });
            }
            let out = match name {
                "sum" => nums.iter().sum(),
                "avg" => nums.iter().sum::<f64>() / nums.len() as f64,
                "min_of" => nums.iter().copied().fold(f64::INFINITY, f64::min),
                "max_of" => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                _ => unreachable!(),
            };
            Ok(Value::Num(out))
        })(),
        "sort" => (|| {
            arity(name, args, 1..=1, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "sort() needs an array".to_string(),
                    line,
                ));
            };
            let mut nums = Vec::with_capacity(a.len());
            for v in a {
                nums.push(want_num(v, "array element", line)?);
            }
            nums.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
            Ok(Value::Array(nums.into_iter().map(Value::Num).collect()))
        })(),
        "reverse" => (|| {
            arity(name, args, 1..=1, line)?;
            match &args[0] {
                Value::Array(a) => {
                    let mut out = a.clone();
                    out.reverse();
                    Ok(Value::Array(out))
                }
                Value::Str(s) => Ok(Value::Str(s.chars().rev().collect())),
                other => Err(ScriptError::runtime(
                    format!(
                        "reverse() needs an array or string, got {}",
                        other.type_name()
                    ),
                    line,
                )),
            }
        })(),
        "slice" => (|| {
            arity(name, args, 3..=3, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "slice() needs an array".to_string(),
                    line,
                ));
            };
            let start = want_num(&args[1], "slice() start", line)?.max(0.0) as usize;
            let n = want_num(&args[2], "slice() length", line)?.max(0.0) as usize;
            Ok(Value::Array(
                a.iter().skip(start).take(n).cloned().collect(),
            ))
        })(),
        "split" => (|| {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "split() target", line)?;
            let sep = want_str(&args[1], "split() separator", line)?;
            if sep.is_empty() {
                return Err(ScriptError::runtime(
                    "split() separator must not be empty",
                    line,
                ));
            }
            Ok(Value::Array(
                s.split(sep).map(|p| Value::Str(p.to_string())).collect(),
            ))
        })(),
        "join" => (|| {
            arity(name, args, 2..=2, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "join() needs an array".to_string(),
                    line,
                ));
            };
            let sep = want_str(&args[1], "join() separator", line)?;
            let parts: Vec<String> = a.iter().map(|v| format!("{v}")).collect();
            Ok(Value::Str(parts.join(sep)))
        })(),
        "trim" => (|| {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "trim() target", line)?
                    .trim()
                    .to_string(),
            ))
        })(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullHost;

    fn call(name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        call_builtin(name, args, 1, &mut NullHost).expect("is a builtin")
    }

    #[test]
    fn math_builtins() {
        assert!(matches!(call("sqrt", &[Value::Num(9.0)]).unwrap(), Value::Num(n) if n == 3.0));
        assert!(
            matches!(call("pow", &[Value::Num(2.0), Value::Num(10.0)]).unwrap(), Value::Num(n) if n == 1024.0)
        );
        assert!(
            matches!(call("min", &[Value::Num(2.0), Value::Num(1.0)]).unwrap(), Value::Num(n) if n == 1.0)
        );
        assert!(matches!(call("abs", &[Value::Num(-2.0)]).unwrap(), Value::Num(n) if n == 2.0));
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(call("sqrt", &[]).is_err());
        assert!(call("sqrt", &[Value::Str("x".into())]).is_err());
        assert!(call("len", &[Value::Num(1.0)]).is_err());
    }

    #[test]
    fn conversions() {
        assert!(
            matches!(call("num", &[Value::Str(" 2.5 ".into())]).unwrap(), Value::Num(n) if n == 2.5)
        );
        assert!(matches!(
            call("num", &[Value::Str("abc".into())]).unwrap(),
            Value::Null
        ));
        assert!(matches!(call("str", &[Value::Num(1.0)]).unwrap(), Value::Str(s) if s == "1"));
        assert!(matches!(
            call("is_null", &[Value::Null]).unwrap(),
            Value::Bool(true)
        ));
    }

    #[test]
    fn string_builtins() {
        assert!(
            matches!(call("len", &[Value::Str("abcd".into())]).unwrap(), Value::Num(n) if n == 4.0)
        );
        assert!(matches!(
            call("substr", &[Value::Str("abcdef".into()), Value::Num(2.0), Value::Num(3.0)]).unwrap(),
            Value::Str(s) if s == "cde"
        ));
        assert!(matches!(
            call(
                "contains",
                &[Value::Str("GATTACA".into()), Value::Str("TTA".into())]
            )
            .unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            call("count_matches", &[Value::Str("AAAA".into()), Value::Str("AA".into())]).unwrap(),
            Value::Num(n) if n == 3.0
        ));
    }

    #[test]
    fn append_is_pure() {
        let a = Value::Array(vec![Value::Num(1.0)]);
        let out = call("append", &[a.clone(), Value::Num(2.0)]).unwrap();
        let Value::Array(v) = out else { panic!() };
        assert_eq!(v.len(), 2);
        let Value::Array(orig) = a else { panic!() };
        assert_eq!(orig.len(), 1);
    }

    #[test]
    fn unknown_builtin_returns_none() {
        assert!(call_builtin("definitely_not_builtin", &[], 1, &mut NullHost).is_none());
    }

    #[test]
    fn array_aggregates() {
        let arr = Value::Array(vec![Value::Num(3.0), Value::Num(1.0), Value::Num(2.0)]);
        assert!(
            matches!(call("sum", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 6.0)
        );
        assert!(
            matches!(call("avg", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 2.0)
        );
        assert!(
            matches!(call("min_of", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 1.0)
        );
        assert!(
            matches!(call("max_of", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 3.0)
        );
        let empty = Value::Array(vec![]);
        assert!(
            matches!(call("sum", std::slice::from_ref(&empty)).unwrap(), Value::Num(n) if n == 0.0)
        );
        assert!(matches!(call("avg", &[empty]).unwrap(), Value::Null));
        // Non-numeric elements are an error.
        let bad = Value::Array(vec![Value::Str("x".into())]);
        assert!(call("sum", &[bad]).is_err());
    }

    #[test]
    fn sort_slice_reverse() {
        let arr = Value::Array(vec![Value::Num(3.0), Value::Num(1.0), Value::Num(2.0)]);
        let Value::Array(sorted) = call("sort", std::slice::from_ref(&arr)).unwrap() else {
            panic!()
        };
        assert!(matches!(sorted[0], Value::Num(n) if n == 1.0));
        assert!(matches!(sorted[2], Value::Num(n) if n == 3.0));
        let Value::Array(sl) =
            call("slice", &[arr.clone(), Value::Num(1.0), Value::Num(5.0)]).unwrap()
        else {
            panic!()
        };
        assert_eq!(sl.len(), 2);
        let Value::Array(rev) = call("reverse", &[arr]).unwrap() else {
            panic!()
        };
        assert!(matches!(rev[0], Value::Num(n) if n == 2.0));
        assert!(
            matches!(call("reverse", &[Value::Str("abc".into())]).unwrap(), Value::Str(s) if s == "cba")
        );
    }

    #[test]
    fn split_join_trim() {
        let Value::Array(parts) = call(
            "split",
            &[Value::Str("a,b,c".into()), Value::Str(",".into())],
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(
            call("join", &[Value::Array(parts), Value::Str("-".into())]).unwrap(),
            Value::Str(s) if s == "a-b-c"
        ));
        assert!(matches!(
            call("trim", &[Value::Str("  x \n".into())]).unwrap(),
            Value::Str(s) if s == "x"
        ));
        assert!(call("split", &[Value::Str("a".into()), Value::Str("".into())]).is_err());
    }

    #[test]
    fn cloud_bindings_default_and_aida() {
        // NullHost rejects clouds via the default impl.
        assert!(call("cloud1", &[Value::Str("/c".into())]).is_err());
        // AidaHost supports them.
        let mut host = crate::interp::AidaHost::new();
        call_builtin("cloud1", &[Value::Str("/c".into())], 1, &mut host)
            .unwrap()
            .unwrap();
        call_builtin(
            "cfill",
            &[Value::Str("/c".into()), Value::Num(2.5)],
            1,
            &mut host,
        )
        .unwrap()
        .unwrap();
        assert_eq!(host.tree.get("/c").unwrap().entries(), 1);
        // Idempotent re-book, kind conflict caught.
        call_builtin("cloud1", &[Value::Str("/c".into())], 1, &mut host)
            .unwrap()
            .unwrap();
        call_builtin(
            "h1",
            &[
                Value::Str("/h".into()),
                Value::Num(5.0),
                Value::Num(0.0),
                Value::Num(1.0),
            ],
            1,
            &mut host,
        )
        .unwrap()
        .unwrap();
        assert!(call_builtin(
            "cfill",
            &[Value::Str("/h".into()), Value::Num(1.0)],
            1,
            &mut host
        )
        .unwrap()
        .is_err());
    }
}

//! Builtin functions: math, strings, arrays, and the analysis host calls.
//!
//! Builtins are identified by the dense [`Builtin`] enum so the bytecode
//! resolver can bind call sites at compile time and the VM can dispatch
//! through a jump-table `match` instead of a string comparison chain. The
//! tree-walk interpreter still enters through [`call_builtin`], which is a
//! name lookup in front of the same [`dispatch_builtin`].

use ipa_dataset::RecordFields;

use crate::error::ScriptError;
use crate::interp::Host;
use crate::value::Value;

/// Maximum bins a script may book per histogram axis. Booking is host
/// memory, so a typo like `h1("x", 1e12, …)` must fail in the script, not
/// attempt a terabyte-scale allocation.
pub const MAX_BINS: usize = 1_000_000;

fn want_num(v: &Value, what: &str, line: u32) -> Result<f64, ScriptError> {
    v.as_num().ok_or_else(|| {
        ScriptError::runtime(
            format!("{what} must be numeric, got {}", v.type_name()),
            line,
        )
    })
}

fn want_str<'a>(v: &'a Value, what: &str, line: u32) -> Result<&'a str, ScriptError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(ScriptError::runtime(
            format!("{what} must be a string, got {}", other.type_name()),
            line,
        )),
    }
}

/// Checked bin-count conversion for `h1`/`h2`/`prof`: rejects non-finite,
/// non-integral, zero/negative, and over-cap counts instead of silently
/// truncating through `as usize`.
fn want_bins(v: &Value, what: &str, line: u32) -> Result<usize, ScriptError> {
    let n = want_num(v, what, line)?;
    if !n.is_finite() || n.fract() != 0.0 {
        return Err(ScriptError::runtime(
            format!("{what} must be a whole number, got {n}"),
            line,
        ));
    }
    if n < 1.0 {
        return Err(ScriptError::runtime(
            format!("{what} must be at least 1, got {n}"),
            line,
        ));
    }
    if n > MAX_BINS as f64 {
        return Err(ScriptError::runtime(
            format!("{what} must be at most {MAX_BINS}, got {n}"),
            line,
        ));
    }
    Ok(n as usize)
}

/// Checked numeric-to-index conversion shared by `substr()` and `slice()`:
/// NaN/infinite and negative values are errors instead of silently
/// saturating to 0; fractional parts truncate toward zero.
fn want_index(v: &Value, what: &str, line: u32) -> Result<usize, ScriptError> {
    let n = want_num(v, what, line)?;
    if !n.is_finite() {
        return Err(ScriptError::runtime(
            format!("{what} must be finite, got {n}"),
            line,
        ));
    }
    if n < 0.0 {
        return Err(ScriptError::runtime(
            format!("{what} must not be negative, got {n}"),
            line,
        ));
    }
    Ok(n as usize)
}

fn arity(
    name: &str,
    args: &[Value],
    expect: std::ops::RangeInclusive<usize>,
    line: u32,
) -> Result<(), ScriptError> {
    if expect.contains(&args.len()) {
        Ok(())
    } else {
        Err(ScriptError::runtime(
            format!(
                "{name}() takes {}..{} arguments, got {}",
                expect.start(),
                expect.end(),
                args.len()
            ),
            line,
        ))
    }
}

/// Dense builtin identifiers. The bytecode resolver stores one of these in
/// each `CallBuiltin` instruction; user functions win name clashes, so the
/// resolver consults [`Builtin::lookup`] only after the function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `sqrt(x)`
    Sqrt,
    /// `abs(x)`
    Abs,
    /// `ln(x)`
    Ln,
    /// `log10(x)`
    Log10,
    /// `exp(x)`
    Exp,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `round(x)`
    Round,
    /// `pow(a, b)`
    Pow,
    /// `atan2(a, b)`
    Atan2,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `pi()`
    Pi,
    /// `num(v)`
    Num,
    /// `str(v)`
    Str,
    /// `is_null(v)`
    IsNull,
    /// `len(s_or_array)`
    Len,
    /// `substr(s, start, n)`
    Substr,
    /// `contains(s, sub)`
    Contains,
    /// `count_matches(s, sub)`
    CountMatches,
    /// `upper(s)`
    Upper,
    /// `lower(s)`
    Lower,
    /// `append(array, v)`
    Append,
    /// `field(record, name)`
    Field,
    /// `fields(record)`
    Fields,
    /// `h1(path, nbins, lo, hi)`
    H1,
    /// `h2(path, nx, xlo, xhi, ny, ylo, yhi)`
    H2,
    /// `prof(path, nbins, lo, hi)`
    Prof,
    /// `fill(path, x, w?)`
    Fill,
    /// `fill2(path, x, y, w?)`
    Fill2,
    /// `pfill(path, x, y, w?)`
    Pfill,
    /// `log(v)`
    Log,
    /// `cloud1(path)`
    Cloud1,
    /// `tuple(path, columns)`
    Tuple,
    /// `tfill(path, v…)`
    Tfill,
    /// `cfill(path, x, w?)`
    Cfill,
    /// `sum(array)`
    Sum,
    /// `avg(array)`
    Avg,
    /// `min_of(array)`
    MinOf,
    /// `max_of(array)`
    MaxOf,
    /// `sort(array)`
    Sort,
    /// `reverse(array_or_s)`
    Reverse,
    /// `slice(array, start, n)`
    Slice,
    /// `split(s, sep)`
    Split,
    /// `join(array, sep)`
    Join,
    /// `trim(s)`
    Trim,
}

impl Builtin {
    /// Resolve a builtin by its script-visible name.
    pub fn lookup(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" => Builtin::Sqrt,
            "abs" => Builtin::Abs,
            "ln" => Builtin::Ln,
            "log10" => Builtin::Log10,
            "exp" => Builtin::Exp,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "tan" => Builtin::Tan,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "round" => Builtin::Round,
            "pow" => Builtin::Pow,
            "atan2" => Builtin::Atan2,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "pi" => Builtin::Pi,
            "num" => Builtin::Num,
            "str" => Builtin::Str,
            "is_null" => Builtin::IsNull,
            "len" => Builtin::Len,
            "substr" => Builtin::Substr,
            "contains" => Builtin::Contains,
            "count_matches" => Builtin::CountMatches,
            "upper" => Builtin::Upper,
            "lower" => Builtin::Lower,
            "append" => Builtin::Append,
            "field" => Builtin::Field,
            "fields" => Builtin::Fields,
            "h1" => Builtin::H1,
            "h2" => Builtin::H2,
            "prof" => Builtin::Prof,
            "fill" => Builtin::Fill,
            "fill2" => Builtin::Fill2,
            "pfill" => Builtin::Pfill,
            "log" => Builtin::Log,
            "cloud1" => Builtin::Cloud1,
            "tuple" => Builtin::Tuple,
            "tfill" => Builtin::Tfill,
            "cfill" => Builtin::Cfill,
            "sum" => Builtin::Sum,
            "avg" => Builtin::Avg,
            "min_of" => Builtin::MinOf,
            "max_of" => Builtin::MaxOf,
            "sort" => Builtin::Sort,
            "reverse" => Builtin::Reverse,
            "slice" => Builtin::Slice,
            "split" => Builtin::Split,
            "join" => Builtin::Join,
            "trim" => Builtin::Trim,
            _ => return None,
        })
    }

    /// The script-visible name (for error messages).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Sqrt => "sqrt",
            Builtin::Abs => "abs",
            Builtin::Ln => "ln",
            Builtin::Log10 => "log10",
            Builtin::Exp => "exp",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Tan => "tan",
            Builtin::Floor => "floor",
            Builtin::Ceil => "ceil",
            Builtin::Round => "round",
            Builtin::Pow => "pow",
            Builtin::Atan2 => "atan2",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Pi => "pi",
            Builtin::Num => "num",
            Builtin::Str => "str",
            Builtin::IsNull => "is_null",
            Builtin::Len => "len",
            Builtin::Substr => "substr",
            Builtin::Contains => "contains",
            Builtin::CountMatches => "count_matches",
            Builtin::Upper => "upper",
            Builtin::Lower => "lower",
            Builtin::Append => "append",
            Builtin::Field => "field",
            Builtin::Fields => "fields",
            Builtin::H1 => "h1",
            Builtin::H2 => "h2",
            Builtin::Prof => "prof",
            Builtin::Fill => "fill",
            Builtin::Fill2 => "fill2",
            Builtin::Pfill => "pfill",
            Builtin::Log => "log",
            Builtin::Cloud1 => "cloud1",
            Builtin::Tuple => "tuple",
            Builtin::Tfill => "tfill",
            Builtin::Cfill => "cfill",
            Builtin::Sum => "sum",
            Builtin::Avg => "avg",
            Builtin::MinOf => "min_of",
            Builtin::MaxOf => "max_of",
            Builtin::Sort => "sort",
            Builtin::Reverse => "reverse",
            Builtin::Slice => "slice",
            Builtin::Split => "split",
            Builtin::Join => "join",
            Builtin::Trim => "trim",
        }
    }
}

/// Try to dispatch a builtin by name. Returns `None` when `name` is not a
/// builtin so the interpreter can report an unknown function.
pub fn call_builtin(
    name: &str,
    args: &[Value],
    line: u32,
    host: &mut dyn Host,
) -> Option<Result<Value, ScriptError>> {
    Builtin::lookup(name).map(|b| dispatch_builtin(b, args, line, host))
}

/// Execute a resolved builtin. Both backends funnel through this, so the
/// VM and the tree-walk interpreter agree on results and error messages.
pub fn dispatch_builtin(
    b: Builtin,
    args: &[Value],
    line: u32,
    host: &mut dyn Host,
) -> Result<Value, ScriptError> {
    let name = b.name();
    match b {
        // ------------------------------------------------------- math ----
        Builtin::Sqrt
        | Builtin::Abs
        | Builtin::Ln
        | Builtin::Log10
        | Builtin::Exp
        | Builtin::Sin
        | Builtin::Cos
        | Builtin::Tan
        | Builtin::Floor
        | Builtin::Ceil
        | Builtin::Round => {
            arity(name, args, 1..=1, line)?;
            let x = want_num(&args[0], "argument", line)?;
            let y = match b {
                Builtin::Sqrt => x.sqrt(),
                Builtin::Abs => x.abs(),
                Builtin::Ln => x.ln(),
                Builtin::Log10 => x.log10(),
                Builtin::Exp => x.exp(),
                Builtin::Sin => x.sin(),
                Builtin::Cos => x.cos(),
                Builtin::Tan => x.tan(),
                Builtin::Floor => x.floor(),
                Builtin::Ceil => x.ceil(),
                Builtin::Round => x.round(),
                _ => unreachable!(),
            };
            Ok(Value::Num(y))
        }
        Builtin::Pow | Builtin::Atan2 | Builtin::Min | Builtin::Max => {
            arity(name, args, 2..=2, line)?;
            let a = want_num(&args[0], "argument", line)?;
            let bb = want_num(&args[1], "argument", line)?;
            let y = match b {
                Builtin::Pow => a.powf(bb),
                Builtin::Atan2 => a.atan2(bb),
                Builtin::Min => a.min(bb),
                Builtin::Max => a.max(bb),
                _ => unreachable!(),
            };
            Ok(Value::Num(y))
        }
        Builtin::Pi => {
            arity(name, args, 0..=0, line)?;
            Ok(Value::Num(std::f64::consts::PI))
        }
        // ------------------------------------------------ conversions ----
        Builtin::Num => {
            arity(name, args, 1..=1, line)?;
            Ok(match &args[0] {
                Value::Num(n) => Value::Num(*n),
                Value::Bool(b) => Value::Num(if *b { 1.0 } else { 0.0 }),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Num)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            })
        }
        Builtin::Str => {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(format!("{}", args[0])))
        }
        Builtin::IsNull => {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Bool(matches!(args[0], Value::Null)))
        }
        // ------------------------------------------------ strings/arrays --
        Builtin::Len => {
            arity(name, args, 1..=1, line)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Num(s.chars().count() as f64)),
                Value::Array(a) => Ok(Value::Num(a.len() as f64)),
                other => Err(ScriptError::runtime(
                    format!("len() needs a string or array, got {}", other.type_name()),
                    line,
                )),
            }
        }
        Builtin::Substr => {
            arity(name, args, 3..=3, line)?;
            let s = want_str(&args[0], "substr() target", line)?;
            let start = want_index(&args[1], "substr() start", line)?;
            let n = want_index(&args[2], "substr() length", line)?;
            let out: String = s.chars().skip(start).take(n).collect();
            Ok(Value::Str(out))
        }
        Builtin::Contains => {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "contains() target", line)?;
            let sub = want_str(&args[1], "contains() pattern", line)?;
            Ok(Value::Bool(s.contains(sub)))
        }
        Builtin::CountMatches => {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "count_matches() target", line)?;
            let sub = want_str(&args[1], "count_matches() pattern", line)?;
            if sub.is_empty() || sub.len() > s.len() {
                return Ok(Value::Num(0.0));
            }
            // Overlapping count (matches DnaRead::count_motif semantics).
            let (sb, mb) = (s.as_bytes(), sub.as_bytes());
            let c = (0..=sb.len() - mb.len())
                .filter(|&i| &sb[i..i + mb.len()] == mb)
                .count();
            Ok(Value::Num(c as f64))
        }
        Builtin::Upper => {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "upper() target", line)?.to_uppercase(),
            ))
        }
        Builtin::Lower => {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "lower() target", line)?.to_lowercase(),
            ))
        }
        Builtin::Append => {
            arity(name, args, 2..=2, line)?;
            match &args[0] {
                Value::Array(a) => {
                    let mut out = a.clone();
                    out.push(args[1].clone());
                    Ok(Value::Array(out))
                }
                other => Err(ScriptError::runtime(
                    format!("append() needs an array, got {}", other.type_name()),
                    line,
                )),
            }
        }
        // ---------------------------------------------------- records ----
        Builtin::Field => {
            arity(name, args, 2..=2, line)?;
            let Value::Record(r) = &args[0] else {
                return Err(ScriptError::runtime(
                    format!("field() needs a record, got {}", args[0].type_name()),
                    line,
                ));
            };
            let fname = want_str(&args[1], "field() name", line)?;
            match r.field(fname) {
                Some(f) => Ok(Value::from_field(f)),
                None => Err(ScriptError::runtime(
                    format!("record kind '{}' has no field '{fname}'", r.kind()),
                    line,
                )),
            }
        }
        Builtin::Fields => {
            arity(name, args, 1..=1, line)?;
            let Value::Record(r) = &args[0] else {
                return Err(ScriptError::runtime(
                    "fields() needs a record".to_string(),
                    line,
                ));
            };
            Ok(Value::Array(
                r.field_names()
                    .iter()
                    .map(|n| Value::Str(n.to_string()))
                    .collect(),
            ))
        }
        // ------------------------------------------------------- host ----
        Builtin::H1 => {
            arity(name, args, 4..=4, line)?;
            let path = want_str(&args[0], "h1() path", line)?;
            let nbins = want_bins(&args[1], "h1() nbins", line)?;
            let lo = want_num(&args[2], "h1() lo", line)?;
            let hi = want_num(&args[3], "h1() hi", line)?;
            host.book_h1(path, nbins, lo, hi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::H2 => {
            arity(name, args, 7..=7, line)?;
            let path = want_str(&args[0], "h2() path", line)?;
            let nx = want_bins(&args[1], "h2() nx", line)?;
            let xlo = want_num(&args[2], "h2() xlo", line)?;
            let xhi = want_num(&args[3], "h2() xhi", line)?;
            let ny = want_bins(&args[4], "h2() ny", line)?;
            let ylo = want_num(&args[5], "h2() ylo", line)?;
            let yhi = want_num(&args[6], "h2() yhi", line)?;
            host.book_h2(path, nx, xlo, xhi, ny, ylo, yhi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Prof => {
            arity(name, args, 4..=4, line)?;
            let path = want_str(&args[0], "prof() path", line)?;
            let nbins = want_bins(&args[1], "prof() nbins", line)?;
            let lo = want_num(&args[2], "prof() lo", line)?;
            let hi = want_num(&args[3], "prof() hi", line)?;
            host.book_profile(path, nbins, lo, hi)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Fill => {
            arity(name, args, 2..=3, line)?;
            let path = want_str(&args[0], "fill() path", line)?;
            let x = want_num(&args[1], "fill() x", line)?;
            let w = if args.len() == 3 {
                want_num(&args[2], "fill() weight", line)?
            } else {
                1.0
            };
            host.fill1(path, x, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Fill2 => {
            arity(name, args, 3..=4, line)?;
            let path = want_str(&args[0], "fill2() path", line)?;
            let x = want_num(&args[1], "fill2() x", line)?;
            let y = want_num(&args[2], "fill2() y", line)?;
            let w = if args.len() == 4 {
                want_num(&args[3], "fill2() weight", line)?
            } else {
                1.0
            };
            host.fill2(path, x, y, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Pfill => {
            arity(name, args, 3..=4, line)?;
            let path = want_str(&args[0], "pfill() path", line)?;
            let x = want_num(&args[1], "pfill() x", line)?;
            let y = want_num(&args[2], "pfill() y", line)?;
            let w = if args.len() == 4 {
                want_num(&args[3], "pfill() weight", line)?
            } else {
                1.0
            };
            host.fill_profile(path, x, y, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Log => {
            arity(name, args, 1..=1, line)?;
            host.log(&format!("{}", args[0]));
            Ok(Value::Null)
        }
        Builtin::Cloud1 => {
            arity(name, args, 1..=1, line)?;
            let path = want_str(&args[0], "cloud1() path", line)?;
            host.book_cloud1(path)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Tuple => {
            arity(name, args, 2..=2, line)?;
            let path = want_str(&args[0], "tuple() path", line)?;
            let cols_text = want_str(&args[1], "tuple() columns", line)?;
            let cols: Vec<&str> = cols_text.split(',').map(str::trim).collect();
            if cols.iter().any(|c| c.is_empty()) {
                return Err(ScriptError::runtime(
                    "tuple() columns must be non-empty",
                    line,
                ));
            }
            host.book_tuple(path, &cols)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Tfill => {
            arity(name, args, 2..=17, line)?;
            let path = want_str(&args[0], "tfill() path", line)?;
            let mut row = Vec::with_capacity(args.len() - 1);
            for v in &args[1..] {
                row.push(want_num(v, "tfill() value", line)?);
            }
            host.fill_tuple(path, &row)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        Builtin::Cfill => {
            arity(name, args, 2..=3, line)?;
            let path = want_str(&args[0], "cfill() path", line)?;
            let x = want_num(&args[1], "cfill() x", line)?;
            let w = if args.len() == 3 {
                want_num(&args[2], "cfill() weight", line)?
            } else {
                1.0
            };
            host.fill_cloud1(path, x, w)
                .map_err(|e| ScriptError::runtime(e, line))?;
            Ok(Value::Null)
        }
        // ----------------------------------------------- array helpers ---
        Builtin::Sum | Builtin::Avg | Builtin::MinOf | Builtin::MaxOf => {
            arity(name, args, 1..=1, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    format!("{name}() needs an array, got {}", args[0].type_name()),
                    line,
                ));
            };
            let mut nums = Vec::with_capacity(a.len());
            for v in a {
                nums.push(want_num(v, "array element", line)?);
            }
            if nums.is_empty() {
                return Ok(match b {
                    Builtin::Sum => Value::Num(0.0),
                    _ => Value::Null,
                });
            }
            let out = match b {
                Builtin::Sum => nums.iter().sum(),
                Builtin::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
                Builtin::MinOf => nums.iter().copied().fold(f64::INFINITY, f64::min),
                Builtin::MaxOf => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                _ => unreachable!(),
            };
            Ok(Value::Num(out))
        }
        Builtin::Sort => {
            arity(name, args, 1..=1, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "sort() needs an array".to_string(),
                    line,
                ));
            };
            let mut nums = Vec::with_capacity(a.len());
            for v in a {
                nums.push(want_num(v, "array element", line)?);
            }
            nums.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
            Ok(Value::Array(nums.into_iter().map(Value::Num).collect()))
        }
        Builtin::Reverse => {
            arity(name, args, 1..=1, line)?;
            match &args[0] {
                Value::Array(a) => {
                    let mut out = a.clone();
                    out.reverse();
                    Ok(Value::Array(out))
                }
                Value::Str(s) => Ok(Value::Str(s.chars().rev().collect())),
                other => Err(ScriptError::runtime(
                    format!(
                        "reverse() needs an array or string, got {}",
                        other.type_name()
                    ),
                    line,
                )),
            }
        }
        Builtin::Slice => {
            arity(name, args, 3..=3, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "slice() needs an array".to_string(),
                    line,
                ));
            };
            let start = want_index(&args[1], "slice() start", line)?;
            let n = want_index(&args[2], "slice() length", line)?;
            Ok(Value::Array(
                a.iter().skip(start).take(n).cloned().collect(),
            ))
        }
        Builtin::Split => {
            arity(name, args, 2..=2, line)?;
            let s = want_str(&args[0], "split() target", line)?;
            let sep = want_str(&args[1], "split() separator", line)?;
            if sep.is_empty() {
                return Err(ScriptError::runtime(
                    "split() separator must not be empty",
                    line,
                ));
            }
            Ok(Value::Array(
                s.split(sep).map(|p| Value::Str(p.to_string())).collect(),
            ))
        }
        Builtin::Join => {
            arity(name, args, 2..=2, line)?;
            let Value::Array(a) = &args[0] else {
                return Err(ScriptError::runtime(
                    "join() needs an array".to_string(),
                    line,
                ));
            };
            let sep = want_str(&args[1], "join() separator", line)?;
            let parts: Vec<String> = a.iter().map(|v| format!("{v}")).collect();
            Ok(Value::Str(parts.join(sep)))
        }
        Builtin::Trim => {
            arity(name, args, 1..=1, line)?;
            Ok(Value::Str(
                want_str(&args[0], "trim() target", line)?
                    .trim()
                    .to_string(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullHost;

    fn call(name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        call_builtin(name, args, 1, &mut NullHost).expect("is a builtin")
    }

    #[test]
    fn lookup_and_name_round_trip() {
        for name in [
            "sqrt", "pow", "pi", "num", "str", "is_null", "len", "substr", "h1", "h2", "prof",
            "fill", "log", "tuple", "tfill", "sum", "slice", "split", "trim",
        ] {
            let b = Builtin::lookup(name).expect("known builtin");
            assert_eq!(b.name(), name);
        }
        assert!(Builtin::lookup("definitely_not_builtin").is_none());
    }

    #[test]
    fn math_builtins() {
        assert!(matches!(call("sqrt", &[Value::Num(9.0)]).unwrap(), Value::Num(n) if n == 3.0));
        assert!(
            matches!(call("pow", &[Value::Num(2.0), Value::Num(10.0)]).unwrap(), Value::Num(n) if n == 1024.0)
        );
        assert!(
            matches!(call("min", &[Value::Num(2.0), Value::Num(1.0)]).unwrap(), Value::Num(n) if n == 1.0)
        );
        assert!(matches!(call("abs", &[Value::Num(-2.0)]).unwrap(), Value::Num(n) if n == 2.0));
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(call("sqrt", &[]).is_err());
        assert!(call("sqrt", &[Value::Str("x".into())]).is_err());
        assert!(call("len", &[Value::Num(1.0)]).is_err());
    }

    #[test]
    fn conversions() {
        assert!(
            matches!(call("num", &[Value::Str(" 2.5 ".into())]).unwrap(), Value::Num(n) if n == 2.5)
        );
        assert!(matches!(
            call("num", &[Value::Str("abc".into())]).unwrap(),
            Value::Null
        ));
        assert!(matches!(call("str", &[Value::Num(1.0)]).unwrap(), Value::Str(s) if s == "1"));
        assert!(matches!(
            call("is_null", &[Value::Null]).unwrap(),
            Value::Bool(true)
        ));
    }

    #[test]
    fn string_builtins() {
        assert!(
            matches!(call("len", &[Value::Str("abcd".into())]).unwrap(), Value::Num(n) if n == 4.0)
        );
        assert!(matches!(
            call("substr", &[Value::Str("abcdef".into()), Value::Num(2.0), Value::Num(3.0)]).unwrap(),
            Value::Str(s) if s == "cde"
        ));
        assert!(matches!(
            call(
                "contains",
                &[Value::Str("GATTACA".into()), Value::Str("TTA".into())]
            )
            .unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            call("count_matches", &[Value::Str("AAAA".into()), Value::Str("AA".into())]).unwrap(),
            Value::Num(n) if n == 3.0
        ));
    }

    #[test]
    fn substr_and_slice_reject_bad_indices() {
        let s = Value::Str("abcdef".into());
        let arr = Value::Array(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)]);
        // Negative start/length used to saturate to 0 silently; now an error.
        assert!(call("substr", &[s.clone(), Value::Num(-1.0), Value::Num(2.0)]).is_err());
        assert!(call("substr", &[s.clone(), Value::Num(0.0), Value::Num(-3.0)]).is_err());
        assert!(call("slice", &[arr.clone(), Value::Num(-1.0), Value::Num(2.0)]).is_err());
        assert!(call("slice", &[arr.clone(), Value::Num(0.0), Value::Num(-2.0)]).is_err());
        // NaN and infinity are rejected too.
        assert!(call(
            "substr",
            &[s.clone(), Value::Num(f64::NAN), Value::Num(1.0)]
        )
        .is_err());
        assert!(call(
            "slice",
            &[arr.clone(), Value::Num(f64::INFINITY), Value::Num(1.0)]
        )
        .is_err());
        // In-range fractional indices truncate toward zero.
        assert!(matches!(
            call("substr", &[s, Value::Num(1.5), Value::Num(2.9)]).unwrap(),
            Value::Str(out) if out == "bc"
        ));
        // Over-length requests still clamp at the end (half-open take).
        assert!(matches!(
            call("slice", &[arr, Value::Num(1.0), Value::Num(99.0)]).unwrap(),
            Value::Array(v) if v.len() == 2
        ));
    }

    #[test]
    fn bin_counts_are_validated() {
        let book = |nbins: f64| {
            call(
                "h1",
                &[
                    Value::Str("/h".into()),
                    Value::Num(nbins),
                    Value::Num(0.0),
                    Value::Num(240.0),
                ],
            )
        };
        // Rejections: NaN, infinity, fractional, zero, negative, over-cap.
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            2.5,
            0.0,
            -8.0,
            1e12,
            (MAX_BINS + 1) as f64,
        ] {
            let err = book(bad).unwrap_err();
            assert!(
                matches!(err, ScriptError::Runtime { line: 1, .. }),
                "nbins={bad}: expected a line-1 runtime error, got {err:?}"
            );
        }
        // The boundary values are fine.
        assert!(book(1.0).is_ok());
        assert!(book(MAX_BINS as f64).is_ok());
        // h2 and prof validate through the same helper.
        assert!(call(
            "h2",
            &[
                Value::Str("/h2".into()),
                Value::Num(10.0),
                Value::Num(0.0),
                Value::Num(1.0),
                Value::Num(f64::NAN),
                Value::Num(0.0),
                Value::Num(1.0),
            ],
        )
        .is_err());
        assert!(call(
            "prof",
            &[
                Value::Str("/p".into()),
                Value::Num(0.0),
                Value::Num(0.0),
                Value::Num(1.0),
            ],
        )
        .is_err());
    }

    #[test]
    fn append_is_pure() {
        let a = Value::Array(vec![Value::Num(1.0)]);
        let out = call("append", &[a.clone(), Value::Num(2.0)]).unwrap();
        let Value::Array(v) = out else { panic!() };
        assert_eq!(v.len(), 2);
        let Value::Array(orig) = a else { panic!() };
        assert_eq!(orig.len(), 1);
    }

    #[test]
    fn unknown_builtin_returns_none() {
        assert!(call_builtin("definitely_not_builtin", &[], 1, &mut NullHost).is_none());
    }

    #[test]
    fn array_aggregates() {
        let arr = Value::Array(vec![Value::Num(3.0), Value::Num(1.0), Value::Num(2.0)]);
        assert!(
            matches!(call("sum", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 6.0)
        );
        assert!(
            matches!(call("avg", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 2.0)
        );
        assert!(
            matches!(call("min_of", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 1.0)
        );
        assert!(
            matches!(call("max_of", std::slice::from_ref(&arr)).unwrap(), Value::Num(n) if n == 3.0)
        );
        let empty = Value::Array(vec![]);
        assert!(
            matches!(call("sum", std::slice::from_ref(&empty)).unwrap(), Value::Num(n) if n == 0.0)
        );
        assert!(matches!(call("avg", &[empty]).unwrap(), Value::Null));
        // Non-numeric elements are an error.
        let bad = Value::Array(vec![Value::Str("x".into())]);
        assert!(call("sum", &[bad]).is_err());
    }

    #[test]
    fn sort_slice_reverse() {
        let arr = Value::Array(vec![Value::Num(3.0), Value::Num(1.0), Value::Num(2.0)]);
        let Value::Array(sorted) = call("sort", std::slice::from_ref(&arr)).unwrap() else {
            panic!()
        };
        assert!(matches!(sorted[0], Value::Num(n) if n == 1.0));
        assert!(matches!(sorted[2], Value::Num(n) if n == 3.0));
        let Value::Array(sl) =
            call("slice", &[arr.clone(), Value::Num(1.0), Value::Num(5.0)]).unwrap()
        else {
            panic!()
        };
        assert_eq!(sl.len(), 2);
        let Value::Array(rev) = call("reverse", &[arr]).unwrap() else {
            panic!()
        };
        assert!(matches!(rev[0], Value::Num(n) if n == 2.0));
        assert!(
            matches!(call("reverse", &[Value::Str("abc".into())]).unwrap(), Value::Str(s) if s == "cba")
        );
    }

    #[test]
    fn split_join_trim() {
        let Value::Array(parts) = call(
            "split",
            &[Value::Str("a,b,c".into()), Value::Str(",".into())],
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(
            call("join", &[Value::Array(parts), Value::Str("-".into())]).unwrap(),
            Value::Str(s) if s == "a-b-c"
        ));
        assert!(matches!(
            call("trim", &[Value::Str("  x \n".into())]).unwrap(),
            Value::Str(s) if s == "x"
        ));
        assert!(call("split", &[Value::Str("a".into()), Value::Str("".into())]).is_err());
    }

    #[test]
    fn cloud_bindings_default_and_aida() {
        // NullHost rejects clouds via the default impl.
        assert!(call("cloud1", &[Value::Str("/c".into())]).is_err());
        // AidaHost supports them.
        let mut host = crate::interp::AidaHost::new();
        call_builtin("cloud1", &[Value::Str("/c".into())], 1, &mut host)
            .unwrap()
            .unwrap();
        call_builtin(
            "cfill",
            &[Value::Str("/c".into()), Value::Num(2.5)],
            1,
            &mut host,
        )
        .unwrap()
        .unwrap();
        assert_eq!(host.tree.get("/c").unwrap().entries(), 1);
        // Idempotent re-book, kind conflict caught.
        call_builtin("cloud1", &[Value::Str("/c".into())], 1, &mut host)
            .unwrap()
            .unwrap();
        call_builtin(
            "h1",
            &[
                Value::Str("/h".into()),
                Value::Num(5.0),
                Value::Num(0.0),
                Value::Num(1.0),
            ],
            1,
            &mut host,
        )
        .unwrap()
        .unwrap();
        assert!(call_builtin(
            "cfill",
            &[Value::Str("/h".into()), Value::Num(1.0)],
            1,
            &mut host
        )
        .unwrap()
        .is_err());
    }
}

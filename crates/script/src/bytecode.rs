//! Compact IPAScript bytecode: the dense [`Op`] enum and the compiled
//! containers produced by [`crate::resolve`] and executed by
//! [`crate::vm::Vm`].
//!
//! Design notes:
//! - **Stack machine, slot-addressed names.** Operands flow through a
//!   per-frame value stack; variables live in flat `Vec` slots resolved at
//!   compile time, so the hot loop never hashes a name.
//! - **Dynamic-binding fidelity.** IPAScript resolves names at *use* time
//!   (local first, then global, and unknown names only error when
//!   executed). Slots therefore hold `Option<Value>` — `None` means "this
//!   binder exists somewhere in the function but is not bound yet" — and
//!   names visible both locally and globally compile to `*Either` ops that
//!   re-check boundness at runtime, exactly like the tree-walk's
//!   `locals.get(name).or_else(|| globals.get(name))`.
//! - **Lines ride in a parallel table.** `lines[pc]` gives the source line
//!   for the op at `pc`, keeping `Op` small and `Copy`.

use std::collections::HashMap;

use crate::ast::BinOp;
use crate::stdlib::Builtin;
use crate::value::Value;

/// One VM instruction. Jump targets are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant `consts[idx]`.
    Const(u16),
    /// Push `null`.
    PushNull,
    /// Push `true`.
    PushTrue,
    /// Push `false`.
    PushFalse,
    /// Discard the top of the stack (expression statements).
    Pop,
    /// Push a local slot; error "unknown variable" if unbound.
    LoadLocal {
        /// Local slot.
        slot: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// Push a global slot; error "unknown variable" if unbound.
    LoadGlobal {
        /// Global slot.
        slot: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// Push the local slot if bound, else the global slot if bound, else
    /// error — dynamic local-then-global resolution.
    LoadEither {
        /// Local slot.
        local: u16,
        /// Global slot.
        global: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// A name with no binder anywhere: always "unknown variable" — but
    /// only when executed (lazy, like the tree-walk).
    LoadUndef {
        /// Interned name.
        name: u16,
    },
    /// Pop into a local slot (binds it).
    StoreLocal {
        /// Local slot.
        slot: u16,
    },
    /// Pop into the local slot if bound, else the global slot if bound,
    /// else bind the local slot (implicit creation in the current scope).
    StoreEither {
        /// Local slot.
        local: u16,
        /// Global slot.
        global: u16,
    },
    /// `name[i] = v` where `name` has only a local binder. Stack: … v i →
    IndexSetLocal {
        /// Local slot.
        slot: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// `name[i] = v` where `name` has only a global binder.
    IndexSetGlobal {
        /// Global slot.
        slot: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// `name[i] = v` with both binders: local if bound, else global if
    /// bound, else "unknown variable" (index assignment never binds).
    IndexSetEither {
        /// Local slot.
        local: u16,
        /// Global slot.
        global: u16,
        /// Interned name (diagnostics).
        name: u16,
    },
    /// `name[i] = v` with no binder anywhere: always "unknown variable".
    IndexSetUndef {
        /// Interned name.
        name: u16,
    },
    /// Binary `+` (numeric add or string concat). Stack: … l r → … v
    Add,
    /// Binary `-`.
    Sub,
    /// Binary `*`.
    Mul,
    /// Binary `/`.
    Div,
    /// Binary `%`.
    Rem,
    /// Binary `==`.
    Eq,
    /// Binary `!=`.
    Ne,
    /// Binary `<`.
    Lt,
    /// Binary `<=`.
    Le,
    /// Binary `>`.
    Gt,
    /// Binary `>=`.
    Ge,
    /// Unary negation.
    Neg,
    /// Logical not.
    Not,
    /// Replace the top of the stack with its truthiness as a Bool.
    Truthy,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// `&&`: pop the lhs; when falsy push `false` and jump past the rhs
    /// (the rhs evaluates next and is then collapsed by [`Op::Truthy`]).
    AndCircuit(u32),
    /// `||`: pop the lhs; when truthy push `true` and jump past the rhs.
    OrCircuit(u32),
    /// Pop `n` values into an array (first pushed = first element).
    MakeArray(u16),
    /// Index read. Stack: … target index → … value
    IndexGet,
    /// Record field read on the top of the stack.
    FieldGet {
        /// Interned field name.
        name: u16,
    },
    /// Validate the start bound of `for … in start..end` *before* the end
    /// bound is evaluated — the tree-walk converts the start eagerly, so
    /// the "range start must be numeric" error must win over any error in
    /// the end expression. The value stays put. Stack: … start → … start
    RangeStart,
    /// Materialize `start..end` into an array, burning fuel per element
    /// (same cost order as the tree-walk). Stack: … start end → … array
    RangeToArray,
    /// A range expression outside `for … in`: always an error.
    RangeOutsideFor,
    /// Pop the iterable into hidden slot `iter` (must be an array) and
    /// reset hidden counter slot `idx`.
    IterInit {
        /// Hidden slot holding the array snapshot.
        iter: u16,
        /// Hidden slot holding the cursor.
        idx: u16,
    },
    /// Push the next element and advance, or jump to `done` when
    /// exhausted. Burns one extra fuel per yielded element, matching the
    /// tree-walk's per-iteration burn.
    IterNext {
        /// Hidden slot holding the array snapshot.
        iter: u16,
        /// Hidden slot holding the cursor.
        idx: u16,
        /// Jump target when the iterator is exhausted.
        done: u32,
    },
    /// Call user function `protos[func]` with `argc` stacked arguments.
    CallFn {
        /// Function proto index.
        func: u16,
        /// Argument count at the call site.
        argc: u8,
    },
    /// Call a builtin resolved at compile time.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count at the call site.
        argc: u8,
    },
    /// A call to a name that is neither a user function nor a builtin:
    /// evaluates its arguments, then errors "unknown function" (lazy).
    CallUnknown {
        /// Interned name.
        name: u16,
    },
    /// Return the top of the stack from the current function.
    Return,
    /// Return `null` (fall-off-the-end or bare `return;`).
    ReturnNull,
    /// Stop top-level execution (top-level `return`/`break`/`continue`
    /// halt the script body without error; globals still promote).
    Halt,
    /// `break`/`continue` outside any loop inside a function body: a
    /// runtime error attributed to the function's definition line.
    LooseBreak,

    // --- Superinstructions (emitted only by the `fuse` pass). Each one
    // replays the exact semantics of its constituent ops — same values,
    // same errors, same error lines (the fuse pass only fuses windows
    // whose ops share one source line) — but costs a single dispatch and
    // a single unit of fuel.
    /// `LoadLocal{slot} + FieldGet{field}`: read a field of a record held
    /// in a bound local without pushing the record itself.
    LocalFieldGet {
        /// Local slot holding the record.
        slot: u16,
        /// Interned variable name (diagnostics).
        name: u16,
        /// Interned field name.
        field: u16,
    },
    /// `LoadLocal{slot} + Const(cidx) + <binop>`: push
    /// `local <op> consts[cidx]`.
    LocalConstBin {
        /// Local slot of the left operand.
        slot: u16,
        /// Interned variable name (diagnostics).
        name: u16,
        /// Constant-pool index of the right operand.
        cidx: u16,
        /// The fused binary operator (never `And`/`Or`).
        op: BinOp,
    },
    /// `<cmp> + JumpIfFalse(target)`: pop two operands, compare, branch
    /// when the comparison is falsy without materializing the Bool.
    CmpJump {
        /// The fused comparison (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
    },
    /// `FieldGet{name} + Const(cidx) + <cmp> + JumpIfFalse(target)`: the
    /// canonical guard shape `if rec.field <cmp> k { … }`. Pops the
    /// record, compares its field against the constant, branches when
    /// falsy.
    FieldConstCmpJump {
        /// Interned field name.
        name: u16,
        /// Constant-pool index of the comparison operand.
        cidx: u16,
        /// The fused comparison (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
    },
}

/// A compiled function body (or the synthetic top-level body).
#[derive(Debug, Clone, Default)]
pub struct FnProto {
    /// Function name ("" for the top level).
    pub name: String,
    /// Local slot for each parameter position. Duplicate parameter names
    /// share a slot, so later arguments overwrite earlier ones — same as
    /// the tree-walk's map construction.
    pub params: Vec<u16>,
    /// Total local slots, including params and hidden loop slots.
    pub n_slots: u16,
    /// Instructions.
    pub code: Vec<Op>,
    /// Source line per instruction (parallel to `code`).
    pub lines: Vec<u32>,
    /// Source line of the definition (arity errors, loose break).
    pub line: u32,
}

/// A fully resolved script, ready for [`crate::vm::Vm`].
#[derive(Debug, Clone, Default)]
pub struct CompiledScript {
    /// Constant pool (numbers and strings, deduplicated).
    pub consts: Vec<Value>,
    /// Interned identifier names (for diagnostics).
    pub names: Vec<String>,
    /// User function bodies, indexed by [`Op::CallFn`].
    pub protos: Vec<FnProto>,
    /// Function name → proto index.
    pub fn_index: HashMap<String, u16>,
    /// The synthetic top-level body.
    pub top_level: FnProto,
    /// Global slot names (slot = position).
    pub globals: Vec<String>,
    /// After a successful top-level run, copy bound top-level local slot
    /// `.0` into global slot `.1` (the tree-walk's "promote locals").
    pub promote: Vec<(u16, u16)>,
}

//! IPAScript abstract syntax tree.

use std::collections::HashMap;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric add or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression, annotated with its source line for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `null`
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call `name(args…)` (user function or builtin).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Indexing `a[i]`.
    Index {
        /// Array/string expression.
        target: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Record field access `rec.field`.
    Field {
        /// Record expression.
        target: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Half-open range `a..b` (only valid in `for … in`).
    Range {
        /// Inclusive start.
        start: Box<Expr>,
        /// Exclusive end.
        end: Box<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `name = expr;` (also `a[i] = expr;`)
    Assign {
        /// Assignment target.
        target: AssignTarget,
        /// New value.
        value: Expr,
    },
    /// Expression statement (usually a call).
    Expr(Expr),
    /// `if cond { … } else { … }` — else-if chains nest in `otherwise`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        otherwise: Vec<Stmt>,
    },
    /// `while cond { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for var in iterable { … }` — iterable is a range or an array.
    For {
        /// Loop variable.
        var: String,
        /// Range or array expression.
        iter: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// Plain variable.
    Var(String),
    /// Array element.
    Index {
        /// Array variable name.
        name: String,
        /// Index expression.
        index: Expr,
    },
}

/// A user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A compiled script: its functions plus top-level statements (run once,
/// before `init`, for script-global constants).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Named functions.
    pub functions: HashMap<String, Arc<Function>>,
    /// Statements outside any function (shared so interpreters iterate
    /// them by reference instead of cloning per `run_init`).
    pub top_level: Arc<Vec<Stmt>>,
    /// Original source (kept for diagnostics and reload comparison).
    pub source: String,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Arc<Function>> {
        self.functions.get(name)
    }

    /// True if the script defines `process` (the only mandatory entry point).
    pub fn has_process(&self) -> bool {
        self.functions.contains_key("process")
    }
}

//! The tree-walking interpreter and the [`Host`] interface.

use std::collections::HashMap;
use std::sync::Arc;

use ipa_aida::{Histogram1D, Histogram2D, Profile1D};

use crate::ast::*;
use crate::error::ScriptError;
use crate::stdlib::call_builtin;
use crate::value::{RecordRef, Value};

/// Default per-call execution budget (evaluation steps).
pub const DEFAULT_FUEL: u64 = 10_000_000;
/// Maximum user-function call depth (conservative: each script frame
/// consumes several large interpreter stack frames in debug builds).
pub(crate) const MAX_DEPTH: usize = 64;

/// Everything a script can do to the outside world.
///
/// The engine backs this with an AIDA tree ([`AidaHost`]); tests can use
/// [`NullHost`] or a recording mock. Booking is idempotent — re-running a
/// script after a rewind re-books the same plots without error.
pub trait Host {
    /// Book a 1-D histogram at `path` (idempotent for identical binning).
    fn book_h1(&mut self, path: &str, nbins: usize, lo: f64, hi: f64) -> Result<(), String>;
    /// Book a 2-D histogram.
    #[allow(clippy::too_many_arguments)]
    fn book_h2(
        &mut self,
        path: &str,
        nx: usize,
        xlo: f64,
        xhi: f64,
        ny: usize,
        ylo: f64,
        yhi: f64,
    ) -> Result<(), String>;
    /// Book a profile.
    fn book_profile(&mut self, path: &str, nbins: usize, lo: f64, hi: f64) -> Result<(), String>;
    /// Fill a 1-D histogram.
    fn fill1(&mut self, path: &str, x: f64, w: f64) -> Result<(), String>;
    /// Fill a 2-D histogram.
    fn fill2(&mut self, path: &str, x: f64, y: f64, w: f64) -> Result<(), String>;
    /// Fill a profile.
    fn fill_profile(&mut self, path: &str, x: f64, y: f64, w: f64) -> Result<(), String>;
    /// Bulk 1-D fill, equivalent to one [`Host::fill1`] per element of
    /// `xs` in slice order. The default loops; tree-backed hosts override
    /// with a single path lookup for the whole slice.
    fn fill1_slice(&mut self, path: &str, xs: &[f64], w: f64) -> Result<(), String> {
        for &x in xs {
            self.fill1(path, x, w)?;
        }
        Ok(())
    }
    /// Bulk weighted 1-D fill over parallel coordinate/weight slices.
    fn fill1_slice_weighted(&mut self, path: &str, xs: &[f64], ws: &[f64]) -> Result<(), String> {
        for (&x, &w) in xs.iter().zip(ws) {
            self.fill1(path, x, w)?;
        }
        Ok(())
    }
    /// Bulk 2-D fill, one [`Host::fill2`] per `(x, y)` pair in slice order.
    fn fill2_slice(&mut self, path: &str, xs: &[f64], ys: &[f64], w: f64) -> Result<(), String> {
        for (&x, &y) in xs.iter().zip(ys) {
            self.fill2(path, x, y, w)?;
        }
        Ok(())
    }
    /// Bulk profile fill, one [`Host::fill_profile`] per `(x, y)` pair in
    /// slice order.
    fn fill_profile_slice(
        &mut self,
        path: &str,
        xs: &[f64],
        ys: &[f64],
        w: f64,
    ) -> Result<(), String> {
        for (&x, &y) in xs.iter().zip(ys) {
            self.fill_profile(path, x, y, w)?;
        }
        Ok(())
    }
    /// Log a message from the script.
    fn log(&mut self, message: &str);
    /// Book an auto-ranging 1-D cloud (default: unsupported, so custom
    /// hosts only opt in when they can store one).
    fn book_cloud1(&mut self, path: &str) -> Result<(), String> {
        Err(format!("host cannot book cloud '{path}'"))
    }
    /// Fill a 1-D cloud.
    fn fill_cloud1(&mut self, path: &str, x: f64, w: f64) -> Result<(), String> {
        let _ = (x, w);
        Err(format!("host cannot fill cloud '{path}'"))
    }
    /// Book an ntuple with all-numeric columns (default: unsupported).
    fn book_tuple(&mut self, path: &str, columns: &[&str]) -> Result<(), String> {
        let _ = columns;
        Err(format!("host cannot book tuple '{path}'"))
    }
    /// Append one all-numeric row to an ntuple.
    fn fill_tuple(&mut self, path: &str, row: &[f64]) -> Result<(), String> {
        let _ = row;
        Err(format!("host cannot fill tuple '{path}'"))
    }
}

/// A host that ignores everything (for pure-computation tests).
pub struct NullHost;

impl Host for NullHost {
    fn book_h1(&mut self, _: &str, _: usize, _: f64, _: f64) -> Result<(), String> {
        Ok(())
    }
    fn book_h2(
        &mut self,
        _: &str,
        _: usize,
        _: f64,
        _: f64,
        _: usize,
        _: f64,
        _: f64,
    ) -> Result<(), String> {
        Ok(())
    }
    fn book_profile(&mut self, _: &str, _: usize, _: f64, _: f64) -> Result<(), String> {
        Ok(())
    }
    fn fill1(&mut self, _: &str, _: f64, _: f64) -> Result<(), String> {
        Ok(())
    }
    fn fill2(&mut self, _: &str, _: f64, _: f64, _: f64) -> Result<(), String> {
        Ok(())
    }
    fn fill_profile(&mut self, _: &str, _: f64, _: f64, _: f64) -> Result<(), String> {
        Ok(())
    }
    fn log(&mut self, _: &str) {}
}

/// [`Host`] implementation over an AIDA [`ipa_aida::Tree`].
#[derive(Debug, Default)]
pub struct AidaHost {
    /// The accumulated analysis results.
    pub tree: ipa_aida::Tree,
    /// Messages emitted by `log()`.
    pub messages: Vec<String>,
}

impl AidaHost {
    /// New empty host.
    pub fn new() -> Self {
        AidaHost::default()
    }
}

impl Host for AidaHost {
    fn book_h1(&mut self, path: &str, nbins: usize, lo: f64, hi: f64) -> Result<(), String> {
        if let Ok(obj) = self.tree.get(path) {
            return match obj.as_h1() {
                Some(_) => Ok(()), // idempotent re-book
                None => Err(format!("'{path}' already booked as {}", obj.kind())),
            };
        }
        self.tree
            .put(path, Histogram1D::new(path, nbins, lo, hi))
            .map_err(|e| e.to_string())
    }

    fn book_h2(
        &mut self,
        path: &str,
        nx: usize,
        xlo: f64,
        xhi: f64,
        ny: usize,
        ylo: f64,
        yhi: f64,
    ) -> Result<(), String> {
        if let Ok(obj) = self.tree.get(path) {
            return match obj.as_h2() {
                Some(_) => Ok(()),
                None => Err(format!("'{path}' already booked as {}", obj.kind())),
            };
        }
        self.tree
            .put(path, Histogram2D::new(path, nx, xlo, xhi, ny, ylo, yhi))
            .map_err(|e| e.to_string())
    }

    fn book_profile(&mut self, path: &str, nbins: usize, lo: f64, hi: f64) -> Result<(), String> {
        if let Ok(obj) = self.tree.get(path) {
            return match obj.as_p1() {
                Some(_) => Ok(()),
                None => Err(format!("'{path}' already booked as {}", obj.kind())),
            };
        }
        self.tree
            .put(path, Profile1D::new(path, nbins, lo, hi))
            .map_err(|e| e.to_string())
    }

    fn fill1(&mut self, path: &str, x: f64, w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::H1(h)) => {
                h.fill(x, w);
                Ok(())
            }
            Ok(other) => Err(format!(
                "'{path}' is a {}, not a 1-D histogram",
                other.kind()
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill2(&mut self, path: &str, x: f64, y: f64, w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::H2(h)) => {
                h.fill(x, y, w);
                Ok(())
            }
            Ok(other) => Err(format!(
                "'{path}' is a {}, not a 2-D histogram",
                other.kind()
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill_profile(&mut self, path: &str, x: f64, y: f64, w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::P1(p)) => {
                p.fill(x, y, w);
                Ok(())
            }
            Ok(other) => Err(format!("'{path}' is a {}, not a profile", other.kind())),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill1_slice(&mut self, path: &str, xs: &[f64], w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::H1(h)) => {
                h.fill_slice(xs, w);
                Ok(())
            }
            Ok(other) => Err(format!(
                "'{path}' is a {}, not a 1-D histogram",
                other.kind()
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill1_slice_weighted(&mut self, path: &str, xs: &[f64], ws: &[f64]) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::H1(h)) => {
                h.fill_slice_weighted(xs, ws);
                Ok(())
            }
            Ok(other) => Err(format!(
                "'{path}' is a {}, not a 1-D histogram",
                other.kind()
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill2_slice(&mut self, path: &str, xs: &[f64], ys: &[f64], w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::H2(h)) => {
                h.fill_slice(xs, ys, w);
                Ok(())
            }
            Ok(other) => Err(format!(
                "'{path}' is a {}, not a 2-D histogram",
                other.kind()
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    fn fill_profile_slice(
        &mut self,
        path: &str,
        xs: &[f64],
        ys: &[f64],
        w: f64,
    ) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::P1(p)) => {
                p.fill_slice(xs, ys, w);
                Ok(())
            }
            Ok(other) => Err(format!("'{path}' is a {}, not a profile", other.kind())),
            Err(e) => Err(e.to_string()),
        }
    }

    fn log(&mut self, message: &str) {
        self.messages.push(message.to_string());
    }

    fn book_cloud1(&mut self, path: &str) -> Result<(), String> {
        if let Ok(obj) = self.tree.get(path) {
            return match obj {
                ipa_aida::AidaObject::C1(_) => Ok(()),
                other => Err(format!("'{path}' already booked as {}", other.kind())),
            };
        }
        self.tree
            .put(path, ipa_aida::Cloud1D::new(path))
            .map_err(|e| e.to_string())
    }

    fn fill_cloud1(&mut self, path: &str, x: f64, w: f64) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::C1(c)) => {
                c.fill(x, w);
                Ok(())
            }
            Ok(other) => Err(format!("'{path}' is a {}, not a cloud", other.kind())),
            Err(e) => Err(e.to_string()),
        }
    }

    fn book_tuple(&mut self, path: &str, columns: &[&str]) -> Result<(), String> {
        if let Ok(obj) = self.tree.get(path) {
            return match obj.as_tuple() {
                Some(t)
                    if t.column_names()
                        .iter()
                        .map(String::as_str)
                        .eq(columns.iter().copied()) =>
                {
                    Ok(())
                }
                Some(_) => Err(format!("'{path}' already booked with a different schema")),
                None => Err(format!("'{path}' already booked as {}", obj.kind())),
            };
        }
        let schema: Vec<(&str, ipa_aida::ColumnType)> = columns
            .iter()
            .map(|c| (*c, ipa_aida::ColumnType::Float))
            .collect();
        self.tree
            .put(path, ipa_aida::Tuple::new(path, &schema))
            .map_err(|e| e.to_string())
    }

    fn fill_tuple(&mut self, path: &str, row: &[f64]) -> Result<(), String> {
        match self.tree.get_mut(path) {
            Ok(ipa_aida::AidaObject::Tup(t)) => {
                let cells: Vec<ipa_aida::Value> =
                    row.iter().map(|&v| ipa_aida::Value::Float(v)).collect();
                t.fill_row(&cells).map_err(|e| e.to_string())
            }
            Ok(other) => Err(format!("'{path}' is a {}, not a tuple", other.kind())),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Control flow out of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// The interpreter: program + global state. One interpreter lives inside
/// each analysis engine; `process_record` is the per-event hot path.
pub struct Interpreter {
    functions: HashMap<String, Arc<Function>>,
    top_level: Arc<Vec<Stmt>>,
    globals: HashMap<String, Value>,
    /// Per-entry-point fuel budget.
    fuel_budget: u64,
    fuel: u64,
    depth: usize,
}

impl Interpreter {
    /// Build an interpreter for a compiled program.
    pub fn new(program: &Program) -> Self {
        Interpreter {
            functions: program.functions.clone(),
            top_level: program.top_level.clone(),
            globals: HashMap::new(),
            fuel_budget: DEFAULT_FUEL,
            fuel: DEFAULT_FUEL,
            depth: 0,
        }
    }

    /// Override the per-call fuel budget (tests and paranoid deployments).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_budget = fuel;
        // Also reset the current tank: entry points that don't refill
        // (`call_function`) must see the new budget immediately.
        self.fuel = fuel;
        self
    }

    /// Run top-level statements then `init()` if defined. Call once per run.
    pub fn run_init(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        self.fuel = self.fuel_budget;
        // Clone the Arc, not the statements — run_init may be called per
        // hot-reload and the top level can be arbitrarily large.
        let stmts = Arc::clone(&self.top_level);
        let mut locals = HashMap::new();
        for s in stmts.iter() {
            // Top-level lets create globals.
            match self.exec(s, &mut locals, host)? {
                Flow::Normal => {}
                _ => break,
            }
        }
        // Promote top-level locals to globals.
        self.globals.extend(locals);
        if self.functions.contains_key("init") {
            self.call_function("init", vec![], host)?;
        }
        Ok(())
    }

    /// Feed one record to `process(record)`. Convenience wrapper that
    /// copies the record into its own allocation; hot paths should use
    /// [`Interpreter::process_ref`] with a shared handle instead.
    pub fn process_record(
        &mut self,
        host: &mut dyn Host,
        record: &ipa_dataset::AnyRecord,
    ) -> Result<(), ScriptError> {
        self.process_ref(host, RecordRef::one(Arc::new(record.clone())))
    }

    /// Feed one pre-shared record to `process(record)` without cloning.
    pub fn process_shared(
        &mut self,
        host: &mut dyn Host,
        record: Arc<ipa_dataset::AnyRecord>,
    ) -> Result<(), ScriptError> {
        self.process_ref(host, RecordRef::one(record))
    }

    /// Feed one record handle to `process(record)` — the hot path; only
    /// the `Arc` inside the handle is cloned, never the record data.
    pub fn process_ref(
        &mut self,
        host: &mut dyn Host,
        record: RecordRef,
    ) -> Result<(), ScriptError> {
        if !self.functions.contains_key("process") {
            return Err(ScriptError::MissingEntryPoint("process"));
        }
        self.fuel = self.fuel_budget;
        self.call_function("process", vec![Value::Record(record)], host)?;
        Ok(())
    }

    /// Run `end()` if defined. Call after the last record.
    pub fn run_end(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        if self.functions.contains_key("end") {
            self.fuel = self.fuel_budget;
            self.call_function("end", vec![], host)?;
        }
        Ok(())
    }

    /// Call a named user function with arguments.
    pub fn call_function(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let Some(f) = self.functions.get(name).cloned() else {
            return Err(ScriptError::runtime(
                format!("unknown function '{name}'"),
                0,
            ));
        };
        if args.len() != f.params.len() {
            return Err(ScriptError::runtime(
                format!(
                    "function '{name}' takes {} arguments, got {}",
                    f.params.len(),
                    args.len()
                ),
                f.line,
            ));
        }
        if self.depth >= MAX_DEPTH {
            return Err(ScriptError::StackOverflow);
        }
        self.depth += 1;
        let mut locals: HashMap<String, Value> = f.params.iter().cloned().zip(args).collect();
        let mut result = Value::Null;
        let mut error = None;
        for s in &f.body {
            match self.exec(s, &mut locals, host) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(Flow::Normal) => {}
                Ok(Flow::Break) | Ok(Flow::Continue) => {
                    error = Some(ScriptError::runtime(
                        "break/continue outside a loop",
                        f.line,
                    ));
                    break;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        self.depth -= 1;
        match error {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// Read a global variable (inspection from tests/tools).
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    fn burn(&mut self, line: u32) -> Result<(), ScriptError> {
        let _ = line;
        match self.fuel.checked_sub(1) {
            Some(f) => {
                self.fuel = f;
                Ok(())
            }
            None => Err(ScriptError::OutOfFuel),
        }
    }

    fn exec(
        &mut self,
        stmt: &Stmt,
        locals: &mut HashMap<String, Value>,
        host: &mut dyn Host,
    ) -> Result<Flow, ScriptError> {
        match stmt {
            Stmt::Let { name, value } => {
                let v = self.eval(value, locals, host)?;
                locals.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, locals, host)?;
                match target {
                    AssignTarget::Var(name) => {
                        if let Some(slot) = locals.get_mut(name) {
                            *slot = v;
                        } else if let Some(slot) = self.globals.get_mut(name) {
                            *slot = v;
                        } else {
                            // Implicit creation in the current scope.
                            locals.insert(name.clone(), v);
                        }
                    }
                    AssignTarget::Index { name, index } => {
                        let idx = self.eval(index, locals, host)?;
                        let i = index_to_usize(&idx, index.line)?;
                        let slot = locals
                            .get_mut(name)
                            .or_else(|| self.globals.get_mut(name))
                            .ok_or_else(|| {
                                ScriptError::runtime(
                                    format!("unknown variable '{name}'"),
                                    index.line,
                                )
                            })?;
                        store_index(slot, name, i, v, index.line)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, locals, host)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let branch = if self.eval(cond, locals, host)?.truthy() {
                    then
                } else {
                    otherwise
                };
                for s in branch {
                    match self.exec(s, locals, host)? {
                        Flow::Normal => {}
                        flow => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, locals, host)?.truthy() {
                    self.burn(cond.line)?;
                    let mut broke = false;
                    for s in body {
                        match self.exec(s, locals, host)? {
                            Flow::Normal => {}
                            Flow::Continue => break,
                            Flow::Break => {
                                broke = true;
                                break;
                            }
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                    }
                    if broke {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body } => {
                let items: Vec<Value> = match &iter.kind {
                    ExprKind::Range { start, end } => {
                        let s = self.eval(start, locals, host)?.as_num().ok_or_else(|| {
                            ScriptError::runtime("range start must be numeric", iter.line)
                        })?;
                        let e = self.eval(end, locals, host)?.as_num().ok_or_else(|| {
                            ScriptError::runtime("range end must be numeric", iter.line)
                        })?;
                        let mut v = Vec::new();
                        let mut x = s;
                        while x < e {
                            self.burn(iter.line)?;
                            v.push(Value::Num(x));
                            x += 1.0;
                        }
                        v
                    }
                    _ => match self.eval(iter, locals, host)? {
                        Value::Array(a) => a,
                        other => {
                            return Err(ScriptError::runtime(
                                format!("cannot iterate a {}", other.type_name()),
                                iter.line,
                            ))
                        }
                    },
                };
                'outer: for item in items {
                    self.burn(iter.line)?;
                    locals.insert(var.clone(), item);
                    for s in body {
                        match self.exec(s, locals, host)? {
                            Flow::Normal => {}
                            Flow::Continue => continue 'outer,
                            Flow::Break => break 'outer,
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, locals, host)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        locals: &mut HashMap<String, Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        self.burn(expr.line)?;
        match &expr.kind {
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Num(n) => Ok(Value::Num(*n)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, locals, host)?);
                }
                Ok(Value::Array(out))
            }
            ExprKind::Var(name) => locals
                .get(name)
                .or_else(|| self.globals.get(name))
                .cloned()
                .ok_or_else(|| {
                    ScriptError::runtime(format!("unknown variable '{name}'"), expr.line)
                }),
            ExprKind::Unary { op, expr: inner } => {
                let v = self.eval(inner, locals, host)?;
                eval_unary(*op, &v, expr.line)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.eval_binary(*op, lhs, rhs, locals, host, expr.line)
            }
            ExprKind::Index { target, index } => {
                let t = self.eval(target, locals, host)?;
                let i = self.eval(index, locals, host)?;
                index_value(t, &i, expr.line)
            }
            ExprKind::Field { target, field } => {
                let t = self.eval(target, locals, host)?;
                field_value(&t, field, expr.line)
            }
            ExprKind::Range { .. } => Err(ScriptError::runtime(
                "a range is only valid in 'for … in'",
                expr.line,
            )),
            ExprKind::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, locals, host)?);
                }
                // Builtins shadow nothing: user functions win on name clash.
                if self.functions.contains_key(name.as_str()) {
                    return self.call_function(name, vals, host);
                }
                match call_builtin(name, &vals, expr.line, host) {
                    Some(r) => r,
                    None => Err(ScriptError::runtime(
                        format!("unknown function '{name}'"),
                        expr.line,
                    )),
                }
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        locals: &mut HashMap<String, Value>,
        host: &mut dyn Host,
        line: u32,
    ) -> Result<Value, ScriptError> {
        // Short-circuit logical operators.
        match op {
            BinOp::And => {
                let l = self.eval(lhs, locals, host)?;
                if !l.truthy() {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval(rhs, locals, host)?;
                return Ok(Value::Bool(r.truthy()));
            }
            BinOp::Or => {
                let l = self.eval(lhs, locals, host)?;
                if l.truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval(rhs, locals, host)?;
                return Ok(Value::Bool(r.truthy()));
            }
            _ => {}
        }
        let l = self.eval(lhs, locals, host)?;
        let r = self.eval(rhs, locals, host)?;
        eval_binary_values(op, &l, &r, line)
    }
}

// ---------------------------------------------------------------------------
// Shared semantics. Both backends (tree-walk above, bytecode VM in
// `crate::vm`) funnel operator, indexing, and field-access behavior through
// these helpers so results and error messages stay bit-for-bit identical.

/// Apply a unary operator.
pub(crate) fn eval_unary(op: UnOp, v: &Value, line: u32) -> Result<Value, ScriptError> {
    match op {
        UnOp::Neg => v.as_num().map(|n| Value::Num(-n)).ok_or_else(|| {
            ScriptError::runtime(format!("cannot negate a {}", v.type_name()), line)
        }),
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
    }
}

/// Apply a non-short-circuit binary operator to two evaluated operands.
/// `And`/`Or` must be short-circuited by the caller.
pub(crate) fn eval_binary_values(
    op: BinOp,
    l: &Value,
    r: &Value,
    line: u32,
) -> Result<Value, ScriptError> {
    match op {
        BinOp::Eq => Ok(Value::Bool(l.equals(r))),
        BinOp::Ne => Ok(Value::Bool(!l.equals(r))),
        BinOp::Add => match (l, r) {
            (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
            (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            _ => arith(op, l, r, line),
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => arith(op, l, r, line),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
                return Err(ScriptError::runtime(
                    format!("cannot order {} and {}", l.type_name(), r.type_name()),
                    line,
                ));
            };
            let out = match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(out))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are evaluated by the caller"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value, line: u32) -> Result<Value, ScriptError> {
    let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
        return Err(ScriptError::runtime(
            format!(
                "arithmetic needs numbers, got {} and {}",
                l.type_name(),
                r.type_name()
            ),
            line,
        ));
    };
    let out = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        _ => unreachable!(),
    };
    Ok(Value::Num(out))
}

/// Read `target[index]` (array element or string character).
pub(crate) fn index_value(target: Value, index: &Value, line: u32) -> Result<Value, ScriptError> {
    let i = index
        .as_num()
        .ok_or_else(|| ScriptError::runtime("index must be numeric", line))? as usize;
    match target {
        Value::Array(a) => a.get(i).cloned().ok_or_else(|| {
            ScriptError::runtime(format!("index {i} out of bounds (len {})", a.len()), line)
        }),
        Value::Str(s) => s
            .chars()
            .nth(i)
            .map(|c| Value::Str(c.to_string()))
            .ok_or_else(|| ScriptError::runtime(format!("index {i} out of string bounds"), line)),
        other => Err(ScriptError::runtime(
            format!("cannot index a {}", other.type_name()),
            line,
        )),
    }
}

/// Read `target.field` (record field access).
pub(crate) fn field_value(target: &Value, field: &str, line: u32) -> Result<Value, ScriptError> {
    let Value::Record(r) = target else {
        return Err(ScriptError::runtime(
            format!("cannot access field '.{field}' on a {}", target.type_name()),
            line,
        ));
    };
    match ipa_dataset::RecordFields::field(r.get(), field) {
        Some(f) => Ok(Value::from_field(f)),
        None => Err(ScriptError::runtime(
            format!("record kind '{}' has no field '{field}'", r.kind()),
            line,
        )),
    }
}

/// Convert an index-assignment index operand (checked before the variable
/// itself is resolved — that order is observable through error messages).
pub(crate) fn index_to_usize(index: &Value, line: u32) -> Result<usize, ScriptError> {
    Ok(index
        .as_num()
        .ok_or_else(|| ScriptError::runtime("array index must be numeric", line))? as usize)
}

/// Store `v` into `slot[i]` for an index assignment `name[i] = v`.
pub(crate) fn store_index(
    slot: &mut Value,
    name: &str,
    i: usize,
    v: Value,
    line: u32,
) -> Result<(), ScriptError> {
    let Value::Array(a) = slot else {
        return Err(ScriptError::runtime(
            format!("'{name}' is not an array"),
            line,
        ));
    };
    if i >= a.len() {
        return Err(ScriptError::runtime(
            format!("index {i} out of bounds (len {})", a.len()),
            line,
        ));
    }
    a[i] = v;
    Ok(())
}

impl crate::ScriptEngine for Interpreter {
    fn run_init(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        Interpreter::run_init(self, host)
    }

    fn process(&mut self, host: &mut dyn Host, record: RecordRef) -> Result<(), ScriptError> {
        self.process_ref(host, record)
    }

    fn run_end(&mut self, host: &mut dyn Host) -> Result<(), ScriptError> {
        Interpreter::run_end(self, host)
    }

    fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        self.call_function(name, args, host)
    }

    fn global(&self, name: &str) -> Option<Value> {
        self.globals.get(name).cloned()
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel_budget = fuel;
        self.fuel = fuel;
    }

    fn backend(&self) -> crate::ScriptBackend {
        crate::ScriptBackend::Interp
    }

    fn fuel_budget(&self) -> u64 {
        self.fuel_budget
    }
}

//! IPAScript recursive-descent parser.

use std::sync::Arc;

use crate::ast::*;
use crate::error::ScriptError;
use crate::lexer::{lex, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ScriptError {
        let t = &self.toks[self.pos];
        ScriptError::Syntax {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ScriptError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------ items --

    fn parse_program(&mut self, source: &str) -> Result<Program, ScriptError> {
        let mut program = Program {
            source: source.to_string(),
            ..Program::default()
        };
        let mut top_level = Vec::new();
        while *self.peek() != Tok::Eof {
            if *self.peek() == Tok::Fn {
                let f = self.parse_function()?;
                if program.functions.contains_key(&f.name) {
                    return Err(self.err(format!("function '{}' defined twice", f.name)));
                }
                program.functions.insert(f.name.clone(), Arc::new(f));
            } else {
                top_level.push(self.parse_stmt()?);
            }
        }
        program.top_level = Arc::new(top_level);
        Ok(program)
    }

    fn parse_function(&mut self) -> Result<Function, ScriptError> {
        let line = self.line();
        self.expect(Tok::Fn, "'fn'")?;
        let name = match self.bump() {
            Tok::Ident(n) => n,
            _ => return Err(self.err("expected function name")),
        };
        self.expect(Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                match self.bump() {
                    Tok::Ident(p) => params.push(p),
                    _ => return Err(self.err("expected parameter name")),
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        let body = self.parse_block()?;
        Ok(Function {
            name,
            params,
            body,
            line,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block (missing '}')"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.bump(); // consume '}'
        Ok(stmts)
    }

    // ------------------------------------------------------- statements --

    fn parse_stmt(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek() {
            Tok::Let => {
                self.bump();
                let name = match self.bump() {
                    Tok::Ident(n) => n,
                    _ => return Err(self.err("expected variable name after 'let'")),
                };
                self.expect(Tok::Assign, "'='")?;
                let value = self.parse_expr()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Let { name, value })
            }
            Tok::If => self.parse_if(),
            Tok::While => {
                self.bump();
                let cond = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::For => {
                self.bump();
                let var = match self.bump() {
                    Tok::Ident(n) => n,
                    _ => return Err(self.err("expected loop variable after 'for'")),
                };
                self.expect(Tok::In, "'in'")?;
                let iter = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::For { var, iter, body })
            }
            Tok::Return => {
                self.bump();
                let value = if *self.peek() == Tok::Semi || *self.peek() == Tok::RBrace {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.eat(&Tok::Semi);
                Ok(Stmt::Return(value))
            }
            Tok::Break => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Continue)
            }
            _ => {
                // Expression statement or assignment.
                let expr = self.parse_expr()?;
                if self.eat(&Tok::Assign) {
                    let target = match &expr.kind {
                        ExprKind::Var(name) => AssignTarget::Var(name.clone()),
                        ExprKind::Index { target, index } => {
                            let ExprKind::Var(name) = &target.kind else {
                                return Err(self.err("can only assign to variables or elements"));
                            };
                            AssignTarget::Index {
                                name: name.clone(),
                                index: (**index).clone(),
                            }
                        }
                        _ => return Err(self.err("invalid assignment target")),
                    };
                    let value = self.parse_expr()?;
                    self.eat(&Tok::Semi);
                    Ok(Stmt::Assign { target, value })
                } else {
                    self.eat(&Tok::Semi);
                    Ok(Stmt::Expr(expr))
                }
            }
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ScriptError> {
        self.expect(Tok::If, "'if'")?;
        let cond = self.parse_expr()?;
        let then = self.parse_block()?;
        let otherwise = if self.eat(&Tok::Else) {
            if *self.peek() == Tok::If {
                vec![self.parse_if()?]
            } else {
                self.parse_block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
        })
    }

    // ------------------------------------------------------ expressions --

    fn parse_expr(&mut self) -> Result<Expr, ScriptError> {
        self.parse_range()
    }

    fn parse_range(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        let lhs = self.parse_or()?;
        if self.eat(&Tok::DotDot) {
            let rhs = self.parse_or()?;
            Ok(Expr {
                kind: ExprKind::Range {
                    start: Box::new(lhs),
                    end: Box::new(rhs),
                },
                line,
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == Tok::OrOr {
            let line = self.line();
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_cmp()?;
        while *self.peek() == Tok::AndAnd {
            let line = self.line();
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr {
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            line,
        })
    }

    fn parse_add(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(expr),
                    },
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(expr),
                    },
                    line,
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    let line = self.line();
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect(Tok::RBracket, "']'")?;
                    expr = Expr {
                        kind: ExprKind::Index {
                            target: Box::new(expr),
                            index: Box::new(index),
                        },
                        line,
                    };
                }
                Tok::Dot => {
                    let line = self.line();
                    self.bump();
                    let field = match self.bump() {
                        Tok::Ident(f) => f,
                        _ => return Err(self.err("expected field name after '.'")),
                    };
                    expr = Expr {
                        kind: ExprKind::Field {
                            target: Box::new(expr),
                            field,
                        },
                        line,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Null => ExprKind::Null,
            Tok::True => ExprKind::Bool(true),
            Tok::False => ExprKind::Bool(false),
            Tok::Num(n) => ExprKind::Num(n),
            Tok::Str(s) => ExprKind::Str(s),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                return Ok(e);
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket, "']'")?;
                ExprKind::Array(items)
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                    ExprKind::Call { name, args }
                } else {
                    ExprKind::Var(name)
                }
            }
            other => return Err(self.err(format!("unexpected token {other:?} in expression"))),
        };
        Ok(Expr { kind, line })
    }
}

/// Compile IPAScript source into a [`Program`].
pub fn compile(source: &str) -> Result<Program, ScriptError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program(source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_definitions() {
        let p = compile("fn init() { }\nfn process(event) { let x = 1; }").unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.has_process());
        assert_eq!(p.function("process").unwrap().params, vec!["event"]);
    }

    #[test]
    fn duplicate_function_rejected() {
        assert!(compile("fn a() {}\nfn a() {}").is_err());
    }

    #[test]
    fn precedence_mul_over_add_over_cmp_over_and_over_or() {
        let p = compile("let r = 1 + 2 * 3 < 10 && true || false;").unwrap();
        let Stmt::Let { value, .. } = &p.top_level[0] else {
            panic!("expected let")
        };
        // Top node must be Or.
        let ExprKind::Binary {
            op: BinOp::Or, lhs, ..
        } = &value.kind
        else {
            panic!("top is {:?}", value.kind)
        };
        let ExprKind::Binary {
            op: BinOp::And,
            lhs: cmp,
            ..
        } = &lhs.kind
        else {
            panic!("lhs is {:?}", lhs.kind)
        };
        assert!(matches!(cmp.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn if_else_if_chain() {
        let p = compile(
            "fn f(x) { if x > 1 { return 1; } else if x > 0 { return 2; } else { return 3; } }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let Stmt::If { otherwise, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(otherwise[0], Stmt::If { .. }));
    }

    #[test]
    fn for_over_range_and_array() {
        compile("fn f() { for i in 0..10 { } for x in [1,2,3] { } }").unwrap();
    }

    #[test]
    fn field_and_index_postfix() {
        let p = compile("let a = event.bb_mass; let b = xs[2];").unwrap();
        let Stmt::Let { value, .. } = &p.top_level[0] else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Field { .. }));
        let Stmt::Let { value, .. } = &p.top_level[1] else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn assignment_targets() {
        compile("x = 1; xs[0] = 2;").unwrap();
        assert!(compile("f() = 1;").is_err());
        assert!(compile("a.b = 1;").is_err());
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = compile("fn f( { }").unwrap_err();
        match err {
            ScriptError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
        assert!(compile("fn f() { if }").is_err());
        assert!(compile("fn f() {").is_err());
        assert!(compile("let = 3;").is_err());
    }

    #[test]
    fn semicolons_are_optional_after_blocks() {
        compile("fn f() { let a = 1\n let b = 2 }").unwrap();
    }

    #[test]
    fn call_with_args() {
        let p = compile("fill(\"/h\", 1.0, 2.0);").unwrap();
        let Stmt::Expr(e) = &p.top_level[0] else {
            panic!()
        };
        let ExprKind::Call { name, args } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "fill");
        assert_eq!(args.len(), 3);
    }
}

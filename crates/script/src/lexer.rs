//! IPAScript lexer.

use crate::error::ScriptError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / names
    /// Numeric literal.
    Num(f64),
    /// String literal (escapes already processed).
    Str(String),
    /// Identifier.
    Ident(String),
    // keywords
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    // punctuation / operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> ScriptError {
        ScriptError::Syntax {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }
}

/// Tokenize IPAScript source. `//` and `#` start line comments.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match lx.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    lx.bump();
                }
                Some(b'#') => {
                    while lx.peek().is_some_and(|c| c != b'\n') {
                        lx.bump();
                    }
                }
                Some(b'/') if lx.peek2() == Some(b'/') => {
                    while lx.peek().is_some_and(|c| c != b'\n') {
                        lx.bump();
                    }
                }
                _ => break,
            }
        }
        let (line, col) = (lx.line, lx.col);
        let Some(c) = lx.peek() else {
            out.push(Token {
                tok: Tok::Eof,
                line,
                col,
            });
            return Ok(out);
        };
        let tok = match c {
            b'(' => {
                lx.bump();
                Tok::LParen
            }
            b')' => {
                lx.bump();
                Tok::RParen
            }
            b'{' => {
                lx.bump();
                Tok::LBrace
            }
            b'}' => {
                lx.bump();
                Tok::RBrace
            }
            b'[' => {
                lx.bump();
                Tok::LBracket
            }
            b']' => {
                lx.bump();
                Tok::RBracket
            }
            b',' => {
                lx.bump();
                Tok::Comma
            }
            b';' => {
                lx.bump();
                Tok::Semi
            }
            b'.' => {
                lx.bump();
                if lx.peek() == Some(b'.') {
                    lx.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            b'+' => {
                lx.bump();
                Tok::Plus
            }
            b'-' => {
                lx.bump();
                Tok::Minus
            }
            b'*' => {
                lx.bump();
                Tok::Star
            }
            b'/' => {
                lx.bump();
                Tok::Slash
            }
            b'%' => {
                lx.bump();
                Tok::Percent
            }
            b'=' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Eq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            b'<' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'&' => {
                lx.bump();
                if lx.peek() == Some(b'&') {
                    lx.bump();
                    Tok::AndAnd
                } else {
                    return Err(lx.err("expected '&&'"));
                }
            }
            b'|' => {
                lx.bump();
                if lx.peek() == Some(b'|') {
                    lx.bump();
                    Tok::OrOr
                } else {
                    return Err(lx.err("expected '||'"));
                }
            }
            b'"' => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        None => return Err(lx.err("unterminated string")),
                        Some(b'"') => break,
                        Some(b'\\') => match lx.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            other => {
                                return Err(lx.err(format!(
                                    "bad escape '\\{}'",
                                    other.map(|c| c as char).unwrap_or(' ')
                                )))
                            }
                        },
                        Some(other) if other < 0x80 => s.push(other as char),
                        Some(lead) => {
                            // Multi-byte UTF-8 sequence: consume the full
                            // sequence and append it verbatim, so literals
                            // like "µ→bb" survive instead of being
                            // re-encoded byte-by-byte as Latin-1 mojibake.
                            let extra = match lead {
                                0xC2..=0xDF => 1,
                                0xE0..=0xEF => 2,
                                0xF0..=0xF4 => 3,
                                _ => return Err(lx.err("invalid UTF-8 in string literal")),
                            };
                            let start = lx.pos - 1;
                            for _ in 0..extra {
                                match lx.bump() {
                                    Some(b) if (0x80..=0xBF).contains(&b) => {}
                                    _ => return Err(lx.err("invalid UTF-8 in string literal")),
                                }
                            }
                            match std::str::from_utf8(&lx.src[start..lx.pos]) {
                                Ok(seq) => s.push_str(seq),
                                Err(_) => return Err(lx.err("invalid UTF-8 in string literal")),
                            }
                        }
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                let start = lx.pos;
                while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                }
                // Fractional part — but not the range operator `..`.
                if lx.peek() == Some(b'.') && lx.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                    while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                        lx.bump();
                    }
                }
                if matches!(lx.peek(), Some(b'e') | Some(b'E')) {
                    lx.bump();
                    if matches!(lx.peek(), Some(b'+') | Some(b'-')) {
                        lx.bump();
                    }
                    while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                        lx.bump();
                    }
                }
                let text = std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii digits");
                let n: f64 = text
                    .parse()
                    .map_err(|_| lx.err(format!("bad number '{text}'")))?;
                Tok::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = lx.pos;
                while lx
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    lx.bump();
                }
                let word = std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii ident");
                match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => {
                // Outside string literals the language is ASCII; report the
                // whole (possibly multi-byte) character, not its lead byte.
                let ch = std::str::from_utf8(&lx.src[lx.pos..])
                    .ok()
                    .and_then(|rest| rest.chars().next())
                    .unwrap_or(other as char);
                return Err(lx.err(format!("unexpected character '{ch}'")));
            }
        };
        out.push(Token { tok, line, col });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("let x = 1 + 2.5;"),
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(1.0),
                Tok::Plus,
                Tok::Num(2.5),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_disambiguate() {
        assert_eq!(
            kinds("== = != ! <= < >= > && || .."),
            vec![
                Tok::Eq,
                Tok::Assign,
                Tok::Ne,
                Tok::Bang,
                Tok::Le,
                Tok::Lt,
                Tok::Ge,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_vs_float() {
        assert_eq!(
            kinds("0..10"),
            vec![Tok::Num(0.0), Tok::DotDot, Tok::Num(10.0), Tok::Eof]
        );
        assert_eq!(kinds("0.5"), vec![Tok::Num(0.5), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Num(1000.0), Tok::Eof]);
        assert_eq!(kinds("1e-3"), vec![Tok::Num(0.001), Tok::Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
    }

    #[test]
    fn multibyte_string_literals_survive() {
        // Two-, three-, and four-byte UTF-8 sequences round-trip intact.
        assert_eq!(kinds("\"µ→bb\""), vec![Tok::Str("µ→bb".into()), Tok::Eof]);
        assert_eq!(
            kinds("\"αβγ 𝛘² ok\""),
            vec![Tok::Str("αβγ 𝛘² ok".into()), Tok::Eof]
        );
        // Mixed with escapes.
        assert_eq!(kinds(r#""µ\n→""#), vec![Tok::Str("µ\n→".into()), Tok::Eof]);
    }

    #[test]
    fn non_ascii_outside_strings_is_an_error() {
        let err = lex("let µ = 1;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unexpected character 'µ'"), "got: {msg}");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment\n# another\n2"),
            vec![Tok::Num(1.0), Tok::Num(2.0), Tok::Eof]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("fn format input"),
            vec![
                Tok::Fn,
                Tok::Ident("format".into()),
                Tok::Ident("input".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("let\n  x").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn lexer_errors() {
        assert!(lex("\"open").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn field_access_dot() {
        assert_eq!(
            kinds("event.bb_mass"),
            vec![
                Tok::Ident("event".into()),
                Tok::Dot,
                Tok::Ident("bb_mass".into()),
                Tok::Eof
            ]
        );
    }
}

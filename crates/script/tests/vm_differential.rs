//! Differential tests: the bytecode VM against the tree-walk oracle.
//!
//! Random programs — including ones that error at runtime — are executed
//! by both backends through the full analysis lifecycle, and the entire
//! observable transcript must match: every `Result` (errors compared
//! exactly, message and line included), every global, every host message,
//! and the final AIDA tree bin-for-bin. Both backends funnel operator and
//! builtin semantics through shared helpers, so any divergence here is a
//! compiler or VM bug, not a formatting nit.

use std::sync::Arc;

use proptest::prelude::*;

use ipa_dataset::{AnyRecord, CollisionEvent, DnaRead, FourVector, Particle};
use ipa_script::{compile, engine_for, AidaHost, NullHost, RecordRef, ScriptBackend, ScriptError};

fn higgs_event(mass_pair: f64) -> AnyRecord {
    let half = mass_pair / 2.0;
    AnyRecord::Event(CollisionEvent {
        event_id: 7,
        run: 3,
        sqrt_s: 500.0,
        is_signal: false,
        particles: vec![
            Particle::new(5, -1.0 / 3.0, FourVector::new(half, half, 0.0, 0.0)),
            Particle::new(-5, 1.0 / 3.0, FourVector::new(half, -half, 0.0, 0.0)),
        ],
    })
}

fn dna_read() -> AnyRecord {
    AnyRecord::Dna(DnaRead {
        read_id: 9,
        sample: 1,
        bases: "GATTACAGATTACA".into(),
        quality: 31.5,
    })
}

/// Run the full lifecycle on one backend and record everything a user
/// could observe. Trees are compared separately (they don't Debug-print
/// their full contents).
fn transcript(
    src: &str,
    backend: ScriptBackend,
    records: &[AnyRecord],
) -> (Vec<String>, ipa_aida::Tree) {
    let p = compile(src).expect("generated source parses");
    let mut e = engine_for(&p, backend).expect("program resolves");
    let mut host = AidaHost::new();
    let mut out = Vec::new();
    out.push(format!("init: {:?}", e.run_init(&mut host)));
    for r in records {
        out.push(format!(
            "process: {:?}",
            e.process(&mut host, RecordRef::one(Arc::new(r.clone())))
        ));
    }
    out.push(format!("end: {:?}", e.run_end(&mut host)));
    out.push(format!("main: {:?}", e.call("main", vec![], &mut host)));
    for g in ["g0", "g1", "a", "b"] {
        out.push(format!("global {g}: {:?}", e.global(g)));
    }
    out.push(format!("messages: {:?}", host.messages));
    (out, host.tree)
}

fn assert_backends_agree(src: &str, records: &[AnyRecord]) {
    let (interp_log, interp_tree) = transcript(src, ScriptBackend::Interp, records);
    let (vm_log, vm_tree) = transcript(src, ScriptBackend::Vm, records);
    assert_eq!(interp_log, vm_log, "transcript diverged for:\n{src}");
    assert_eq!(interp_tree, vm_tree, "result tree diverged for:\n{src}");
}

// ---------------------------------------------------------------------------
// Random program generation. Variables draw from a small pool that mixes
// locals, globals, a `process`-bound name, and a deliberately unbound name,
// so unknown-variable error paths get exercised alongside happy paths.

const VARS: [&str; 6] = ["a", "b", "m", "g0", "g1", "mystery"];
const BINOPS: [&str; 13] = [
    "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
];
const FN1: [&str; 5] = ["abs", "floor", "ceil", "round", "sqrt"];

#[derive(Debug, Clone)]
enum GExpr {
    Num(i32),
    Var(u8),
    Bin(u8, Box<GExpr>, Box<GExpr>),
    Neg(Box<GExpr>),
    Not(Box<GExpr>),
    Call1(u8, Box<GExpr>),
    Helper(Box<GExpr>, Box<GExpr>),
    Arr(Vec<GExpr>),
    Idx(Box<GExpr>, Box<GExpr>),
    UnknownCall(Box<GExpr>),
}

impl GExpr {
    fn render(&self, out: &mut String) {
        match self {
            GExpr::Num(n) => {
                if *n < 0 {
                    out.push_str(&format!("({n})"));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            GExpr::Var(i) => out.push_str(VARS[*i as usize % VARS.len()]),
            GExpr::Bin(op, l, r) => {
                out.push('(');
                l.render(out);
                out.push_str(&format!(" {} ", BINOPS[*op as usize % BINOPS.len()]));
                r.render(out);
                out.push(')');
            }
            GExpr::Neg(e) => {
                out.push_str("(-");
                e.render(out);
                out.push(')');
            }
            GExpr::Not(e) => {
                out.push_str("(!");
                e.render(out);
                out.push(')');
            }
            GExpr::Call1(f, e) => {
                out.push_str(FN1[*f as usize % FN1.len()]);
                out.push('(');
                e.render(out);
                out.push(')');
            }
            GExpr::Helper(x, y) => {
                out.push_str("helper(");
                x.render(out);
                out.push_str(", ");
                y.render(out);
                out.push(')');
            }
            GExpr::Arr(items) => {
                out.push('[');
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.render(out);
                }
                out.push(']');
            }
            GExpr::Idx(t, i) => {
                t.render(out);
                out.push('[');
                i.render(out);
                out.push(']');
            }
            GExpr::UnknownCall(e) => {
                out.push_str("no_such_fn(");
                e.render(out);
                out.push(')');
            }
        }
    }
}

#[derive(Debug, Clone)]
enum GStmt {
    Let(u8, GExpr),
    Assign(u8, GExpr),
    ExprStmt(GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    For(u8, u8, Vec<GStmt>),
    Log(GExpr),
}

impl GStmt {
    fn render(&self, out: &mut String) {
        match self {
            GStmt::Let(v, e) => {
                out.push_str("let ");
                out.push_str(VARS[*v as usize % 3]); // only a/b/m bind locally
                out.push_str(" = ");
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::Assign(v, e) => {
                out.push_str(VARS[*v as usize % VARS.len()]);
                out.push_str(" = ");
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::ExprStmt(e) => {
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::If(c, t, f) => {
                out.push_str("if ");
                c.render(out);
                out.push_str(" {\n");
                for s in t {
                    s.render(out);
                }
                out.push('}');
                if !f.is_empty() {
                    out.push_str(" else {\n");
                    for s in f {
                        s.render(out);
                    }
                    out.push('}');
                }
                out.push('\n');
            }
            GStmt::For(v, n, body) => {
                out.push_str("for ");
                out.push_str(VARS[*v as usize % 2]); // a or b
                out.push_str(&format!(" in 0..{} {{\n", n % 5));
                for s in body {
                    s.render(out);
                }
                out.push_str("}\n");
            }
            GStmt::Log(e) => {
                out.push_str("log(str(");
                e.render(out);
                out.push_str("));\n");
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(GExpr::Num),
        (0u8..6).prop_map(GExpr::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..13, inner.clone(), inner.clone()).prop_map(|(op, l, r)| GExpr::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner.clone().prop_map(|e| GExpr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| GExpr::Not(Box::new(e))),
            (0u8..5, inner.clone()).prop_map(|(f, e)| GExpr::Call1(f, Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| GExpr::Helper(Box::new(x), Box::new(y))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(GExpr::Arr),
            (inner.clone(), inner.clone()).prop_map(|(t, i)| GExpr::Idx(Box::new(t), Box::new(i))),
            inner.prop_map(|e| GExpr::UnknownCall(Box::new(e))),
        ]
    })
}

fn arb_stmts() -> impl Strategy<Value = Vec<GStmt>> {
    let stmt = prop_oneof![
        (0u8..3, arb_expr()).prop_map(|(v, e)| GStmt::Let(v, e)),
        (0u8..6, arb_expr()).prop_map(|(v, e)| GStmt::Assign(v, e)),
        arb_expr().prop_map(GStmt::ExprStmt),
        arb_expr().prop_map(GStmt::Log),
    ];
    let nested = stmt.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(c, t, f)| GStmt::If(c, t, f)),
            (0u8..2, 0u8..5, prop::collection::vec(inner, 0..3))
                .prop_map(|(v, n, b)| GStmt::For(v, n, b)),
        ]
    });
    prop::collection::vec(nested, 0..6)
}

fn render_program(
    init_g0: &GExpr,
    helper_body: &[GStmt],
    helper_ret: &GExpr,
    process_body: &[GStmt],
    main_body: &[GStmt],
    main_ret: &GExpr,
) -> String {
    let mut s = String::new();
    s.push_str("let g0 = ");
    init_g0.render(&mut s);
    s.push_str(";\nlet g1 = 1;\n");
    s.push_str("fn init() { h1(\"/d/h\", 10, 0.0, 10.0); }\n");
    s.push_str("fn helper(a, b) {\n");
    for st in helper_body {
        st.render(&mut s);
    }
    s.push_str("return ");
    helper_ret.render(&mut s);
    s.push_str(";\n}\n");
    s.push_str("fn process(ev) {\nlet m = ev.n_particles;\n");
    s.push_str("if m != null { fill(\"/d/h\", m % 10); }\n");
    for st in process_body {
        st.render(&mut s);
    }
    s.push_str("}\n");
    s.push_str("fn main() {\n");
    for st in main_body {
        st.render(&mut s);
    }
    s.push_str("return ");
    main_ret.render(&mut s);
    s.push_str(";\n}\n");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for random programs over the full lifecycle,
    /// the VM and the tree-walk produce identical transcripts — values,
    /// errors (message and line), globals, log output, and result trees.
    #[test]
    fn vm_matches_interp(
        init_g0 in arb_expr(),
        helper_body in arb_stmts(),
        helper_ret in arb_expr(),
        process_body in arb_stmts(),
        main_body in arb_stmts(),
        main_ret in arb_expr(),
    ) {
        let src = render_program(
            &init_g0, &helper_body, &helper_ret, &process_body, &main_body, &main_ret,
        );
        let records = [higgs_event(120.0), dna_read(), higgs_event(80.0)];
        // Generated programs are bounded (loops ≤ 4 iterations, helper
        // recursion cut by the depth limit), so neither backend can come
        // near the default fuel budget and fuel never skews the outcome.
        let (interp_log, interp_tree) = transcript(&src, ScriptBackend::Interp, &records);
        let (vm_log, vm_tree) = transcript(&src, ScriptBackend::Vm, &records);
        prop_assert_eq!(interp_log, vm_log, "transcript diverged for:\n{}", &src);
        prop_assert_eq!(interp_tree, vm_tree, "result tree diverged for:\n{}", &src);
    }
}

// ---------------------------------------------------------------------------
// Handwritten corners: exact error equality (message AND line) on the
// paths most likely to diverge between a compiler and a tree-walk.

#[test]
fn error_paths_are_byte_identical() {
    let cases = [
        // Unknown variable, lazily reported with the right line.
        "fn main() {\n  let a = 1;\n  return zzz;\n}",
        // Unknown function after evaluating its arguments.
        "fn main() { return no_such(1 + 2); }",
        // Arity mismatch reported at the definition line.
        "fn f(a, b) { return a; }\nfn main() { return f(1); }",
        // break outside a loop inside a function.
        "fn main() { break; }",
        // Iterating a non-array.
        "fn main() { for x in 42 { } }",
        // Range used outside `for`.
        "fn main() { return 0..3; }",
        // Range with a non-numeric start: start error wins over the end.
        "fn main() { for x in \"a\"..zzz { } }",
        // Index assignment: index conversion error beats unknown variable.
        "fn main() { zzz[\"x\"] = 1; }",
        // Index assignment to a non-array.
        "fn main() { let a = 5; a[0] = 1; }",
        // Out-of-bounds element assignment.
        "fn main() { let a = [1]; a[9] = 2; }",
        // Ordering non-numbers.
        "fn main() { return [1] < [2]; }",
        // Negating a string.
        "fn main() { return -\"x\"; }",
        // Field access on a non-record.
        "fn main() { return 1.x; }",
        // substr with a negative start (satellite fix, both backends).
        "fn main() { return substr(\"abc\", -1, 2); }",
        // Histogram booking with a bogus bin count (satellite fix).
        "fn main() { return h1(\"/h\", 0 / 0, 0.0, 1.0); }",
        // Division by zero is a value, not an error.
        "fn main() { return 1 / 0; }",
        // Deep recursion → stack overflow in both.
        "fn f(n) { return f(n + 1); }\nfn main() { return f(0); }",
        // Top-level return halts silently; globals still promote.
        "let a = 1; return; let b = 2;",
        // Top-level break halts silently too.
        "let a = 1; break; a = 2;",
        // Shadowing: a function-local binder hides the global.
        "let a = 10;\nfn main() { let a = 1; return a; }",
        // Assignment to a global from a function writes the global.
        "let a = 10;\nfn bump() { a = a + 1; }\nfn main() { bump(); bump(); return a; }",
        // Implicit local creation when no binder exists anywhere.
        "fn main() { q = 5; return q; }",
    ];
    for src in cases {
        assert_backends_agree(src, &[]);
    }
}

#[test]
fn record_semantics_are_identical() {
    // Field reads, missing-field nulls, record equality, and the `field`
    // builtin, against both an event and a DNA record.
    let src = r#"
        fn init() { h1("/r/h", 10, 0.0, 10.0); }
        fn process(ev) {
            if ev == ev { log("self-equal"); }
            let n = ev.n_particles;
            if n != null { fill("/r/h", n % 10); }
            if field(ev, "quality") != null { log("dna"); }
        }
        fn main() { return 0; }
    "#;
    assert_backends_agree(src, &[higgs_event(100.0), dna_read()]);
}

#[test]
fn fuel_exhaustion_hits_both_backends() {
    // Exact fuel counts differ by design (per-op vs per-AST-node burn),
    // but an unbounded loop must end in OutOfFuel on both.
    let src = "fn main() { while true { } }";
    let p = compile(src).unwrap();
    for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
        let mut e = engine_for(&p, backend).unwrap();
        e.set_fuel(20_000);
        let err = e.call("main", vec![], &mut NullHost).unwrap_err();
        assert_eq!(err, ScriptError::OutOfFuel, "{backend}");
    }
}

#[test]
fn fuel_error_ordering_is_stable_per_backend() {
    // A loop that errors after k iterations: with ample fuel both report
    // the runtime error, not OutOfFuel — the error ordering survives the
    // switch from AST-node accounting to per-op accounting.
    let src = "fn main() { let i = 0; while true { i = i + 1; if i > 50 { return zzz; } } }";
    let p = compile(src).unwrap();
    for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
        let mut e = engine_for(&p, backend).unwrap();
        let err = e.call("main", vec![], &mut NullHost).unwrap_err();
        assert_eq!(
            err,
            ScriptError::runtime("unknown variable 'zzz'", 1),
            "{backend}"
        );
    }
}

#[test]
fn multibyte_string_literals_agree() {
    // Satellite: the lexer's UTF-8 fix, observable through both backends.
    let src = "fn main() { let s = \"µ→αβγ\"; return len(s) + len(s[1]); }";
    assert_backends_agree(src, &[]);
    let src = "fn main() { return upper(\"gattaca µ\"); }";
    assert_backends_agree(src, &[]);
}

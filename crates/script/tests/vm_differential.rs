//! Differential tests: every execution mode against the tree-walk oracle.
//!
//! Random programs — including ones that error at runtime — are executed
//! by every mode of the engine matrix through the full analysis
//! lifecycle, and the entire observable transcript must match: every
//! `Result` (errors compared exactly, message and line included), every
//! global, every host message, and the final AIDA tree bin-for-bin. The
//! matrix covers both backends and every fusion level:
//!
//! * `interp` — the AST tree-walk (the semantic oracle),
//! * `vm` with fusion `off` — the resolver's raw op stream,
//! * `vm` with fusion `super` — peephole superinstructions,
//! * `vm` with fusion `kernel` — superinstructions plus the vectorized
//!   batch kernel over `ColumnBatch` parts (with per-record fallback).
//!
//! Two paths drive the matrix: the per-record `process` path (mixed-type
//! record slices) and the batch path through [`run_fused`] (uniform
//! parts with a columnar transcode, where the kernel actually runs).
//! Both backends funnel operator and builtin semantics through shared
//! helpers, so any divergence here is a compiler, fuser, or kernel bug,
//! not a formatting nit.

use std::sync::Arc;

use proptest::prelude::*;

use ipa_dataset::{
    AnyRecord, CollisionEvent, ColumnBatch, DnaRead, FourVector, Particle, TradeRecord,
};
use ipa_script::{
    compile, engine_for, run_fused, AidaHost, BatchKernel, NullHost, RecordRef, ScriptBackend,
    ScriptError, ScriptFusion,
};

/// The full mode matrix, oracle first.
const MODES: [(ScriptBackend, ScriptFusion); 4] = [
    (ScriptBackend::Interp, ScriptFusion::Off),
    (ScriptBackend::Vm, ScriptFusion::Off),
    (ScriptBackend::Vm, ScriptFusion::Super),
    (ScriptBackend::Vm, ScriptFusion::Kernel),
];

fn higgs_event(mass_pair: f64) -> AnyRecord {
    let half = mass_pair / 2.0;
    AnyRecord::Event(CollisionEvent {
        event_id: 7,
        run: 3,
        sqrt_s: 500.0,
        is_signal: false,
        particles: vec![
            Particle::new(5, -1.0 / 3.0, FourVector::new(half, half, 0.0, 0.0)),
            Particle::new(-5, 1.0 / 3.0, FourVector::new(half, -half, 0.0, 0.0)),
        ],
    })
}

fn dna_read() -> AnyRecord {
    AnyRecord::Dna(DnaRead {
        read_id: 9,
        sample: 1,
        bases: "GATTACAGATTACA".into(),
        quality: 31.5,
    })
}

fn trades(n: usize) -> Arc<Vec<AnyRecord>> {
    Arc::new(
        (0..n)
            .map(|i| {
                AnyRecord::Trade(TradeRecord {
                    trade_id: i as u64,
                    timestamp_ms: 1_000 * i as u64,
                    symbol: "IPA".into(),
                    price: 100.0 + (i as f64) * 0.75,
                    volume: 50 + (i as u32 % 90),
                    buyer_initiated: i % 3 == 0,
                })
            })
            .collect(),
    )
}

/// Run the full lifecycle on one mode via the per-record path and record
/// everything a user could observe. The tree goes in as a `Debug` dump:
/// the derived `Debug` prints every bin, and it sidesteps the
/// `NaN != NaN` hole in the derived `PartialEq` (empty stats carry NaN
/// min/max).
fn transcript(
    src: &str,
    backend: ScriptBackend,
    fusion: ScriptFusion,
    records: &[AnyRecord],
) -> Vec<String> {
    let p = compile(src).expect("generated source parses");
    let mut e = engine_for(&p, backend, fusion).expect("program resolves");
    let mut host = AidaHost::new();
    let mut out = Vec::new();
    out.push(format!("init: {:?}", e.run_init(&mut host)));
    for r in records {
        out.push(format!(
            "process: {:?}",
            e.process(&mut host, RecordRef::one(Arc::new(r.clone())))
        ));
    }
    out.push(format!("end: {:?}", e.run_end(&mut host)));
    out.push(format!("main: {:?}", e.call("main", vec![], &mut host)));
    for g in ["g0", "g1", "a", "b"] {
        out.push(format!("global {g}: {:?}", e.global(g)));
    }
    out.push(format!("messages: {:?}", host.messages));
    out.push(format!("tree: {:?}", host.tree));
    out
}

/// Run the full lifecycle on one mode via the batch path — the engine's
/// real dispatch: a columnar transcode when the part is uniform, the
/// batch kernel when the mode builds one, per-record fallback otherwise.
fn batch_transcript(
    src: &str,
    backend: ScriptBackend,
    fusion: ScriptFusion,
    records: &Arc<Vec<AnyRecord>>,
) -> Vec<String> {
    let p = compile(src).expect("generated source parses");
    let mut e = engine_for(&p, backend, fusion).expect("program resolves");
    let mut kernel = (backend == ScriptBackend::Vm && fusion == ScriptFusion::Kernel)
        .then(|| BatchKernel::compile(&p))
        .flatten();
    let columns = ColumnBatch::from_records(records).map(Arc::new);
    let mut host = AidaHost::new();
    let mut out = Vec::new();
    out.push(format!("init: {:?}", e.run_init(&mut host)));
    let (done, err) = run_fused(
        e.as_mut(),
        kernel.as_mut(),
        records,
        columns.as_ref(),
        0..records.len(),
        &mut host,
    );
    out.push(format!("batch: done={done} err={err:?}"));
    out.push(format!("end: {:?}", e.run_end(&mut host)));
    for g in ["g0", "g1", "a", "b", "seen", "cut"] {
        out.push(format!("global {g}: {:?}", e.global(g)));
    }
    out.push(format!("messages: {:?}", host.messages));
    out.push(format!("tree: {:?}", host.tree));
    out
}

fn assert_backends_agree(src: &str, records: &[AnyRecord]) {
    let want = transcript(src, MODES[0].0, MODES[0].1, records);
    for (backend, fusion) in &MODES[1..] {
        let got = transcript(src, *backend, *fusion, records);
        assert_eq!(
            want, got,
            "per-record transcript diverged for {backend}/{fusion}:\n{src}"
        );
    }
}

fn assert_fusion_modes_agree(src: &str, records: &Arc<Vec<AnyRecord>>) {
    let want = batch_transcript(src, MODES[0].0, MODES[0].1, records);
    for (backend, fusion) in &MODES[1..] {
        let got = batch_transcript(src, *backend, *fusion, records);
        assert_eq!(
            want, got,
            "batch transcript diverged for {backend}/{fusion}:\n{src}"
        );
    }
}

// ---------------------------------------------------------------------------
// Random program generation. Variables draw from a small pool that mixes
// locals, globals, a `process`-bound name, and a deliberately unbound name,
// so unknown-variable error paths get exercised alongside happy paths.

const VARS: [&str; 6] = ["a", "b", "m", "g0", "g1", "mystery"];
const BINOPS: [&str; 13] = [
    "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
];
const FN1: [&str; 5] = ["abs", "floor", "ceil", "round", "sqrt"];

#[derive(Debug, Clone)]
enum GExpr {
    Num(i32),
    Var(u8),
    Bin(u8, Box<GExpr>, Box<GExpr>),
    Neg(Box<GExpr>),
    Not(Box<GExpr>),
    Call1(u8, Box<GExpr>),
    Helper(Box<GExpr>, Box<GExpr>),
    Arr(Vec<GExpr>),
    Idx(Box<GExpr>, Box<GExpr>),
    UnknownCall(Box<GExpr>),
}

impl GExpr {
    fn render(&self, out: &mut String) {
        match self {
            GExpr::Num(n) => {
                if *n < 0 {
                    out.push_str(&format!("({n})"));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            GExpr::Var(i) => out.push_str(VARS[*i as usize % VARS.len()]),
            GExpr::Bin(op, l, r) => {
                out.push('(');
                l.render(out);
                out.push_str(&format!(" {} ", BINOPS[*op as usize % BINOPS.len()]));
                r.render(out);
                out.push(')');
            }
            GExpr::Neg(e) => {
                out.push_str("(-");
                e.render(out);
                out.push(')');
            }
            GExpr::Not(e) => {
                out.push_str("(!");
                e.render(out);
                out.push(')');
            }
            GExpr::Call1(f, e) => {
                out.push_str(FN1[*f as usize % FN1.len()]);
                out.push('(');
                e.render(out);
                out.push(')');
            }
            GExpr::Helper(x, y) => {
                out.push_str("helper(");
                x.render(out);
                out.push_str(", ");
                y.render(out);
                out.push(')');
            }
            GExpr::Arr(items) => {
                out.push('[');
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.render(out);
                }
                out.push(']');
            }
            GExpr::Idx(t, i) => {
                t.render(out);
                out.push('[');
                i.render(out);
                out.push(']');
            }
            GExpr::UnknownCall(e) => {
                out.push_str("no_such_fn(");
                e.render(out);
                out.push(')');
            }
        }
    }
}

#[derive(Debug, Clone)]
enum GStmt {
    Let(u8, GExpr),
    Assign(u8, GExpr),
    ExprStmt(GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    For(u8, u8, Vec<GStmt>),
    Log(GExpr),
}

impl GStmt {
    fn render(&self, out: &mut String) {
        match self {
            GStmt::Let(v, e) => {
                out.push_str("let ");
                out.push_str(VARS[*v as usize % 3]); // only a/b/m bind locally
                out.push_str(" = ");
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::Assign(v, e) => {
                out.push_str(VARS[*v as usize % VARS.len()]);
                out.push_str(" = ");
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::ExprStmt(e) => {
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::If(c, t, f) => {
                out.push_str("if ");
                c.render(out);
                out.push_str(" {\n");
                for s in t {
                    s.render(out);
                }
                out.push('}');
                if !f.is_empty() {
                    out.push_str(" else {\n");
                    for s in f {
                        s.render(out);
                    }
                    out.push('}');
                }
                out.push('\n');
            }
            GStmt::For(v, n, body) => {
                out.push_str("for ");
                out.push_str(VARS[*v as usize % 2]); // a or b
                out.push_str(&format!(" in 0..{} {{\n", n % 5));
                for s in body {
                    s.render(out);
                }
                out.push_str("}\n");
            }
            GStmt::Log(e) => {
                out.push_str("log(str(");
                e.render(out);
                out.push_str("));\n");
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(GExpr::Num),
        (0u8..6).prop_map(GExpr::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..13, inner.clone(), inner.clone()).prop_map(|(op, l, r)| GExpr::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner.clone().prop_map(|e| GExpr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| GExpr::Not(Box::new(e))),
            (0u8..5, inner.clone()).prop_map(|(f, e)| GExpr::Call1(f, Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| GExpr::Helper(Box::new(x), Box::new(y))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(GExpr::Arr),
            (inner.clone(), inner.clone()).prop_map(|(t, i)| GExpr::Idx(Box::new(t), Box::new(i))),
            inner.prop_map(|e| GExpr::UnknownCall(Box::new(e))),
        ]
    })
}

fn arb_stmts() -> impl Strategy<Value = Vec<GStmt>> {
    let stmt = prop_oneof![
        (0u8..3, arb_expr()).prop_map(|(v, e)| GStmt::Let(v, e)),
        (0u8..6, arb_expr()).prop_map(|(v, e)| GStmt::Assign(v, e)),
        arb_expr().prop_map(GStmt::ExprStmt),
        arb_expr().prop_map(GStmt::Log),
    ];
    let nested = stmt.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(c, t, f)| GStmt::If(c, t, f)),
            (0u8..2, 0u8..5, prop::collection::vec(inner, 0..3))
                .prop_map(|(v, n, b)| GStmt::For(v, n, b)),
        ]
    });
    prop::collection::vec(nested, 0..6)
}

fn render_program(
    init_g0: &GExpr,
    helper_body: &[GStmt],
    helper_ret: &GExpr,
    process_body: &[GStmt],
    main_body: &[GStmt],
    main_ret: &GExpr,
) -> String {
    let mut s = String::new();
    s.push_str("let g0 = ");
    init_g0.render(&mut s);
    s.push_str(";\nlet g1 = 1;\n");
    s.push_str("fn init() { h1(\"/d/h\", 10, 0.0, 10.0); }\n");
    s.push_str("fn helper(a, b) {\n");
    for st in helper_body {
        st.render(&mut s);
    }
    s.push_str("return ");
    helper_ret.render(&mut s);
    s.push_str(";\n}\n");
    s.push_str("fn process(ev) {\nlet m = ev.n_particles;\n");
    s.push_str("if m != null { fill(\"/d/h\", m % 10); }\n");
    for st in process_body {
        st.render(&mut s);
    }
    s.push_str("}\n");
    s.push_str("fn main() {\n");
    for st in main_body {
        st.render(&mut s);
    }
    s.push_str("return ");
    main_ret.render(&mut s);
    s.push_str(";\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Kernel-shaped generation: straight-line `process` bodies of `let`
// bindings over trade fields, guarded fills, and weighted fills — the
// shape `BatchKernel::compile` targets — salted with constructs that are
// deliberately *ineligible* (log calls, global mutation, string fields),
// so the matrix exercises the vectorized path, the bind-time fallback,
// and the compile-time fallback side by side.

/// Trade fields the generator reads. `symbol` is a string column (bind
/// falls back), `absent` is not a field at all (reads null per record,
/// missing column in the batch).
const KFIELDS: [&str; 6] = [
    "price",
    "volume",
    "trade_id",
    "buyer_initiated",
    "symbol",
    "absent",
];
const KPATHS: [&str; 3] = ["/k/h0", "/k/h1", "/k/h2"];
const KMATH1: [&str; 5] = ["abs", "floor", "ceil", "round", "sqrt"];
const KBINOPS: [&str; 12] = [
    "+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
];

#[derive(Debug, Clone)]
enum KgExpr {
    Num(i8),
    Field(u8),
    /// The `cut` global.
    Global,
    /// One of the two leading `let` bindings.
    Local(u8),
    Bin(u8, Box<KgExpr>, Box<KgExpr>),
    Neg(Box<KgExpr>),
    Not(Box<KgExpr>),
    IsNull(Box<KgExpr>),
    Math1(u8, Box<KgExpr>),
}

impl KgExpr {
    fn render(&self, out: &mut String) {
        match self {
            KgExpr::Num(n) => {
                if *n < 0 {
                    out.push_str(&format!("({n})"));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            KgExpr::Field(i) => {
                out.push_str("t.");
                out.push_str(KFIELDS[*i as usize % KFIELDS.len()]);
            }
            KgExpr::Global => out.push_str("cut"),
            KgExpr::Local(i) => out.push_str(if i % 2 == 0 { "l0" } else { "l1" }),
            KgExpr::Bin(op, l, r) => {
                out.push('(');
                l.render(out);
                out.push_str(&format!(" {} ", KBINOPS[*op as usize % KBINOPS.len()]));
                r.render(out);
                out.push(')');
            }
            KgExpr::Neg(e) => {
                out.push_str("(-");
                e.render(out);
                out.push(')');
            }
            KgExpr::Not(e) => {
                out.push_str("(!");
                e.render(out);
                out.push(')');
            }
            KgExpr::IsNull(e) => {
                out.push_str("is_null(");
                e.render(out);
                out.push(')');
            }
            KgExpr::Math1(f, e) => {
                out.push_str(KMATH1[*f as usize % KMATH1.len()]);
                out.push('(');
                e.render(out);
                out.push(')');
            }
        }
    }
}

#[derive(Debug, Clone)]
enum KgStmt {
    /// `fill(path, x)` / `fill(path, x, w)` with a literal weight.
    Fill(u8, KgExpr, Option<i8>),
    /// `fill(path, x, w)` with an expression weight.
    FillWeighted(u8, KgExpr, KgExpr),
    /// `if cond { fills… }` — branches hold only fills, as the kernel
    /// requires.
    Guard(KgExpr, Vec<(u8, KgExpr)>),
    /// Compile-time ineligible: a host call that is not a fill.
    Log(KgExpr),
    /// Compile-time ineligible: global mutation.
    GlobalBump,
}

impl KgStmt {
    fn render(&self, out: &mut String) {
        match self {
            KgStmt::Fill(p, x, w) => {
                out.push_str(&format!("fill(\"{}\", ", KPATHS[*p as usize % KPATHS.len()]));
                x.render(out);
                if let Some(w) = w {
                    out.push_str(&format!(", {w}"));
                }
                out.push_str(");\n");
            }
            KgStmt::FillWeighted(p, x, w) => {
                out.push_str(&format!("fill(\"{}\", ", KPATHS[*p as usize % KPATHS.len()]));
                x.render(out);
                out.push_str(", ");
                w.render(out);
                out.push_str(");\n");
            }
            KgStmt::Guard(cond, fills) => {
                out.push_str("if ");
                cond.render(out);
                out.push_str(" {\n");
                for (p, x) in fills {
                    out.push_str(&format!("fill(\"{}\", ", KPATHS[*p as usize % KPATHS.len()]));
                    x.render(out);
                    out.push_str(");\n");
                }
                out.push_str("}\n");
            }
            KgStmt::Log(e) => {
                out.push_str("log(str(");
                e.render(out);
                out.push_str("));\n");
            }
            KgStmt::GlobalBump => out.push_str("seen = seen + 1;\n"),
        }
    }
}

fn arb_kernel_expr() -> impl Strategy<Value = KgExpr> {
    let leaf = prop_oneof![
        (-9i8..10).prop_map(KgExpr::Num),
        (0u8..6).prop_map(KgExpr::Field),
        (0u8..2).prop_map(KgExpr::Local),
        (0u8..2).prop_map(|_| KgExpr::Global),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (0u8..12, inner.clone(), inner.clone()).prop_map(|(op, l, r)| KgExpr::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner.clone().prop_map(|e| KgExpr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| KgExpr::Not(Box::new(e))),
            inner.clone().prop_map(|e| KgExpr::IsNull(Box::new(e))),
            (0u8..5, inner).prop_map(|(f, e)| KgExpr::Math1(f, Box::new(e))),
        ]
    })
}

fn arb_kernel_body() -> impl Strategy<Value = Vec<KgStmt>> {
    let fill_pair = (0u8..3, arb_kernel_expr());
    let stmt = prop_oneof![
        (0u8..3, arb_kernel_expr(), prop_oneof![
            (0i8..1).prop_map(|_| None),
            (1i8..5).prop_map(Some),
        ])
        .prop_map(|(p, x, w)| KgStmt::Fill(p, x, w)),
        (0u8..3, arb_kernel_expr(), arb_kernel_expr())
            .prop_map(|(p, x, w)| KgStmt::FillWeighted(p, x, w)),
        (arb_kernel_expr(), prop::collection::vec(fill_pair, 1..3))
            .prop_map(|(c, f)| KgStmt::Guard(c, f)),
        arb_kernel_expr().prop_map(KgStmt::Log),
        (0u8..1).prop_map(|_| KgStmt::GlobalBump),
    ];
    prop::collection::vec(stmt, 0..5)
}

fn render_kernel_program(l0: &KgExpr, l1: &KgExpr, body: &[KgStmt]) -> String {
    let mut s = String::new();
    s.push_str("let cut = 3;\nlet seen = 0;\n");
    s.push_str("fn init() {\n");
    for p in KPATHS {
        s.push_str(&format!("h1(\"{p}\", 16, 0.0, 400.0);\n"));
    }
    s.push_str("}\n");
    s.push_str("fn process(t) {\nlet l0 = ");
    l0.render(&mut s);
    s.push_str(";\nlet l1 = ");
    l1.render(&mut s);
    s.push_str(";\n");
    for st in body {
        st.render(&mut s);
    }
    s.push_str("}\n");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for random programs over the full lifecycle,
    /// every mode in the matrix produces a transcript identical to the
    /// tree-walk's — values, errors (message and line), globals, log
    /// output, and result trees.
    #[test]
    fn vm_matches_interp(
        init_g0 in arb_expr(),
        helper_body in arb_stmts(),
        helper_ret in arb_expr(),
        process_body in arb_stmts(),
        main_body in arb_stmts(),
        main_ret in arb_expr(),
    ) {
        let src = render_program(
            &init_g0, &helper_body, &helper_ret, &process_body, &main_body, &main_ret,
        );
        let records = [higgs_event(120.0), dna_read(), higgs_event(80.0)];
        // Generated programs are bounded (loops ≤ 4 iterations, helper
        // recursion cut by the depth limit), so no mode can come near the
        // default fuel budget and fuel never skews the outcome.
        let want = transcript(&src, MODES[0].0, MODES[0].1, &records);
        for (backend, fusion) in &MODES[1..] {
            let got = transcript(&src, *backend, *fusion, &records);
            prop_assert_eq!(&want, &got, "transcript diverged for {}/{}:\n{}", backend, fusion, &src);
        }
    }

    /// The fusion axis over the batch path: kernel-shaped random programs
    /// (and near misses that must fall back) run over a uniform trade
    /// part with its columnar transcode, in every mode. The kernel's
    /// bulk fills, selection masks, and fallback boundaries must be
    /// transcript-identical to per-record execution.
    #[test]
    fn fusion_modes_agree_on_uniform_batches(
        l0 in arb_kernel_expr(),
        l1 in arb_kernel_expr(),
        body in arb_kernel_body(),
        n in 1usize..48,
    ) {
        let src = render_kernel_program(&l0, &l1, &body);
        let records = trades(n);
        let want = batch_transcript(&src, MODES[0].0, MODES[0].1, &records);
        for (backend, fusion) in &MODES[1..] {
            let got = batch_transcript(&src, *backend, *fusion, &records);
            prop_assert_eq!(&want, &got, "batch diverged for {}/{}:\n{}", backend, fusion, &src);
        }
    }
}

// ---------------------------------------------------------------------------
// Handwritten corners: exact error equality (message AND line) on the
// paths most likely to diverge between a compiler and a tree-walk.

#[test]
fn error_paths_are_byte_identical() {
    let cases = [
        // Unknown variable, lazily reported with the right line.
        "fn main() {\n  let a = 1;\n  return zzz;\n}",
        // Unknown function after evaluating its arguments.
        "fn main() { return no_such(1 + 2); }",
        // Arity mismatch reported at the definition line.
        "fn f(a, b) { return a; }\nfn main() { return f(1); }",
        // break outside a loop inside a function.
        "fn main() { break; }",
        // Iterating a non-array.
        "fn main() { for x in 42 { } }",
        // Range used outside `for`.
        "fn main() { return 0..3; }",
        // Range with a non-numeric start: start error wins over the end.
        "fn main() { for x in \"a\"..zzz { } }",
        // Index assignment: index conversion error beats unknown variable.
        "fn main() { zzz[\"x\"] = 1; }",
        // Index assignment to a non-array.
        "fn main() { let a = 5; a[0] = 1; }",
        // Out-of-bounds element assignment.
        "fn main() { let a = [1]; a[9] = 2; }",
        // Ordering non-numbers.
        "fn main() { return [1] < [2]; }",
        // Negating a string.
        "fn main() { return -\"x\"; }",
        // Field access on a non-record.
        "fn main() { return 1.x; }",
        // substr with a negative start (satellite fix, both backends).
        "fn main() { return substr(\"abc\", -1, 2); }",
        // Histogram booking with a bogus bin count (satellite fix).
        "fn main() { return h1(\"/h\", 0 / 0, 0.0, 1.0); }",
        // Division by zero is a value, not an error.
        "fn main() { return 1 / 0; }",
        // Deep recursion → stack overflow in both.
        "fn f(n) { return f(n + 1); }\nfn main() { return f(0); }",
        // Top-level return halts silently; globals still promote.
        "let a = 1; return; let b = 2;",
        // Top-level break halts silently too.
        "let a = 1; break; a = 2;",
        // Shadowing: a function-local binder hides the global.
        "let a = 10;\nfn main() { let a = 1; return a; }",
        // Assignment to a global from a function writes the global.
        "let a = 10;\nfn bump() { a = a + 1; }\nfn main() { bump(); bump(); return a; }",
        // Implicit local creation when no binder exists anywhere.
        "fn main() { q = 5; return q; }",
    ];
    for src in cases {
        assert_backends_agree(src, &[]);
    }
}

#[test]
fn record_semantics_are_identical() {
    // Field reads, missing-field nulls, record equality, and the `field`
    // builtin, against both an event and a DNA record.
    let src = r#"
        fn init() { h1("/r/h", 10, 0.0, 10.0); }
        fn process(ev) {
            if ev == ev { log("self-equal"); }
            let n = ev.n_particles;
            if n != null { fill("/r/h", n % 10); }
            if field(ev, "quality") != null { log("dna"); }
        }
        fn main() { return 0; }
    "#;
    assert_backends_agree(src, &[higgs_event(100.0), dna_read()]);
}

#[test]
fn fuel_exhaustion_hits_both_backends() {
    // Exact fuel counts differ by design (per-op vs per-AST-node burn),
    // but an unbounded loop must end in OutOfFuel on both.
    let src = "fn main() { while true { } }";
    let p = compile(src).unwrap();
    for (backend, fusion) in MODES {
        let mut e = engine_for(&p, backend, fusion).unwrap();
        e.set_fuel(20_000);
        let err = e.call("main", vec![], &mut NullHost).unwrap_err();
        assert_eq!(err, ScriptError::OutOfFuel, "{backend}/{fusion}");
    }
}

#[test]
fn fuel_error_ordering_is_stable_per_backend() {
    // A loop that errors after k iterations: with ample fuel both report
    // the runtime error, not OutOfFuel — the error ordering survives the
    // switch from AST-node accounting to per-op accounting.
    let src = "fn main() { let i = 0; while true { i = i + 1; if i > 50 { return zzz; } } }";
    let p = compile(src).unwrap();
    for (backend, fusion) in MODES {
        let mut e = engine_for(&p, backend, fusion).unwrap();
        let err = e.call("main", vec![], &mut NullHost).unwrap_err();
        assert_eq!(
            err,
            ScriptError::runtime("unknown variable 'zzz'", 1),
            "{backend}/{fusion}"
        );
    }
}

#[test]
fn multibyte_string_literals_agree() {
    // Satellite: the lexer's UTF-8 fix, observable through both backends.
    let src = "fn main() { let s = \"µ→αβγ\"; return len(s) + len(s[1]); }";
    assert_backends_agree(src, &[]);
    let src = "fn main() { return upper(\"gattaca µ\"); }";
    assert_backends_agree(src, &[]);
}

// ---------------------------------------------------------------------------
// Fallback-boundary corners for the batch kernel: each one pins *where*
// the fallback happens (compile time vs bind time vs probe time) and that
// the observable transcript is unchanged by it.

#[test]
fn string_guard_is_compile_time_ineligible_and_agrees() {
    // A string literal in the guard predicate is outside the kernel's
    // expression language: `BatchKernel::compile` must refuse, and the
    // per-record fallback must still fill every row (all symbols match).
    let src = r#"
        fn init() { h1("/s/h", 16, 0.0, 400.0); }
        fn process(t) {
            if t.symbol == "IPA" { fill("/s/h", t.price); }
        }
    "#;
    assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    assert_fusion_modes_agree(src, &trades(64));
}

#[test]
fn global_mutation_is_compile_time_ineligible_and_agrees() {
    // Writing a global from `process` cannot vectorize (each record
    // observes the previous record's write). The transcript — including
    // the final value of `seen` — must match per-record execution.
    let src = r#"
        let seen = 0;
        fn init() { h1("/g/h", 16, 0.0, 400.0); }
        fn process(t) {
            seen = seen + 1;
            fill("/g/h", t.volume);
        }
    "#;
    assert!(BatchKernel::compile(&compile(src).unwrap()).is_none());
    assert_fusion_modes_agree(src, &trades(33));
}

#[test]
fn string_column_read_falls_back_at_bind_time() {
    // `t.symbol` is an eligible *name* at compile time but binds to a
    // string column, which the kernel cannot evaluate: compile succeeds,
    // bind refuses, and every mode reports the identical per-row error
    // (a string is not a number) at the identical row.
    let src = r#"
        fn init() { h1("/b/h", 16, 0.0, 400.0); }
        fn process(t) {
            fill("/b/h", t.symbol + 1);
        }
    "#;
    assert!(BatchKernel::compile(&compile(src).unwrap()).is_some());
    assert_fusion_modes_agree(src, &trades(8));
}

#[test]
fn missing_column_falls_back_at_bind_time() {
    // `t.absent` reads null per record and has no column at all in the
    // batch: the kernel binds `None` and the fallback's null-guarded
    // fills never fire — in every mode.
    let src = r#"
        fn init() { h1("/m/h", 16, 0.0, 400.0); h1("/m/v", 16, 0.0, 400.0); }
        fn process(t) {
            let a = t.absent;
            if a != null { fill("/m/h", a); }
            fill("/m/v", t.volume);
        }
    "#;
    assert!(BatchKernel::compile(&compile(src).unwrap()).is_some());
    assert_fusion_modes_agree(src, &trades(21));
}

#[test]
fn mixed_type_batch_has_no_columns_and_agrees() {
    // A part mixing record types has no columnar transcode: `run_fused`
    // gets `columns: None` and every mode degrades to the plain
    // per-record loop over `RecordRef::batch` handles.
    let src = r#"
        fn init() { h1("/x/h", 10, 0.0, 10.0); }
        fn process(r) {
            let n = r.n_particles;
            if n != null { fill("/x/h", n); }
        }
    "#;
    let records = Arc::new(vec![higgs_event(120.0), dna_read(), higgs_event(80.0)]);
    assert!(ColumnBatch::from_records(&records).is_none());
    assert_fusion_modes_agree(src, &records);
}

#[test]
fn unbooked_fill_path_aborts_at_probe_time_with_exact_row() {
    // `/e/missing` is never booked. The kernel's empty-slice probe
    // errors, so it must abort before ANY side effect and let the
    // per-record loop reproduce the error at the exact row (volume hits
    // 57 at row 7) with the erroring record's partial fills applied.
    let src = r#"
        fn init() { h1("/e/h", 16, 0.0, 400.0); }
        fn process(t) {
            fill("/e/h", t.price);
            if t.volume == 57 { fill("/e/missing", 1); }
        }
    "#;
    let records = trades(20);
    let want = batch_transcript(src, MODES[0].0, MODES[0].1, &records);
    assert!(
        want.iter().any(|l| l.contains("done=7")),
        "oracle must stop at row 7: {want:?}"
    );
    for (backend, fusion) in &MODES[1..] {
        let got = batch_transcript(src, *backend, *fusion, &records);
        assert_eq!(want, got, "batch diverged for {backend}/{fusion}");
    }
}

#[test]
fn global_read_in_guard_vectorizes_and_agrees() {
    // Reading (not writing) a global in the predicate is eligible: the
    // kernel snapshots it once, which is sound because the body cannot
    // change it. Transcript-identical across the matrix.
    let src = r#"
        let cut = 100.0;
        fn init() { h1("/c/h", 16, 0.0, 400.0); }
        fn process(t) {
            if t.price > cut { fill("/c/h", t.price); }
        }
    "#;
    assert!(BatchKernel::compile(&compile(src).unwrap()).is_some());
    assert_fusion_modes_agree(src, &trades(40));
}

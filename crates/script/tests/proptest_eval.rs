//! Property tests for the IPAScript engines: randomly generated
//! arithmetic/boolean expression trees are rendered to source, compiled,
//! evaluated, and compared against a Rust-side reference evaluator.
//! Also: the fuel limit terminates arbitrary loop bounds, and the lexer
//! never panics on arbitrary input.
//!
//! Runs under the backend selected by `IPA_SCRIPT_BACKEND` (the CI matrix
//! covers both); `vm_differential.rs` holds the cross-backend comparisons.

use proptest::prelude::*;

use ipa_script::{compile, engine_for, NullHost, ScriptBackend, ScriptError, ScriptFusion, Value};

/// A reference expression we can both render to IPAScript and evaluate in
/// Rust.
#[derive(Debug, Clone)]
enum RExpr {
    Num(f64),
    Add(Box<RExpr>, Box<RExpr>),
    Sub(Box<RExpr>, Box<RExpr>),
    Mul(Box<RExpr>, Box<RExpr>),
    Neg(Box<RExpr>),
    Min(Box<RExpr>, Box<RExpr>),
    Abs(Box<RExpr>),
}

impl RExpr {
    fn render(&self) -> String {
        match self {
            RExpr::Num(n) => {
                if *n < 0.0 {
                    format!("({n})")
                } else {
                    format!("{n}")
                }
            }
            RExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            RExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            RExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            RExpr::Neg(a) => format!("(-{})", a.render()),
            RExpr::Min(a, b) => format!("min({}, {})", a.render(), b.render()),
            RExpr::Abs(a) => format!("abs({})", a.render()),
        }
    }

    fn eval(&self) -> f64 {
        match self {
            RExpr::Num(n) => *n,
            RExpr::Add(a, b) => a.eval() + b.eval(),
            RExpr::Sub(a, b) => a.eval() - b.eval(),
            RExpr::Mul(a, b) => a.eval() * b.eval(),
            RExpr::Neg(a) => -a.eval(),
            RExpr::Min(a, b) => a.eval().min(b.eval()),
            RExpr::Abs(a) => a.eval().abs(),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = RExpr> {
    let leaf = (-100i32..100).prop_map(|n| RExpr::Num(n as f64));
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RExpr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| RExpr::Neg(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RExpr::Min(Box::new(a), Box::new(b))),
            inner.prop_map(|a| RExpr::Abs(Box::new(a))),
        ]
    })
}

fn run_main(src: &str) -> Result<Value, ScriptError> {
    let p = compile(src)?;
    let mut e = engine_for(&p, ScriptBackend::from_env(), ScriptFusion::from_env())?;
    e.call("main", vec![], &mut NullHost)
}

proptest! {
    // Script execution is intentionally slow per case; keep case counts
    // modest so the whole suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Script arithmetic agrees with Rust bit-for-bit on integer-valued
    /// trees (all operations here are exact in f64).
    #[test]
    fn expressions_match_reference(e in arb_expr()) {
        let src = format!("fn main() {{ return {}; }}", e.render());
        let got = run_main(&src).expect("generated source compiles and runs");
        let want = e.eval();
        match got {
            Value::Num(n) => prop_assert_eq!(n, want, "src: {}", src),
            other => return Err(TestCaseError::fail(format!("non-numeric {other:?}"))),
        }
    }

    /// Loop summation matches the closed form for arbitrary bounds.
    #[test]
    fn loop_sums_match(n in 0usize..200) {
        let src = format!(
            "fn main() {{ let t = 0; for i in 0..{n} {{ t = t + i; }} return t; }}"
        );
        let got = run_main(&src).unwrap();
        let want = (n * n.saturating_sub(1) / 2) as f64;
        prop_assert!(matches!(got, Value::Num(v) if v == want));
    }

    /// Any while-loop, however large its bound, either finishes or hits
    /// OutOfFuel — never hangs (fuel capped low here).
    #[test]
    fn fuel_always_terminates(bound in 0u64..100_000) {
        let src = format!(
            "fn main() {{ let i = 0; while i < {bound} {{ i = i + 1; }} return i; }}"
        );
        let p = compile(&src).unwrap();
        let mut e = engine_for(&p, ScriptBackend::from_env(), ScriptFusion::from_env()).unwrap();
        e.set_fuel(50_000);
        match e.call("main", vec![], &mut NullHost) {
            Ok(Value::Num(v)) => prop_assert_eq!(v, bound as f64),
            Ok(other) => return Err(TestCaseError::fail(format!("{other:?}"))),
            Err(ScriptError::OutOfFuel) => {} // fine: terminated with an error
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// The lexer/parser never panic on arbitrary input — they return
    /// Ok or a positioned syntax error — and whatever parses also
    /// resolves to bytecode without panicking.
    #[test]
    fn compile_never_panics(src in "\\PC{0,200}") {
        if let Ok(p) = compile(&src) {
            let _ = ipa_script::resolve::compile_program(&p);
        }
    }

    /// String round trip: building a string from chars and indexing it
    /// back preserves content.
    #[test]
    fn string_indexing(s in "[a-z]{1,12}") {
        let src = format!(
            "fn main() {{ let s = \"{s}\"; let out = \"\"; for i in 0..len(s) {{ out = out + s[i]; }} return out == s; }}"
        );
        let got = run_main(&src).unwrap();
        prop_assert!(matches!(got, Value::Bool(true)));
    }
}

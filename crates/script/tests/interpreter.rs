//! End-to-end script engine tests: language semantics, host interaction,
//! fuel limits, and dynamic reload.
//!
//! Every test routes through [`engine_for`] with the backend selected by
//! `IPA_SCRIPT_BACKEND`, so CI runs this whole file against both the
//! tree-walk and the bytecode VM. A few tests at the bottom pin one
//! backend explicitly.

use std::sync::Arc;

use ipa_dataset::{AnyRecord, CollisionEvent, DnaRead, FourVector, Particle};
use ipa_script::{
    compile, engine_for, AidaHost, Interpreter, NullHost, RecordRef, ScriptBackend, ScriptEngine,
    ScriptError, ScriptFusion, Value,
};

fn engine(src: &str) -> Box<dyn ScriptEngine> {
    let p = compile(src).unwrap();
    engine_for(&p, ScriptBackend::from_env(), ScriptFusion::from_env()).unwrap()
}

fn process(
    e: &mut Box<dyn ScriptEngine>,
    host: &mut dyn ipa_script::Host,
    rec: &AnyRecord,
) -> Result<(), ScriptError> {
    e.process(host, RecordRef::one(Arc::new(rec.clone())))
}

fn run_expr(expr: &str) -> Value {
    let src = format!("fn main() {{ return {expr}; }}");
    let mut e = engine(&src);
    e.call("main", vec![], &mut NullHost).unwrap()
}

fn num(v: Value) -> f64 {
    match v {
        Value::Num(n) => n,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(num(run_expr("1 + 2 * 3")), 7.0);
    assert_eq!(num(run_expr("(1 + 2) * 3")), 9.0);
    assert_eq!(num(run_expr("10 / 4")), 2.5);
    assert_eq!(num(run_expr("10 % 3")), 1.0);
    assert_eq!(num(run_expr("-2 * -3")), 6.0);
    assert_eq!(num(run_expr("2 + 3 * 4 - 6 / 2")), 11.0);
}

#[test]
fn string_concatenation() {
    assert!(matches!(run_expr("\"a\" + 1"), Value::Str(s) if s == "a1"));
    assert!(matches!(run_expr("1 + \"a\""), Value::Str(s) if s == "1a"));
    assert!(matches!(run_expr("\"a\" + \"b\""), Value::Str(s) if s == "ab"));
}

#[test]
fn comparisons_and_logic() {
    assert!(matches!(run_expr("1 < 2"), Value::Bool(true)));
    assert!(matches!(run_expr("2 <= 2"), Value::Bool(true)));
    assert!(matches!(run_expr("1 == 1 && 2 == 2"), Value::Bool(true)));
    assert!(matches!(run_expr("1 == 2 || 2 == 2"), Value::Bool(true)));
    assert!(matches!(run_expr("!(1 == 1)"), Value::Bool(false)));
    assert!(matches!(run_expr("null == null"), Value::Bool(true)));
    assert!(matches!(run_expr("null == 0"), Value::Bool(false)));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // Division by zero in rhs would be NaN, not an error, so use an unknown
    // function to prove the rhs never runs.
    let mut e = engine("fn main() { return false && boom(); }");
    assert!(matches!(
        e.call("main", vec![], &mut NullHost).unwrap(),
        Value::Bool(false)
    ));
    let mut e = engine("fn main() { return true || boom(); }");
    assert!(matches!(
        e.call("main", vec![], &mut NullHost).unwrap(),
        Value::Bool(true)
    ));
}

#[test]
fn control_flow_loops() {
    let src = r#"
        fn main() {
            let total = 0;
            for i in 0..10 {
                if i % 2 == 0 { continue; }
                if i == 9 { break; }
                total = total + i;   # 1 + 3 + 5 + 7
            }
            let j = 0;
            while j < 5 { j = j + 1; }
            return total + j;
        }
    "#;
    let mut e = engine(src);
    assert_eq!(num(e.call("main", vec![], &mut NullHost).unwrap()), 21.0);
}

#[test]
fn arrays_index_and_assign() {
    let src = r#"
        fn main() {
            let xs = [10, 20, 30];
            xs[1] = xs[1] + 5;
            let s = 0;
            for x in xs { s = s + x; }
            return s + len(xs);
        }
    "#;
    let mut e = engine(src);
    assert_eq!(num(e.call("main", vec![], &mut NullHost).unwrap()), 68.0);
}

#[test]
fn recursion_fibonacci() {
    let src = "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); }";
    let mut e = engine(src);
    let v = e
        .call("fib", vec![Value::Num(15.0)], &mut NullHost)
        .unwrap();
    assert_eq!(num(v), 610.0);
}

#[test]
fn runaway_recursion_hits_stack_limit() {
    let mut e = engine("fn f(n) { return f(n + 1); }");
    let err = e
        .call("f", vec![Value::Num(0.0)], &mut NullHost)
        .unwrap_err();
    assert!(matches!(
        err,
        ScriptError::StackOverflow | ScriptError::OutOfFuel
    ));
}

#[test]
fn infinite_loop_runs_out_of_fuel() {
    let mut e = engine("fn main() { while true { } }");
    e.set_fuel(100_000);
    let err = e.call("main", vec![], &mut NullHost).unwrap_err();
    assert_eq!(err, ScriptError::OutOfFuel);
}

#[test]
fn runtime_errors_carry_line_numbers() {
    let src = "fn main() {\n  let a = 1;\n  return a + \"\"[5];\n}";
    let mut e = engine(src);
    match e.call("main", vec![], &mut NullHost).unwrap_err() {
        ScriptError::Runtime { line, .. } => assert_eq!(line, 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_variable_and_function_errors() {
    let mut e = engine("fn main() { return nope; }");
    assert!(e.call("main", vec![], &mut NullHost).is_err());
    let mut e = engine("fn main() { return nope(); }");
    assert!(e.call("main", vec![], &mut NullHost).is_err());
}

#[test]
fn globals_from_top_level() {
    let src = r#"
        let cut = 30.0;
        fn main() { return cut * 2; }
    "#;
    let mut e = engine(src);
    e.run_init(&mut NullHost).unwrap();
    assert_eq!(num(e.call("main", vec![], &mut NullHost).unwrap()), 60.0);
    assert!(e.global("cut").is_some());
}

fn higgs_event(mass_pair: f64) -> AnyRecord {
    let half = mass_pair / 2.0;
    AnyRecord::Event(CollisionEvent {
        event_id: 1,
        run: 1,
        sqrt_s: 500.0,
        is_signal: true,
        particles: vec![
            Particle::new(5, -1.0 / 3.0, FourVector::new(half, half, 0.0, 0.0)),
            Particle::new(-5, 1.0 / 3.0, FourVector::new(half, -half, 0.0, 0.0)),
        ],
    })
}

#[test]
fn full_analysis_against_aida_host() {
    let src = r#"
        fn init() {
            h1("/higgs/mass", 60, 0.0, 240.0);
            h2("/higgs/corr", 10, 0.0, 10.0, 10, 0.0, 10.0);
            prof("/higgs/prof", 10, 0.0, 10.0);
        }
        fn process(event) {
            let m = event.bb_mass;
            if m != null {
                fill("/higgs/mass", m);
                fill2("/higgs/corr", event.n_btags, event.n_particles);
                pfill("/higgs/prof", event.n_btags, m);
            }
        }
        fn end() { log("analysis complete"); }
    "#;
    let mut host = AidaHost::new();
    let mut e = engine(src);
    e.run_init(&mut host).unwrap();
    for m in [120.0, 121.0, 119.5] {
        process(&mut e, &mut host, &higgs_event(m)).unwrap();
    }
    e.run_end(&mut host).unwrap();

    let h = host.tree.get("/higgs/mass").unwrap().as_h1().unwrap();
    assert_eq!(h.entries(), 3);
    assert!((h.mean() - 120.1666).abs() < 1e-3);
    assert_eq!(host.messages, vec!["analysis complete".to_string()]);
    assert_eq!(host.tree.get("/higgs/corr").unwrap().entries(), 3);
    assert_eq!(host.tree.get("/higgs/prof").unwrap().entries(), 3);
}

#[test]
fn missing_field_reads_null_unknown_field_errors() {
    let rec = AnyRecord::Dna(DnaRead {
        read_id: 1,
        sample: 0,
        bases: "GATTACA".into(),
        quality: 30.0,
    });
    let src = r#"
        fn process(r) {
            if r.gc_content > 0.2 { log("gc-rich"); }
        }
    "#;
    let mut host = AidaHost::new();
    let mut e = engine(src);
    process(&mut e, &mut host, &rec).unwrap();
    assert_eq!(host.messages.len(), 1);

    let src_bad = "fn process(r) { return r.not_a_field; }";
    let mut e = engine(src_bad);
    assert!(process(&mut e, &mut NullHost, &rec).is_err());
}

#[test]
fn field_builtin_matches_dot_access() {
    let rec = Arc::new(higgs_event(100.0));
    let src = r#"
        fn process(e) {
            if field(e, "n_btags") != e.n_btags { log("mismatch"); }
        }
    "#;
    let mut host = AidaHost::new();
    let mut e = engine(src);
    e.process(&mut host, RecordRef::one(rec)).unwrap();
    assert!(host.messages.is_empty());
}

#[test]
fn filling_unbooked_histogram_is_a_runtime_error() {
    let mut host = AidaHost::new();
    let mut e = engine("fn process(e) { fill(\"/nope\", 1.0); }");
    let err = process(&mut e, &mut host, &higgs_event(1.0)).unwrap_err();
    assert!(matches!(err, ScriptError::Runtime { .. }));
}

#[test]
fn rebooking_same_histogram_is_idempotent_but_kind_conflict_errors() {
    let src = "fn init() { h1(\"/h\", 10, 0.0, 1.0); h1(\"/h\", 10, 0.0, 1.0); }";
    let mut host = AidaHost::new();
    engine(src).run_init(&mut host).unwrap();

    let src = "fn init() { h1(\"/h\", 10, 0.0, 1.0); h2(\"/h\", 2, 0.0, 1.0, 2, 0.0, 1.0); }";
    let mut host = AidaHost::new();
    assert!(engine(src).run_init(&mut host).is_err());
}

#[test]
fn missing_process_entry_point() {
    let mut e = engine("fn init() { }");
    assert_eq!(
        process(&mut e, &mut NullHost, &higgs_event(1.0)).unwrap_err(),
        ScriptError::MissingEntryPoint("process")
    );
}

#[test]
fn hot_reload_replaces_behaviour() {
    // Session flow: run v1, "edit the code", run v2 against a fresh host —
    // the paper's §3.6 dynamic reload between runs.
    let v1 = "fn init() { h1(\"/m\", 10, 0.0, 10.0); } fn process(e) { fill(\"/m\", 1.0); }";
    let v2 = "fn init() { h1(\"/m\", 10, 0.0, 10.0); } fn process(e) { fill(\"/m\", 9.0); }";
    let rec = higgs_event(5.0);

    let mut host = AidaHost::new();
    let mut e = engine(v1);
    e.run_init(&mut host).unwrap();
    process(&mut e, &mut host, &rec).unwrap();
    let h = host.tree.get("/m").unwrap().as_h1().unwrap();
    assert_eq!(h.bin_entries(1), 1);

    // Reload: new engine, new result tree (rewind semantics).
    let mut host2 = AidaHost::new();
    let mut e2 = engine(v2);
    e2.run_init(&mut host2).unwrap();
    process(&mut e2, &mut host2, &rec).unwrap();
    let h2 = host2.tree.get("/m").unwrap().as_h1().unwrap();
    assert_eq!(h2.bin_entries(9), 1);
    assert_eq!(h2.bin_entries(1), 0);
}

#[test]
fn stdlib_functions_from_scripts() {
    assert_eq!(num(run_expr("sqrt(16)")), 4.0);
    assert_eq!(num(run_expr("max(min(5, 3), 2)")), 3.0);
    assert_eq!(num(run_expr("len(\"GATTACA\")")), 7.0);
    assert_eq!(num(run_expr("count_matches(\"AAAA\", \"AA\")")), 3.0);
    assert!(matches!(run_expr("is_null(null)"), Value::Bool(true)));
    assert!(matches!(
        run_expr("contains(upper(\"gattaca\"), \"TTA\")"),
        Value::Bool(true)
    ));
    assert_eq!(num(run_expr("len(append([1,2], 3))")), 3.0);
}

#[test]
fn user_function_shadows_builtin() {
    let src = "fn sqrt(x) { return 99; } fn main() { return sqrt(4); }";
    let mut e = engine(src);
    assert_eq!(num(e.call("main", vec![], &mut NullHost).unwrap()), 99.0);
}

#[test]
fn run_analysis_convenience() {
    let records: Vec<AnyRecord> = (0..10).map(|i| higgs_event(100.0 + i as f64)).collect();
    let mut host = AidaHost::new();
    ipa_script::run_analysis(
        "fn init() { h1(\"/m\", 50, 0.0, 200.0); } fn process(e) { fill(\"/m\", e.bb_mass); }",
        &records,
        &mut host,
    )
    .unwrap();
    assert_eq!(host.tree.get("/m").unwrap().entries(), 10);
}

#[test]
fn tuple_bindings_book_and_fill() {
    let src = r#"
        fn init() { tuple("/nt/events", "mass, ntracks"); }
        fn process(e) {
            let m = e.bb_mass;
            if m != null { tfill("/nt/events", m, e.n_particles); }
        }
    "#;
    let mut host = AidaHost::new();
    let mut e = engine(src);
    e.run_init(&mut host).unwrap();
    for m in [100.0, 120.0, 140.0] {
        process(&mut e, &mut host, &higgs_event(m)).unwrap();
    }
    let t = host.tree.get("/nt/events").unwrap().as_tuple().unwrap();
    assert_eq!(t.rows(), 3);
    assert_eq!(
        t.column_names(),
        ["mass".to_string(), "ntracks".to_string()]
    );
    // Project the tuple column back into a histogram client-side.
    let h = t.project1d("mass", 12, 0.0, 240.0).unwrap();
    assert_eq!(h.entries(), 3);

    // Re-booking with the same schema is idempotent; different schema errors.
    let mut e2 = engine(src);
    e2.run_init(&mut host).unwrap();
    let bad = r#"fn init() { tuple("/nt/events", "other"); } fn process(e) { }"#;
    let mut e3 = engine(bad);
    assert!(e3.run_init(&mut host).is_err());

    // Filling with the wrong arity is a runtime error.
    let wrong = r#"fn process(e) { tfill("/nt/events", 1.0); }"#;
    let mut e4 = engine(wrong);
    assert!(process(&mut e4, &mut host, &higgs_event(1.0)).is_err());
}

// ---------------------------------------------------------------------------
// Backend-pinned tests: these construct a specific backend regardless of
// IPA_SCRIPT_BACKEND.

#[test]
fn tree_walk_backend_remains_directly_usable() {
    let p = compile("fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); }").unwrap();
    let mut i = Interpreter::new(&p);
    let v = i
        .call_function("fib", vec![Value::Num(10.0)], &mut NullHost)
        .unwrap();
    assert_eq!(num(v), 55.0);
}

#[test]
fn both_backends_agree_on_a_small_analysis() {
    let src = r#"
        let scale = 2.0;
        fn init() { h1("/x", 10, 0.0, 20.0); }
        fn process(e) { fill("/x", e.n_particles * scale); }
    "#;
    let p = compile(src).unwrap();
    let mut trees = Vec::new();
    for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
        let mut e = engine_for(&p, backend, ScriptFusion::from_env()).unwrap();
        let mut host = AidaHost::new();
        e.run_init(&mut host).unwrap();
        for m in [10.0, 11.0, 12.0] {
            e.process(&mut host, RecordRef::one(Arc::new(higgs_event(m))))
                .unwrap();
        }
        e.run_end(&mut host).unwrap();
        trees.push(host.tree);
    }
    assert_eq!(trees[0], trees[1]);
}

#[test]
fn no_per_record_deep_clone_either_backend() {
    // The engines hand records to scripts as `Arc` handles; retaining one
    // in a global must bump the refcount instead of deep-copying. This is
    // the regression test for the old per-record `clone()` hot path.
    let src = "let keep = null; fn process(e) { keep = e; }";
    let p = compile(src).unwrap();
    for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
        let mut e = engine_for(&p, backend, ScriptFusion::from_env()).unwrap();
        e.run_init(&mut NullHost).unwrap();
        let batch = Arc::new(vec![higgs_event(120.0)]);
        let before = Arc::strong_count(&batch);
        e.process(&mut NullHost, RecordRef::batch(Arc::clone(&batch), 0))
            .unwrap();
        // The script kept `e` in a global: exactly one more handle, and
        // no copy of the record data anywhere.
        assert_eq!(Arc::strong_count(&batch), before + 1, "{backend}");
        drop(e);
        assert_eq!(Arc::strong_count(&batch), before, "{backend}");
    }
}

//! Synthetic dataset generators.
//!
//! The paper analyzed 471 MB of simulated Linear-Collider physics data that
//! is not publicly available; these generators produce statistically
//! controlled substitutes with the same record-based structure, so the whole
//! split → analyze → merge pipeline is exercised on realistic content:
//!
//! * [`EventGeneratorConfig`] — collider events with a Higgs-like resonance
//!   (two b-tagged jets whose invariant mass peaks at `higgs_mass`) over a
//!   smooth combinatorial background, so the paper's "look for Higgs bosons"
//!   analysis finds a genuine peak,
//! * [`DnaGeneratorConfig`] — variable-length reads with per-sample GC bias
//!   and an implanted motif,
//! * [`TradeGeneratorConfig`] — geometric-Brownian-motion price paths over a
//!   set of symbols.
//!
//! All generators are fully deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::dna::DnaRead;
use crate::event::{CollisionEvent, FourVector, Particle};
use crate::record::AnyRecord;
use crate::trade::TradeRecord;

/// Draw a standard-normal deviate via Box–Muller (keeps `rand_distr` out of
/// the dependency tree).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Random unit vector, isotropic.
fn unit_vector(rng: &mut StdRng) -> (f64, f64, f64) {
    let cos_theta: f64 = rng.random_range(-1.0..1.0);
    let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
    let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    (sin_theta * phi.cos(), sin_theta * phi.sin(), cos_theta)
}

/// Lorentz-boost `v` by velocity `beta` (3-vector, |beta| < 1).
fn boost(v: FourVector, beta: (f64, f64, f64)) -> FourVector {
    let b2 = beta.0 * beta.0 + beta.1 * beta.1 + beta.2 * beta.2;
    if b2 <= 0.0 {
        return v;
    }
    let gamma = 1.0 / (1.0 - b2).sqrt();
    let bp = beta.0 * v.px + beta.1 * v.py + beta.2 * v.pz;
    let coef = (gamma - 1.0) * bp / b2 + gamma * v.e;
    FourVector {
        e: gamma * (v.e + bp),
        px: v.px + coef * beta.0,
        py: v.py + coef * beta.1,
        pz: v.pz + coef * beta.2,
    }
}

/// Configuration for the collider-event generator.
#[derive(Debug, Clone)]
pub struct EventGeneratorConfig {
    /// Number of events.
    pub events: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of events containing a Higgs-like decay.
    pub signal_fraction: f64,
    /// Resonance mass in GeV (2006-era Linear-Collider benchmark: 120).
    pub higgs_mass: f64,
    /// Relative detector resolution on the resonance mass.
    pub resolution: f64,
    /// Centre-of-mass energy in GeV.
    pub sqrt_s: f64,
    /// Mean number of background particles per event.
    pub mean_multiplicity: f64,
    /// Probability that a background particle carries a (mis)tagged b id.
    pub fake_btag_rate: f64,
}

impl Default for EventGeneratorConfig {
    fn default() -> Self {
        EventGeneratorConfig {
            events: 10_000,
            seed: 20060814, // ICPP'06 conference date
            signal_fraction: 0.12,
            higgs_mass: 120.0,
            resolution: 0.035,
            sqrt_s: 500.0,
            mean_multiplicity: 18.0,
            fake_btag_rate: 0.06,
        }
    }
}

impl EventGeneratorConfig {
    /// Rough events needed for a target encoded size: one event with the
    /// default multiplicity encodes to ~`25 + 44·(mean_multiplicity + 2·
    /// signal_fraction)` bytes. Used by benches to build size-controlled
    /// datasets ("analyze 471 MB") without trial and error.
    pub fn events_for_target_mb(&self, mb: f64) -> u64 {
        let per_event = 25.0 + 44.0 * (self.mean_multiplicity + 2.0 * self.signal_fraction);
        ((mb * 1.0e6) / per_event).max(1.0) as u64
    }

    /// Generate the configured number of events.
    pub fn generate(&self) -> Vec<AnyRecord> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.events)
            .map(|i| AnyRecord::Event(self.one_event(i, &mut rng)))
            .collect()
    }

    fn one_event(&self, event_id: u64, rng: &mut StdRng) -> CollisionEvent {
        let is_signal = rng.random::<f64>() < self.signal_fraction;
        let mut particles = Vec::new();

        if is_signal {
            // Smeared resonance mass.
            let m = (self.higgs_mass * (1.0 + self.resolution * gauss(rng))).max(1.0);
            // Parent momentum: recoiling against a Z in e+e- → ZH; take a
            // modest momentum with spread.
            let p_mag = (60.0 + 20.0 * gauss(rng)).abs();
            let dir = unit_vector(rng);
            let parent_e = (m * m + p_mag * p_mag).sqrt();
            let beta = (
                p_mag * dir.0 / parent_e,
                p_mag * dir.1 / parent_e,
                p_mag * dir.2 / parent_e,
            );
            // Back-to-back massless b quarks in the parent rest frame.
            let axis = unit_vector(rng);
            let half = m / 2.0;
            let d1 = FourVector::new(half, half * axis.0, half * axis.1, half * axis.2);
            let d2 = FourVector::new(half, -half * axis.0, -half * axis.1, -half * axis.2);
            particles.push(Particle::new(5, -1.0 / 3.0, boost(d1, beta)));
            particles.push(Particle::new(-5, 1.0 / 3.0, boost(d2, beta)));
        }

        // Smooth multi-particle background (also present in signal events).
        let n_bg = {
            // Poisson via inversion would be overkill; a clamped Gaussian
            // around the mean multiplicity is adequate for load shaping.
            let n = self.mean_multiplicity + self.mean_multiplicity.sqrt() * gauss(rng);
            n.max(2.0).round() as usize
        };
        for _ in 0..n_bg {
            // Exponential energy spectrum.
            let e = -18.0 * rng.random::<f64>().max(1e-12).ln();
            let dir = unit_vector(rng);
            let p4 = FourVector::new(e, e * dir.0, e * dir.1, e * dir.2);
            let (pdg, charge) = if rng.random::<f64>() < self.fake_btag_rate {
                (if rng.random::<bool>() { 5 } else { -5 }, 1.0 / 3.0)
            } else if rng.random::<f64>() < 0.6 {
                (211 * if rng.random::<bool>() { 1 } else { -1 }, 1.0)
            } else {
                (22, 0.0)
            };
            particles.push(Particle::new(pdg, charge, p4));
        }

        CollisionEvent {
            event_id,
            run: 1,
            sqrt_s: self.sqrt_s,
            is_signal,
            particles,
        }
    }
}

/// Configuration for the DNA read generator.
#[derive(Debug, Clone)]
pub struct DnaGeneratorConfig {
    /// Number of reads.
    pub reads: u64,
    /// RNG seed.
    pub seed: u64,
    /// Mean read length in bases.
    pub mean_length: f64,
    /// Standard deviation of read length.
    pub sd_length: f64,
    /// Number of distinct samples/lanes.
    pub samples: u32,
    /// Motif implanted in a fraction of reads.
    pub motif: String,
    /// Fraction of reads carrying the motif.
    pub motif_rate: f64,
}

impl Default for DnaGeneratorConfig {
    fn default() -> Self {
        DnaGeneratorConfig {
            reads: 20_000,
            seed: 42,
            mean_length: 150.0,
            sd_length: 30.0,
            samples: 4,
            motif: "GATTACA".to_string(),
            motif_rate: 0.2,
        }
    }
}

impl DnaGeneratorConfig {
    /// Generate the configured number of reads.
    pub fn generate(&self) -> Vec<AnyRecord> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
        (0..self.reads)
            .map(|read_id| {
                let sample = rng.random_range(0..self.samples.max(1));
                // Per-sample GC bias between 0.35 and 0.65.
                let gc_bias = 0.35 + 0.30 * (sample as f64 / self.samples.max(1) as f64);
                let len = (self.mean_length + self.sd_length * gauss(&mut rng))
                    .round()
                    .clamp(20.0, 10_000.0) as usize;
                let mut bases = Vec::with_capacity(len);
                for _ in 0..len {
                    let b = if rng.random::<f64>() < gc_bias {
                        if rng.random::<bool>() {
                            b'G'
                        } else {
                            b'C'
                        }
                    } else if rng.random::<bool>() {
                        b'A'
                    } else {
                        b'T'
                    };
                    bases.push(b);
                }
                // Implant the motif at a random position in some reads.
                if rng.random::<f64>() < self.motif_rate && len > self.motif.len() {
                    let pos = rng.random_range(0..=len - self.motif.len());
                    bases[pos..pos + self.motif.len()].copy_from_slice(self.motif.as_bytes());
                }
                debug_assert!(bases.iter().all(|b| BASES.contains(b)));
                AnyRecord::Dna(DnaRead {
                    read_id,
                    sample,
                    bases: String::from_utf8(bases)
                        .expect("ACGT is valid UTF-8")
                        .into(),
                    quality: (35.0 + 5.0 * gauss(&mut rng)).clamp(2.0, 60.0) as f32,
                })
            })
            .collect()
    }
}

/// Configuration for the trading-record generator.
#[derive(Debug, Clone)]
pub struct TradeGeneratorConfig {
    /// Number of trades.
    pub trades: u64,
    /// RNG seed.
    pub seed: u64,
    /// Ticker symbols to trade.
    pub symbols: Vec<String>,
    /// Initial price for every symbol.
    pub initial_price: f64,
    /// Per-trade GBM volatility.
    pub volatility: f64,
    /// Mean inter-trade gap in milliseconds.
    pub mean_gap_ms: f64,
}

impl Default for TradeGeneratorConfig {
    fn default() -> Self {
        TradeGeneratorConfig {
            trades: 50_000,
            seed: 7,
            symbols: ["TXC", "SLAC", "OSG", "EGEE", "GGF"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            initial_price: 100.0,
            volatility: 0.0008,
            mean_gap_ms: 120.0,
        }
    }
}

impl TradeGeneratorConfig {
    /// Generate the configured number of trades.
    pub fn generate(&self) -> Vec<AnyRecord> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nsym = self.symbols.len().max(1);
        // Intern symbols once; each trade then shares the buffer.
        let symbols: Vec<std::sync::Arc<str>> =
            self.symbols.iter().map(|s| s.as_str().into()).collect();
        let mut prices = vec![self.initial_price; nsym];
        let mut t_ms = 0u64;
        (0..self.trades)
            .map(|trade_id| {
                let s = rng.random_range(0..nsym);
                // Geometric Brownian step.
                prices[s] *= (self.volatility * gauss(&mut rng)).exp();
                t_ms += (-self.mean_gap_ms * rng.random::<f64>().max(1e-12).ln()) as u64 + 1;
                let volume = (10.0 * (-rng.random::<f64>().max(1e-12).ln()) * 10.0) as u32 + 1;
                AnyRecord::Trade(TradeRecord {
                    trade_id,
                    timestamp_ms: t_ms,
                    symbol: symbols.get(s).cloned().unwrap_or_else(|| "SYM".into()),
                    price: prices[s],
                    volume,
                    buyer_initiated: rng.random::<bool>(),
                })
            })
            .collect()
    }
}

/// Any generator configuration.
#[derive(Debug, Clone)]
pub enum GeneratorConfig {
    /// Collider events.
    Event(EventGeneratorConfig),
    /// DNA reads.
    Dna(DnaGeneratorConfig),
    /// Stock trades.
    Trade(TradeGeneratorConfig),
}

impl GeneratorConfig {
    /// Run the generator.
    pub fn generate(&self) -> Vec<AnyRecord> {
        match self {
            GeneratorConfig::Event(c) => c.generate(),
            GeneratorConfig::Dna(c) => c.generate(),
            GeneratorConfig::Trade(c) => c.generate(),
        }
    }
}

/// Generate a complete [`Dataset`] with descriptor.
pub fn generate_dataset(
    id: impl Into<String>,
    name: impl Into<String>,
    config: &GeneratorConfig,
) -> Dataset {
    Dataset::from_records(id, name, config.generate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFields;

    #[test]
    fn event_generation_is_deterministic() {
        let cfg = EventGeneratorConfig {
            events: 100,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = EventGeneratorConfig {
            seed: 1,
            ..cfg.clone()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn signal_events_peak_at_higgs_mass() {
        let cfg = EventGeneratorConfig {
            events: 2000,
            signal_fraction: 1.0,
            ..Default::default()
        };
        let recs = cfg.generate();
        let mut masses = Vec::new();
        for r in &recs {
            if let AnyRecord::Event(e) = r {
                if let Some(m) = e.leading_bb_mass() {
                    masses.push(m);
                }
            }
        }
        assert!(masses.len() > 1500, "most signal events must yield a pair");
        // The *median* sits near the Higgs mass even with combinatoric tails.
        masses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = masses[masses.len() / 2];
        assert!(
            (median - cfg.higgs_mass).abs() < 12.0,
            "median {median} too far from {}",
            cfg.higgs_mass
        );
    }

    #[test]
    fn background_only_has_no_narrow_peak() {
        let cfg = EventGeneratorConfig {
            events: 1500,
            signal_fraction: 0.0,
            ..Default::default()
        };
        let recs = cfg.generate();
        let mut in_window = 0usize;
        let mut with_pair = 0usize;
        for r in &recs {
            if let AnyRecord::Event(e) = r {
                assert!(!e.is_signal);
                if let Some(m) = e.leading_bb_mass() {
                    with_pair += 1;
                    if (m - cfg.higgs_mass).abs() < cfg.higgs_mass * 2.0 * cfg.resolution {
                        in_window += 1;
                    }
                }
            }
        }
        if with_pair > 0 {
            // The narrow window holds only a small fraction of background pairs.
            assert!(
                (in_window as f64) < 0.2 * with_pair as f64,
                "background looks peaked: {in_window}/{with_pair}"
            );
        }
    }

    #[test]
    fn signal_pair_mass_matches_generated_resonance() {
        // With zero resolution the two b quarks reconstruct exactly.
        let cfg = EventGeneratorConfig {
            events: 50,
            signal_fraction: 1.0,
            resolution: 0.0,
            fake_btag_rate: 0.0,
            ..Default::default()
        };
        for r in cfg.generate() {
            if let AnyRecord::Event(e) = r {
                let m = e.leading_bb_mass().expect("two b quarks present");
                assert!(
                    (m - cfg.higgs_mass).abs() < 1e-6,
                    "boost must preserve invariant mass, got {m}"
                );
            }
        }
    }

    #[test]
    fn dna_generation_properties() {
        let cfg = DnaGeneratorConfig {
            reads: 500,
            ..Default::default()
        };
        let recs = cfg.generate();
        assert_eq!(recs.len(), 500);
        let mut motif_reads = 0;
        for r in &recs {
            if let AnyRecord::Dna(d) = r {
                assert!(d.bases.bytes().all(|b| b"ACGT".contains(&b)));
                assert!(d.len() >= 20);
                if d.count_motif(&cfg.motif) > 0 {
                    motif_reads += 1;
                }
            }
        }
        // ~20% implanted plus random occurrences.
        assert!(motif_reads > 50, "motif reads: {motif_reads}");
        assert_eq!(recs, cfg.generate());
    }

    #[test]
    fn trade_generation_properties() {
        let cfg = TradeGeneratorConfig {
            trades: 1000,
            ..Default::default()
        };
        let recs = cfg.generate();
        let mut last_ts = 0;
        for r in &recs {
            if let AnyRecord::Trade(t) = r {
                assert!(t.price > 0.0);
                assert!(t.volume >= 1);
                assert!(t.timestamp_ms > last_ts, "timestamps strictly increase");
                last_ts = t.timestamp_ms;
                assert!(cfg.symbols.iter().any(|s| s.as_str() == &*t.symbol));
            }
        }
    }

    #[test]
    fn events_for_target_mb_is_within_20_percent() {
        let cfg = EventGeneratorConfig::default();
        for mb in [1.0, 5.0, 20.0] {
            let n = cfg.events_for_target_mb(mb);
            let ds = crate::dataset::Dataset::from_records(
                "t",
                "t",
                EventGeneratorConfig {
                    events: n,
                    ..cfg.clone()
                }
                .generate(),
            );
            let got = ds.descriptor.size_mb();
            assert!(
                (got - mb).abs() < 0.2 * mb,
                "target {mb} MB, got {got:.2} MB ({n} events)"
            );
        }
    }

    #[test]
    fn generate_dataset_builds_descriptor() {
        let ds = generate_dataset(
            "lc-mini",
            "Mini LC sample",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 50,
                ..Default::default()
            }),
        );
        assert_eq!(ds.descriptor.records, 50);
        assert!(ds.descriptor.size_bytes > 0);
        // Field access works end to end on generated data.
        assert!(ds.records[0].field("n_particles").is_some());
    }
}

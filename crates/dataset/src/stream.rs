//! Streaming dataset I/O.
//!
//! The paper targets "terabyte-scale datasets" (abstract): whole-dataset
//! `Vec<AnyRecord>` loading does not scale to that, so this module provides
//! incremental readers/writers over any `Read`/`Write` — an engine can
//! stream its part from disk with bounded memory, and the splitter service
//! can cut a file into part files in one pass without materializing
//! everything.

use std::io::{BufReader, BufWriter, Read, Write};

use bytes::{Buf, BufMut, BytesMut};

use crate::codec::{encode_record, DATASET_MAGIC, FORMAT_VERSION};
use crate::dataset::DatasetKind;
use crate::error::DatasetError;
use crate::record::AnyRecord;

/// Incremental writer: header up front, records appended one at a time.
/// The record count is carried in the header, so the total must be known
/// when the writer is created (dataset descriptors always know it).
pub struct StreamWriter<W: Write> {
    sink: BufWriter<W>,
    declared: u64,
    written: u64,
}

impl<W: Write> StreamWriter<W> {
    /// Start a stream of `count` records of the given kind.
    pub fn new(sink: W, kind: DatasetKind, count: u64) -> std::io::Result<Self> {
        let mut sink = BufWriter::new(sink);
        let mut header = BytesMut::with_capacity(18);
        header.put_slice(DATASET_MAGIC);
        header.put_u8(FORMAT_VERSION);
        header.put_u8(match kind {
            DatasetKind::Event => 0,
            DatasetKind::Dna => 1,
            DatasetKind::Trade => 2,
        });
        header.put_u64_le(count);
        sink.write_all(&header)?;
        Ok(StreamWriter {
            sink,
            declared: count,
            written: 0,
        })
    }

    /// Append one record.
    ///
    /// # Panics
    /// Panics if more records than declared are written (that would corrupt
    /// the stream for readers).
    pub fn write(&mut self, record: &AnyRecord) -> std::io::Result<()> {
        assert!(
            self.written < self.declared,
            "stream declared {} records, writing more",
            self.declared
        );
        let mut buf = BytesMut::new();
        encode_record(record, &mut buf);
        self.sink.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and finish; errors if fewer records than declared were
    /// written.
    pub fn finish(mut self) -> std::io::Result<()> {
        if self.written != self.declared {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "stream declared {} records but only {} were written",
                    self.declared, self.written
                ),
            ));
        }
        self.sink.flush()
    }
}

/// Incremental reader: parses the header, then yields records one at a
/// time with bounded buffering.
pub struct StreamReader<R: Read> {
    source: BufReader<R>,
    kind_tag: u8,
    remaining: u64,
    buf: Vec<u8>,
    /// Set after the first decode error: the stream position is undefined
    /// from then on, so the reader fuses (yields no further records).
    poisoned: bool,
}

impl<R: Read> StreamReader<R> {
    /// Open a stream, validating the header.
    pub fn new(source: R) -> Result<Self, DatasetError> {
        let mut source = BufReader::new(source);
        let mut header = [0u8; 18];
        read_exact(&mut source, &mut header, "header")?;
        if &header[0..8] != DATASET_MAGIC {
            return Err(DatasetError::BadMagic);
        }
        if header[8] != FORMAT_VERSION {
            return Err(DatasetError::BadVersion(header[8]));
        }
        let kind_tag = header[9];
        if kind_tag > 2 {
            return Err(DatasetError::BadKind(kind_tag));
        }
        let remaining = u64::from_le_bytes(header[10..18].try_into().expect("8 bytes"));
        Ok(StreamReader {
            source,
            kind_tag,
            remaining,
            buf: Vec::new(),
            poisoned: false,
        })
    }

    /// Kind of the records in this stream.
    pub fn kind(&self) -> DatasetKind {
        match self.kind_tag {
            0 => DatasetKind::Event,
            1 => DatasetKind::Dna,
            _ => DatasetKind::Trade,
        }
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read the next record (`Ok(None)` at clean end of stream). After a
    /// decode error the reader is poisoned: every further call returns the
    /// same kind of failure immediately rather than re-reading garbage.
    pub fn next_record(&mut self) -> Result<Option<AnyRecord>, DatasetError> {
        if self.poisoned {
            return Err(DatasetError::Truncated {
                context: "stream already failed",
            });
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        let rec = (|| {
            Ok(match self.kind_tag {
                0 => AnyRecord::Event(self.read_event()?),
                1 => AnyRecord::Dna(self.read_dna()?),
                _ => AnyRecord::Trade(self.read_trade()?),
            })
        })();
        match rec {
            Ok(rec) => {
                self.remaining -= 1;
                Ok(Some(rec))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8], DatasetError> {
        self.buf.resize(n, 0);
        read_exact(&mut self.source, &mut self.buf, context)?;
        Ok(&self.buf)
    }

    fn read_event(&mut self) -> Result<crate::event::CollisionEvent, DatasetError> {
        let head = self.take(8 + 4 + 8 + 1 + 4, "event header")?;
        let mut b = head;
        let event_id = b.get_u64_le();
        let run = b.get_u32_le();
        let sqrt_s = b.get_f64_le();
        let is_signal = b.get_u8() != 0;
        let n = b.get_u32_le() as usize;
        if n > 1_000_000 {
            return Err(DatasetError::LengthOverrun {
                declared: n,
                remaining: 1_000_000,
            });
        }
        let body = self.take(n * (4 + 8 * 5), "event particles")?;
        let mut b = body;
        let mut particles = Vec::with_capacity(n);
        for _ in 0..n {
            let pdg_id = b.get_i32_le();
            let charge = b.get_f64_le();
            let e = b.get_f64_le();
            let px = b.get_f64_le();
            let py = b.get_f64_le();
            let pz = b.get_f64_le();
            particles.push(crate::event::Particle::new(
                pdg_id,
                charge,
                crate::event::FourVector::new(e, px, py, pz),
            ));
        }
        Ok(crate::event::CollisionEvent {
            event_id,
            run,
            sqrt_s,
            is_signal,
            particles,
        })
    }

    fn read_dna(&mut self) -> Result<crate::dna::DnaRead, DatasetError> {
        let head = self.take(8 + 4 + 4 + 4, "dna header")?;
        let mut b = head;
        let read_id = b.get_u64_le();
        let sample = b.get_u32_le();
        let quality = b.get_f32_le();
        let len = b.get_u32_le() as usize;
        if len > 100_000_000 {
            return Err(DatasetError::LengthOverrun {
                declared: len,
                remaining: 100_000_000,
            });
        }
        let body = self.take(len, "dna bases")?.to_vec();
        let bases = String::from_utf8(body)
            .map_err(|_| DatasetError::BadUtf8)?
            .into();
        Ok(crate::dna::DnaRead {
            read_id,
            sample,
            bases,
            quality,
        })
    }

    fn read_trade(&mut self) -> Result<crate::trade::TradeRecord, DatasetError> {
        let head = self.take(8 + 8 + 2, "trade header")?;
        let mut b = head;
        let trade_id = b.get_u64_le();
        let timestamp_ms = b.get_u64_le();
        let sym_len = b.get_u16_le() as usize;
        let sym = self.take(sym_len, "trade symbol")?.to_vec();
        let symbol = String::from_utf8(sym)
            .map_err(|_| DatasetError::BadUtf8)?
            .into();
        let tail = self.take(8 + 4 + 1, "trade tail")?;
        let mut b = tail;
        let price = b.get_f64_le();
        let volume = b.get_u32_le();
        let buyer_initiated = b.get_u8() != 0;
        Ok(crate::trade::TradeRecord {
            trade_id,
            timestamp_ms,
            symbol,
            price,
            volume,
            buyer_initiated,
        })
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<AnyRecord, DatasetError>;

    /// Fused on error: the first decode failure is yielded once, after
    /// which the iterator ends (a truncated stream must not produce an
    /// unbounded sequence of errors).
    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        self.next_record().transpose()
    }
}

fn read_exact<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), DatasetError> {
    source
        .read_exact(buf)
        .map_err(|_| DatasetError::Truncated { context })
}

/// One-pass streaming split: read a dataset stream and write `n` part
/// files with contiguous, ±1-balanced record ranges — the splitter
/// service's out-of-core path. Returns per-part record counts.
pub fn split_stream<R: Read, W: Write, F: FnMut(usize) -> std::io::Result<W>>(
    source: R,
    n: usize,
    mut make_sink: F,
) -> Result<Vec<u64>, DatasetError> {
    if n == 0 {
        return Err(DatasetError::ZeroParts);
    }
    let mut reader = StreamReader::new(source)?;
    let total = reader.remaining();
    let kind = reader.kind();
    let base = total / n as u64;
    let extra = total % n as u64;
    let mut counts = Vec::with_capacity(n);
    for p in 0..n as u64 {
        let take = base + u64::from(p < extra);
        counts.push(take);
        let sink = make_sink(p as usize).map_err(|_| DatasetError::Truncated {
            context: "opening part sink",
        })?;
        let mut writer =
            StreamWriter::new(sink, kind, take).map_err(|_| DatasetError::Truncated {
                context: "writing part header",
            })?;
        for _ in 0..take {
            let rec = reader.next_record()?.ok_or(DatasetError::CountMismatch {
                declared: total,
                decoded: total - reader.remaining(),
            })?;
            writer.write(&rec).map_err(|_| DatasetError::Truncated {
                context: "writing part record",
            })?;
        }
        writer.finish().map_err(|_| DatasetError::Truncated {
            context: "finishing part",
        })?;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_dataset;
    use crate::generator::{DnaGeneratorConfig, EventGeneratorConfig, TradeGeneratorConfig};

    fn events(n: u64) -> Vec<AnyRecord> {
        EventGeneratorConfig {
            events: n,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn stream_writer_output_equals_bulk_encoding() {
        let recs = events(50);
        let mut out = Vec::new();
        let mut w = StreamWriter::new(&mut out, DatasetKind::Event, 50).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(out, encode_dataset(&recs));
    }

    #[test]
    fn stream_reader_round_trips_all_domains() {
        for recs in [
            events(30),
            DnaGeneratorConfig {
                reads: 30,
                ..Default::default()
            }
            .generate(),
            TradeGeneratorConfig {
                trades: 30,
                ..Default::default()
            }
            .generate(),
        ] {
            let bytes = encode_dataset(&recs);
            let reader = StreamReader::new(&bytes[..]).unwrap();
            assert_eq!(reader.remaining(), 30);
            let back: Vec<AnyRecord> = reader.map(|r| r.unwrap()).collect();
            assert_eq!(back, recs);
        }
    }

    #[test]
    fn stream_reader_detects_truncation_mid_record() {
        let bytes = encode_dataset(&events(10));
        let cut = &bytes[..bytes.len() - 3];
        let reader = StreamReader::new(cut).unwrap();
        let results: Vec<_> = reader.collect();
        assert!(results.last().unwrap().is_err());
        assert!(results.iter().filter(|r| r.is_ok()).count() < 10);
    }

    #[test]
    fn stream_reader_rejects_bad_header() {
        assert!(matches!(
            StreamReader::new(&b"NOTADSET0123456789"[..]),
            Err(DatasetError::BadMagic)
        ));
        let mut bytes = encode_dataset(&events(1));
        bytes[8] = 9;
        assert!(matches!(
            StreamReader::new(&bytes[..]),
            Err(DatasetError::BadVersion(9))
        ));
        let mut bytes = encode_dataset(&events(1));
        bytes[9] = 7;
        assert!(matches!(
            StreamReader::new(&bytes[..]),
            Err(DatasetError::BadKind(7))
        ));
    }

    #[test]
    fn writer_enforces_declared_count() {
        let mut out = Vec::new();
        let w = StreamWriter::new(&mut out, DatasetKind::Event, 3).unwrap();
        // Too few.
        assert!(w.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "writing more")]
    fn writer_panics_on_overrun() {
        let recs = events(2);
        let mut out = Vec::new();
        let mut w = StreamWriter::new(&mut out, DatasetKind::Event, 1).unwrap();
        w.write(&recs[0]).unwrap();
        w.write(&recs[1]).unwrap();
    }

    #[test]
    fn streaming_split_partitions_into_part_files() {
        let recs = events(23);
        let bytes = encode_dataset(&recs);
        let dir = std::env::temp_dir().join("ipa_stream_split");
        std::fs::create_dir_all(&dir).unwrap();
        let counts = split_stream(&bytes[..], 4, |i| {
            std::fs::File::create(dir.join(format!("part{i}.ipadset")))
        })
        .unwrap();
        assert_eq!(counts, vec![6, 6, 6, 5]);

        // Reassembling the part files in order recovers the dataset.
        let mut all = Vec::new();
        for i in 0..4 {
            let f = std::fs::File::open(dir.join(format!("part{i}.ipadset"))).unwrap();
            let reader = StreamReader::new(f).unwrap();
            for r in reader {
                all.push(r.unwrap());
            }
        }
        assert_eq!(all, recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_stream_zero_parts_errors() {
        let bytes = encode_dataset(&events(3));
        assert!(matches!(
            split_stream(&bytes[..], 0, |_| Ok(Vec::new())),
            Err(DatasetError::ZeroParts)
        ));
    }

    #[test]
    fn bounded_memory_on_large_stream() {
        // 200k trades streamed one by one; the reader's scratch buffer
        // stays record-sized (we can only assert behaviourally: it works
        // and yields the right count without building a Vec of records).
        let recs = TradeGeneratorConfig {
            trades: 50_000,
            ..Default::default()
        }
        .generate();
        let bytes = encode_dataset(&recs);
        let reader = StreamReader::new(&bytes[..]).unwrap();
        let mut count = 0u64;
        let mut notional = 0.0f64;
        for r in reader {
            if let AnyRecord::Trade(t) = r.unwrap() {
                notional += t.notional();
                count += 1;
            }
        }
        assert_eq!(count, 50_000);
        assert!(notional > 0.0);
    }
}

//! Stock trading record model — the paper's business example domain
//! ("stock trading records in business", §1).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// One executed trade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeRecord {
    /// Monotone trade number within the dataset.
    pub trade_id: u64,
    /// Milliseconds since the session open.
    pub timestamp_ms: u64,
    /// Ticker symbol. Shared so field lookups clone a pointer, not the
    /// buffer.
    pub symbol: Arc<str>,
    /// Execution price.
    pub price: f64,
    /// Number of shares.
    pub volume: u32,
    /// True for buyer-initiated trades (tick rule).
    pub buyer_initiated: bool,
}

impl TradeRecord {
    /// Notional value of the trade (price × volume).
    pub fn notional(&self) -> f64 {
        self.price * self.volume as f64
    }

    /// Signed volume: positive when buyer-initiated.
    pub fn signed_volume(&self) -> i64 {
        if self.buyer_initiated {
            self.volume as i64
        } else {
            -(self.volume as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notional_and_signed_volume() {
        let t = TradeRecord {
            trade_id: 1,
            timestamp_ms: 1000,
            symbol: "SLAC".into(),
            price: 25.0,
            volume: 40,
            buyer_initiated: false,
        };
        assert!((t.notional() - 1000.0).abs() < 1e-12);
        assert_eq!(t.signed_volume(), -40);
        let mut b = t.clone();
        b.buyer_initiated = true;
        assert_eq!(b.signed_volume(), 40);
    }
}

//! Datasets and their descriptors.
//!
//! A [`Dataset`] is a homogeneous, ordered collection of records together
//! with the [`DatasetDescriptor`] the catalog/locator layer trades in: a
//! stable identifier, a human name, a kind, the record count, and the byte
//! size (the quantity `X` of the paper's cost equations).

use serde::{Deserialize, Serialize};

use crate::codec::{decode_dataset, encode_dataset, encoded_record_size};
use crate::error::DatasetError;
use crate::record::AnyRecord;

/// Stable dataset identifier (the catalog's "pointer to the actual data").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DatasetId(pub String);

impl DatasetId {
    /// Wrap a string id.
    pub fn new(s: impl Into<String>) -> Self {
        DatasetId(s.into())
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Which domain a dataset's records belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Collider-physics events.
    Event,
    /// DNA sequencing reads.
    Dna,
    /// Stock trades.
    Trade,
}

impl DatasetKind {
    /// Kind of one record.
    pub fn of(record: &AnyRecord) -> DatasetKind {
        match record {
            AnyRecord::Event(_) => DatasetKind::Event,
            AnyRecord::Dna(_) => DatasetKind::Dna,
            AnyRecord::Trade(_) => DatasetKind::Trade,
        }
    }
}

/// Catalog-level description of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Stable identifier.
    pub id: DatasetId,
    /// Human-readable name.
    pub name: String,
    /// Record domain.
    pub kind: DatasetKind,
    /// Number of records.
    pub records: u64,
    /// Encoded size in bytes (header + payload).
    pub size_bytes: u64,
}

impl DatasetDescriptor {
    /// Encoded size in (decimal) megabytes — the `X` of the paper's
    /// equations.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / 1.0e6
    }
}

/// An in-memory dataset: descriptor + records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Catalog descriptor (kept consistent with `records` by construction).
    pub descriptor: DatasetDescriptor,
    /// The records, in dataset order.
    pub records: Vec<AnyRecord>,
}

/// Byte size of the codec header.
const HEADER_BYTES: u64 = 8 + 1 + 1 + 8;

impl Dataset {
    /// Build a dataset from records, computing the descriptor.
    ///
    /// # Panics
    /// Panics if records are not homogeneous in kind.
    pub fn from_records(
        id: impl Into<String>,
        name: impl Into<String>,
        records: Vec<AnyRecord>,
    ) -> Self {
        let kind = records
            .first()
            .map(DatasetKind::of)
            .unwrap_or(DatasetKind::Event);
        assert!(
            records.iter().all(|r| DatasetKind::of(r) == kind),
            "dataset records must be homogeneous"
        );
        let payload: u64 = records.iter().map(|r| encoded_record_size(r) as u64).sum();
        Dataset {
            descriptor: DatasetDescriptor {
                id: DatasetId::new(id),
                name: name.into(),
                kind,
                records: records.len() as u64,
                size_bytes: HEADER_BYTES + payload,
            },
            records,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Materialize the contiguous `[first, last)` record range as a
    /// standalone dataset published under `id` (locator-style
    /// `"<base>@<first>..<last>"` views), with a fresh descriptor sized to
    /// the slice. Returns `None` when the range does not fit.
    pub fn range_view(&self, id: impl Into<String>, first: usize, last: usize) -> Option<Dataset> {
        if first > last || last > self.records.len() {
            return None;
        }
        Some(Dataset::from_records(
            id,
            format!("{} [{first}..{last})", self.descriptor.name),
            self.records[first..last].to_vec(),
        ))
    }

    /// Encode to the binary format.
    pub fn encode(&self) -> Vec<u8> {
        encode_dataset(&self.records)
    }

    /// Decode from the binary format, recomputing the descriptor.
    pub fn decode(
        id: impl Into<String>,
        name: impl Into<String>,
        bytes: &[u8],
    ) -> Result<Self, DatasetError> {
        let records = decode_dataset(bytes)?;
        Ok(Dataset::from_records(id, name, records))
    }

    /// Write the encoded dataset to a file.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Read a dataset file.
    pub fn read_file(
        id: impl Into<String>,
        name: impl Into<String>,
        path: &std::path::Path,
    ) -> std::io::Result<Result<Self, DatasetError>> {
        let bytes = std::fs::read(path)?;
        Ok(Dataset::decode(id, name, &bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollisionEvent;

    fn events(n: u64) -> Vec<AnyRecord> {
        (0..n)
            .map(|i| {
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect()
    }

    #[test]
    fn descriptor_matches_encoding() {
        let ds = Dataset::from_records("lc-001", "LC sample", events(10));
        assert_eq!(ds.descriptor.records, 10);
        assert_eq!(ds.descriptor.size_bytes as usize, ds.encode().len());
        assert_eq!(ds.descriptor.kind, DatasetKind::Event);
    }

    #[test]
    fn encode_decode_preserves_dataset() {
        let ds = Dataset::from_records("x", "X", events(4));
        let back = Dataset::decode("x", "X", &ds.encode()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn range_view_slices_and_resizes() {
        let ds = Dataset::from_records("x", "X", events(10));
        let view = ds.range_view("x@2..7", 2, 7).unwrap();
        assert_eq!(view.descriptor.id, DatasetId::new("x@2..7"));
        assert_eq!(view.descriptor.records, 5);
        assert!(view.descriptor.size_bytes < ds.descriptor.size_bytes);
        assert_eq!(view.records[..], ds.records[2..7]);
        assert!(view.descriptor.name.contains("[2..7)"));
        // Degenerate empty view is fine; out-of-range / inverted are not.
        assert_eq!(ds.range_view("x@3..3", 3, 3).unwrap().len(), 0);
        assert!(ds.range_view("x@0..11", 0, 11).is_none());
        assert!(ds.range_view("x@7..2", 7, 2).is_none());
    }

    #[test]
    fn size_mb_is_decimal_megabytes() {
        let mut ds = Dataset::from_records("x", "X", events(1));
        ds.descriptor.size_bytes = 471_000_000;
        assert!((ds.descriptor.size_mb() - 471.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn mixed_kinds_rejected() {
        let mut recs = events(1);
        recs.push(AnyRecord::Dna(crate::dna::DnaRead {
            read_id: 0,
            sample: 0,
            bases: "A".into(),
            quality: 0.0,
        }));
        Dataset::from_records("x", "X", recs);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ipa_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ipadset");
        let ds = Dataset::from_records("f", "F", events(3));
        ds.write_file(&path).unwrap();
        let back = Dataset::read_file("f", "F", &path).unwrap().unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }
}

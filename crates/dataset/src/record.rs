//! The uniform record model.
//!
//! Analysis engines iterate records and hand each one to user code. The
//! scripting layer accesses record contents by *field name* — this is what
//! makes the framework "not specific to any particular science application"
//! (paper §6) while still supporting rich, domain-specific observables.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dna::DnaRead;
use crate::event::CollisionEvent;
use crate::trade::TradeRecord;

/// A dynamically-typed field value handed to analysis scripts.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Numeric field.
    Num(f64),
    /// Integer field (kept distinct so ids don't lose precision).
    Int(i64),
    /// Boolean field.
    Bool(bool),
    /// String field. Shared, not owned: looking up a string field is a
    /// refcount bump, never an allocation.
    Str(Arc<str>),
    /// A field that exists but is absent for this record
    /// (e.g. `bb_mass` in an event with fewer than two b-tags).
    Missing,
}

impl FieldValue {
    /// Numeric view (ints and bools widen; strings/missing are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Num(x) => Some(*x),
            FieldValue::Int(i) => Some(*i as f64),
            FieldValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Named-field access over a record. Field name vocabulary is per-domain and
/// documented on each implementation.
pub trait RecordFields {
    /// Look up a field by name; `None` means the name is unknown for this
    /// record type (a script error), while `Some(FieldValue::Missing)` means
    /// the field is understood but absent on this record.
    fn field(&self, name: &str) -> Option<FieldValue>;

    /// The field names this record type understands.
    fn field_names(&self) -> &'static [&'static str];
}

/// Any record the framework can analyze.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyRecord {
    /// Collider-physics event.
    Event(CollisionEvent),
    /// DNA sequencing read.
    Dna(DnaRead),
    /// Stock trade.
    Trade(TradeRecord),
}

impl AnyRecord {
    /// Sequential id of the record within its dataset.
    pub fn id(&self) -> u64 {
        match self {
            AnyRecord::Event(e) => e.event_id,
            AnyRecord::Dna(d) => d.read_id,
            AnyRecord::Trade(t) => t.trade_id,
        }
    }

    /// Short kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyRecord::Event(_) => "event",
            AnyRecord::Dna(_) => "dna",
            AnyRecord::Trade(_) => "trade",
        }
    }
}

impl RecordFields for CollisionEvent {
    /// Fields: `event_id`, `run`, `sqrt_s`, `n_particles`, `n_charged`,
    /// `visible_energy`, `missing_pt`, `n_btags`, `bb_mass` (missing when
    /// fewer than two b-tags), `is_signal`, `lead_pt`.
    fn field(&self, name: &str) -> Option<FieldValue> {
        Some(match name {
            "event_id" => FieldValue::Int(self.event_id as i64),
            "run" => FieldValue::Int(self.run as i64),
            "sqrt_s" => FieldValue::Num(self.sqrt_s),
            "n_particles" => FieldValue::Int(self.particles.len() as i64),
            "n_charged" => FieldValue::Int(self.charged_multiplicity() as i64),
            "visible_energy" => FieldValue::Num(self.visible_energy()),
            "missing_pt" => FieldValue::Num(self.missing_pt()),
            "n_btags" => {
                FieldValue::Int(self.particles.iter().filter(|p| p.is_b_tagged()).count() as i64)
            }
            "bb_mass" => match self.leading_bb_mass() {
                Some(m) => FieldValue::Num(m),
                None => FieldValue::Missing,
            },
            "is_signal" => FieldValue::Bool(self.is_signal),
            "lead_pt" => {
                let lead = self
                    .particles
                    .iter()
                    .map(|p| p.p4.pt())
                    .fold(f64::NAN, f64::max);
                if lead.is_nan() {
                    FieldValue::Missing
                } else {
                    FieldValue::Num(lead)
                }
            }
            _ => return None,
        })
    }

    fn field_names(&self) -> &'static [&'static str] {
        &[
            "event_id",
            "run",
            "sqrt_s",
            "n_particles",
            "n_charged",
            "visible_energy",
            "missing_pt",
            "n_btags",
            "bb_mass",
            "is_signal",
            "lead_pt",
        ]
    }
}

impl RecordFields for DnaRead {
    /// Fields: `read_id`, `sample`, `length`, `gc_content`, `quality`,
    /// `bases`.
    fn field(&self, name: &str) -> Option<FieldValue> {
        Some(match name {
            "read_id" => FieldValue::Int(self.read_id as i64),
            "sample" => FieldValue::Int(self.sample as i64),
            "length" => FieldValue::Int(self.len() as i64),
            "gc_content" => FieldValue::Num(self.gc_content()),
            "quality" => FieldValue::Num(self.quality as f64),
            "bases" => FieldValue::Str(self.bases.clone()),
            _ => return None,
        })
    }

    fn field_names(&self) -> &'static [&'static str] {
        &[
            "read_id",
            "sample",
            "length",
            "gc_content",
            "quality",
            "bases",
        ]
    }
}

impl RecordFields for TradeRecord {
    /// Fields: `trade_id`, `timestamp_ms`, `symbol`, `price`, `volume`,
    /// `notional`, `signed_volume`, `buyer_initiated`.
    fn field(&self, name: &str) -> Option<FieldValue> {
        Some(match name {
            "trade_id" => FieldValue::Int(self.trade_id as i64),
            "timestamp_ms" => FieldValue::Int(self.timestamp_ms as i64),
            "symbol" => FieldValue::Str(self.symbol.clone()),
            "price" => FieldValue::Num(self.price),
            "volume" => FieldValue::Int(self.volume as i64),
            "notional" => FieldValue::Num(self.notional()),
            "signed_volume" => FieldValue::Int(self.signed_volume()),
            "buyer_initiated" => FieldValue::Bool(self.buyer_initiated),
            _ => return None,
        })
    }

    fn field_names(&self) -> &'static [&'static str] {
        &[
            "trade_id",
            "timestamp_ms",
            "symbol",
            "price",
            "volume",
            "notional",
            "signed_volume",
            "buyer_initiated",
        ]
    }
}

impl RecordFields for AnyRecord {
    fn field(&self, name: &str) -> Option<FieldValue> {
        match self {
            AnyRecord::Event(e) => e.field(name),
            AnyRecord::Dna(d) => d.field(name),
            AnyRecord::Trade(t) => t.field(name),
        }
    }

    fn field_names(&self) -> &'static [&'static str] {
        match self {
            AnyRecord::Event(e) => e.field_names(),
            AnyRecord::Dna(d) => d.field_names(),
            AnyRecord::Trade(t) => t.field_names(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FourVector, Particle};

    fn sample_event() -> CollisionEvent {
        CollisionEvent {
            event_id: 42,
            run: 3,
            sqrt_s: 500.0,
            is_signal: true,
            particles: vec![
                Particle::new(
                    5,
                    -1.0 / 3.0,
                    FourVector::from_mass_momentum(4.8, 40.0, 0.0, 5.0),
                ),
                Particle::new(
                    -5,
                    1.0 / 3.0,
                    FourVector::from_mass_momentum(4.8, -35.0, 8.0, -5.0),
                ),
                Particle::new(22, 0.0, FourVector::new(12.0, 0.0, 12.0, 0.0)),
            ],
        }
    }

    #[test]
    fn event_fields_resolve() {
        let ev = sample_event();
        assert_eq!(ev.field("event_id"), Some(FieldValue::Int(42)));
        assert_eq!(ev.field("n_particles"), Some(FieldValue::Int(3)));
        assert_eq!(ev.field("n_btags"), Some(FieldValue::Int(2)));
        assert!(matches!(ev.field("bb_mass"), Some(FieldValue::Num(m)) if m > 0.0));
        assert_eq!(ev.field("is_signal"), Some(FieldValue::Bool(true)));
        assert_eq!(ev.field("no_such_field"), None);
    }

    #[test]
    fn missing_vs_unknown_fields() {
        let mut ev = sample_event();
        ev.particles.truncate(1); // only one b-tag left
        assert_eq!(ev.field("bb_mass"), Some(FieldValue::Missing));
        assert_eq!(ev.field("bogus"), None);
        ev.particles.clear();
        assert_eq!(ev.field("lead_pt"), Some(FieldValue::Missing));
    }

    #[test]
    fn any_record_dispatch() {
        let r = AnyRecord::Event(sample_event());
        assert_eq!(r.kind(), "event");
        assert_eq!(r.id(), 42);
        assert!(r.field_names().contains(&"bb_mass"));

        let d = AnyRecord::Dna(DnaRead {
            read_id: 7,
            sample: 1,
            bases: "GGCC".into(),
            quality: 33.0,
        });
        assert_eq!(d.id(), 7);
        assert_eq!(d.field("gc_content"), Some(FieldValue::Num(1.0)));

        let t = AnyRecord::Trade(TradeRecord {
            trade_id: 9,
            timestamp_ms: 5,
            symbol: "X".into(),
            price: 2.0,
            volume: 3,
            buyer_initiated: true,
        });
        assert_eq!(t.field("notional"), Some(FieldValue::Num(6.0)));
        assert_eq!(t.field("signed_volume"), Some(FieldValue::Int(3)));
    }

    #[test]
    fn field_value_numeric_views() {
        assert_eq!(FieldValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(FieldValue::Bool(false).as_f64(), Some(0.0));
        assert_eq!(FieldValue::Str("x".into()).as_f64(), None);
        assert_eq!(FieldValue::Missing.as_f64(), None);
    }
}

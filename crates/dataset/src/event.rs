//! Collider-physics event model.
//!
//! The paper's reference workload is a Java algorithm "that looks for Higgs
//! Bosons in simulated Linear Collider data". These types model such events:
//! relativistic four-vectors, particles with PDG identity and charge, and an
//! event as a list of final-state particles plus global quantities.

use serde::{Deserialize, Serialize};

/// A relativistic four-vector `(e, px, py, pz)` in GeV (natural units).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FourVector {
    /// Energy.
    pub e: f64,
    /// x momentum.
    pub px: f64,
    /// y momentum.
    pub py: f64,
    /// z momentum.
    pub pz: f64,
}

impl FourVector {
    /// Construct from components.
    pub fn new(e: f64, px: f64, py: f64, pz: f64) -> Self {
        FourVector { e, px, py, pz }
    }

    /// Construct from mass and three-momentum (on-shell energy).
    pub fn from_mass_momentum(mass: f64, px: f64, py: f64, pz: f64) -> Self {
        let e = (mass * mass + px * px + py * py + pz * pz).sqrt();
        FourVector { e, px, py, pz }
    }

    /// Invariant mass √(E² − |p|²), clamped at 0 for space-like noise.
    pub fn mass(&self) -> f64 {
        (self.e * self.e - self.px * self.px - self.py * self.py - self.pz * self.pz)
            .max(0.0)
            .sqrt()
    }

    /// Transverse momentum √(px² + py²).
    pub fn pt(&self) -> f64 {
        (self.px * self.px + self.py * self.py).sqrt()
    }

    /// Three-momentum magnitude.
    pub fn p(&self) -> f64 {
        (self.px * self.px + self.py * self.py + self.pz * self.pz).sqrt()
    }

    /// Pseudorapidity η = −ln tan(θ/2); ±inf along the beam axis.
    pub fn eta(&self) -> f64 {
        let p = self.p();
        if p == self.pz.abs() {
            return if self.pz >= 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        0.5 * ((p + self.pz) / (p - self.pz)).ln()
    }

    /// Azimuthal angle φ ∈ (−π, π].
    pub fn phi(&self) -> f64 {
        self.py.atan2(self.px)
    }

    /// Component-wise sum (composite-system four-vector).
    pub fn add(&self, other: &FourVector) -> FourVector {
        FourVector {
            e: self.e + other.e,
            px: self.px + other.px,
            py: self.py + other.py,
            pz: self.pz + other.pz,
        }
    }
}

impl std::ops::Add for FourVector {
    type Output = FourVector;

    fn add(self, rhs: FourVector) -> FourVector {
        FourVector::add(&self, &rhs)
    }
}

/// A reconstructed final-state particle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// PDG Monte-Carlo particle id (e.g. 5 = b quark, 11 = electron,
    /// 22 = photon; sign encodes antiparticles).
    pub pdg_id: i32,
    /// Electric charge in units of e.
    pub charge: f64,
    /// Kinematics.
    pub p4: FourVector,
}

impl Particle {
    /// Construct a particle.
    pub fn new(pdg_id: i32, charge: f64, p4: FourVector) -> Self {
        Particle { pdg_id, charge, p4 }
    }

    /// True for b-flavoured jets/quarks (|pdg| == 5), the Higgs-search tag.
    pub fn is_b_tagged(&self) -> bool {
        self.pdg_id.abs() == 5
    }
}

/// One collider event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// Monotone event number within the dataset.
    pub event_id: u64,
    /// Run number (groups events taken under one configuration).
    pub run: u32,
    /// Centre-of-mass energy of the collision in GeV.
    pub sqrt_s: f64,
    /// True for generator-level signal events (used only for validation
    /// plots; a real analysis cannot see this).
    pub is_signal: bool,
    /// Final-state particles.
    pub particles: Vec<Particle>,
}

impl CollisionEvent {
    /// Total visible energy (Σ E over particles).
    pub fn visible_energy(&self) -> f64 {
        self.particles.iter().map(|p| p.p4.e).sum()
    }

    /// Number of charged particles.
    pub fn charged_multiplicity(&self) -> usize {
        self.particles.iter().filter(|p| p.charge != 0.0).count()
    }

    /// Invariant mass of the pair of b-tagged particles with the two highest
    /// transverse momenta — the paper-style "Higgs candidate" observable.
    /// `None` when fewer than two b-tags exist.
    pub fn leading_bb_mass(&self) -> Option<f64> {
        let mut btags: Vec<&Particle> = self.particles.iter().filter(|p| p.is_b_tagged()).collect();
        if btags.len() < 2 {
            return None;
        }
        btags.sort_by(|a, b| {
            b.p4.pt()
                .partial_cmp(&a.p4.pt())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Some(btags[0].p4.add(&btags[1].p4).mass())
    }

    /// Missing transverse momentum (negative vector sum of particle pT).
    pub fn missing_pt(&self) -> f64 {
        let (sx, sy) = self
            .particles
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.p4.px, sy + p.p4.py));
        (sx * sx + sy * sy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn four_vector_mass_round_trip() {
        let v = FourVector::from_mass_momentum(125.0, 30.0, -40.0, 12.0);
        assert!(approx(v.mass(), 125.0, 1e-9));
    }

    #[test]
    fn spacelike_mass_clamps_to_zero() {
        let v = FourVector::new(1.0, 5.0, 0.0, 0.0);
        assert_eq!(v.mass(), 0.0);
    }

    #[test]
    fn pt_and_phi() {
        let v = FourVector::new(10.0, 3.0, 4.0, 0.0);
        assert!(approx(v.pt(), 5.0, 1e-12));
        assert!(approx(v.phi(), (4.0f64 / 3.0).atan(), 1e-12));
    }

    #[test]
    fn eta_is_zero_in_transverse_plane_and_inf_on_axis() {
        let v = FourVector::new(10.0, 5.0, 0.0, 0.0);
        assert!(approx(v.eta(), 0.0, 1e-12));
        let beam = FourVector::new(10.0, 0.0, 0.0, 7.0);
        assert!(beam.eta().is_infinite() && beam.eta() > 0.0);
        let beam_neg = FourVector::new(10.0, 0.0, 0.0, -7.0);
        assert!(beam_neg.eta().is_infinite() && beam_neg.eta() < 0.0);
    }

    #[test]
    fn adding_back_to_back_decay_recovers_parent_mass() {
        // Parent at rest with mass M decays to two massless daughters of E = M/2.
        let m = 120.0;
        let d1 = FourVector::new(m / 2.0, m / 2.0, 0.0, 0.0);
        let d2 = FourVector::new(m / 2.0, -m / 2.0, 0.0, 0.0);
        assert!(approx((d1 + d2).mass(), m, 1e-9));
    }

    #[test]
    fn leading_bb_mass_picks_highest_pt_pair() {
        let b = |pt: f64, mass_partner_shift: f64| {
            Particle::new(
                5,
                -1.0 / 3.0,
                FourVector::from_mass_momentum(4.8, pt, mass_partner_shift, 1.0),
            )
        };
        let ev = CollisionEvent {
            event_id: 1,
            run: 1,
            sqrt_s: 500.0,
            is_signal: true,
            particles: vec![b(50.0, 0.0), b(45.0, -20.0), b(1.0, 5.0)],
        };
        let m = ev.leading_bb_mass().unwrap();
        // The low-pt third b must not participate.
        let expect = ev.particles[0].p4.add(&ev.particles[1].p4).mass();
        assert!(approx(m, expect, 1e-12));
    }

    #[test]
    fn leading_bb_mass_none_without_two_btags() {
        let ev = CollisionEvent {
            event_id: 1,
            run: 1,
            sqrt_s: 500.0,
            is_signal: false,
            particles: vec![Particle::new(
                11,
                -1.0,
                FourVector::new(10.0, 1.0, 0.0, 0.0),
            )],
        };
        assert!(ev.leading_bb_mass().is_none());
    }

    #[test]
    fn event_globals() {
        let ev = CollisionEvent {
            event_id: 7,
            run: 2,
            sqrt_s: 500.0,
            is_signal: false,
            particles: vec![
                Particle::new(211, 1.0, FourVector::new(5.0, 3.0, 0.0, 0.0)),
                Particle::new(22, 0.0, FourVector::new(2.0, -1.0, 0.0, 0.0)),
            ],
        };
        assert!(approx(ev.visible_energy(), 7.0, 1e-12));
        assert_eq!(ev.charged_multiplicity(), 1);
        assert!(approx(ev.missing_pt(), 2.0, 1e-12));
    }
}

//! Dataset splitting.
//!
//! The paper's Splitter service "will import the dataset from the actual
//! location and split it into a pre-configured number of approximately equal
//! parts" (§3.4), one per analysis engine. Two strategies are provided:
//!
//! * [`split_even`] — equal *record counts* (±1 record),
//! * [`split_records`] — equal *byte sizes* (greedy, bounded imbalance),
//!   better when record sizes vary wildly (e.g. variable-length DNA reads).
//!
//! Both preserve record order (part `i` holds a contiguous range that comes
//! before part `i+1`'s) and form an exact partition — no record is lost or
//! duplicated. Those invariants are property-tested.

use serde::{Deserialize, Serialize};

use crate::codec::encoded_record_size;
use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::record::AnyRecord;

/// Description of how a dataset was split (returned alongside the parts so
/// the session can report staging progress per part).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Number of parts produced (== parts requested, possibly with empty
    /// tails when there are fewer records than parts).
    pub parts: usize,
    /// `(first_record_index, record_count, byte_size)` per part.
    pub ranges: Vec<(u64, u64, u64)>,
}

impl SplitPlan {
    /// Largest part byte size divided by the *mean* non-empty part byte
    /// size; 1.0 means perfectly balanced. Returns 1.0 when fewer than two
    /// non-empty parts exist.
    ///
    /// Using the mean (rather than the smallest part) keeps the metric
    /// meaningful when one tail part holds a single small record: a split
    /// whose parts are `[5000, 5000, 10]` bytes is reported as ~1.5 (the
    /// largest part is 1.5× the average work), not 500.
    pub fn imbalance(&self) -> f64 {
        let sizes: Vec<u64> = self
            .ranges
            .iter()
            .map(|&(_, _, b)| b)
            .filter(|&b| b > 0)
            .collect();
        if sizes.len() < 2 {
            return 1.0;
        }
        let max = *sizes.iter().max().expect("non-empty") as f64;
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        max / mean
    }
}

/// Split into `n` parts with equal record counts (±1). The first
/// `len % n` parts get the extra record, preserving order.
pub fn split_even(
    records: &[AnyRecord],
    n: usize,
) -> Result<(Vec<Vec<AnyRecord>>, SplitPlan), DatasetError> {
    if n == 0 {
        return Err(DatasetError::ZeroParts);
    }
    let base = records.len() / n;
    let extra = records.len() % n;
    let mut parts = Vec::with_capacity(n);
    let mut ranges = Vec::with_capacity(n);
    let mut idx = 0usize;
    for p in 0..n {
        let take = base + usize::from(p < extra);
        let slice = &records[idx..idx + take];
        let bytes: u64 = slice.iter().map(|r| encoded_record_size(r) as u64).sum();
        ranges.push((idx as u64, take as u64, bytes));
        parts.push(slice.to_vec());
        idx += take;
    }
    debug_assert_eq!(idx, records.len());
    Ok((parts, SplitPlan { parts: n, ranges }))
}

/// Split into `n` parts targeting equal *byte* sizes while preserving
/// order. Greedy: a part is closed once it reaches the running byte target.
/// Each part's size differs from the ideal by at most the largest single
/// record; when there are more parts than records some parts are empty.
pub fn split_records(
    records: &[AnyRecord],
    n: usize,
) -> Result<(Vec<Vec<AnyRecord>>, SplitPlan), DatasetError> {
    if n == 0 {
        return Err(DatasetError::ZeroParts);
    }
    let sizes: Vec<u64> = records
        .iter()
        .map(|r| encoded_record_size(r) as u64)
        .collect();
    let total: u64 = sizes.iter().sum();
    let mut parts: Vec<Vec<AnyRecord>> = Vec::with_capacity(n);
    let mut ranges = Vec::with_capacity(n);
    let mut idx = 0usize;
    let mut consumed: u64 = 0;
    for p in 0..n {
        let start = idx;
        let mut bytes: u64 = 0;
        // Cumulative target keeps rounding drift from accumulating.
        let target = total * (p as u64 + 1) / n as u64;
        let remaining_parts = n - p - 1;
        while idx < records.len()
            && consumed + bytes < target
            // Leave at least one record for each remaining part when possible.
            && records.len() - idx > remaining_parts
        {
            bytes += sizes[idx];
            idx += 1;
        }
        // Guarantee progress if records remain but the target was already met.
        if idx == start && idx < records.len() && remaining_parts < records.len() - idx {
            bytes += sizes[idx];
            idx += 1;
        }
        consumed += bytes;
        ranges.push((start as u64, (idx - start) as u64, bytes));
        parts.push(records[start..idx].to_vec());
    }
    debug_assert_eq!(idx, records.len());
    Ok((parts, SplitPlan { parts: n, ranges }))
}

/// Split into *micro-parts* for pull-based scheduling: `n_parts` chunks of
/// ~equal record counts, order-preserving, never producing an empty chunk.
///
/// Unlike [`split_even`], which always returns exactly `n` parts (padding
/// with empty tails), this clamps the effective part count to
/// `max(1, min(n_parts, records.len()))` so a work queue is never staged
/// with no-op parts. An empty input yields a single empty part so the
/// session still has one part to complete.
pub fn split_chunks(
    records: &[AnyRecord],
    n_parts: usize,
) -> Result<(Vec<Vec<AnyRecord>>, SplitPlan), DatasetError> {
    if n_parts == 0 {
        return Err(DatasetError::ZeroParts);
    }
    let effective = n_parts.min(records.len()).max(1);
    split_even(records, effective)
}

/// Reassemble parts into a single record vector (inverse of splitting,
/// used in tests and by the merge-verification harness).
pub fn reassemble(parts: &[Vec<AnyRecord>]) -> Vec<AnyRecord> {
    parts.iter().flatten().cloned().collect()
}

/// Split a [`Dataset`] into part-datasets named `<id>.partK`.
pub fn split_dataset(ds: &Dataset, n: usize) -> Result<(Vec<Dataset>, SplitPlan), DatasetError> {
    let (parts, plan) = split_records(&ds.records, n)?;
    let out = parts
        .into_iter()
        .enumerate()
        .map(|(k, recs)| {
            Dataset::from_records(
                format!("{}.part{k}", ds.descriptor.id),
                format!("{} [part {k}/{n}]", ds.descriptor.name),
                recs,
            )
        })
        .collect();
    Ok((out, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::DnaRead;
    use crate::event::CollisionEvent;

    fn events(n: u64) -> Vec<AnyRecord> {
        (0..n)
            .map(|i| {
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect()
    }

    fn variable_reads(n: u64) -> Vec<AnyRecord> {
        (0..n)
            .map(|i| {
                AnyRecord::Dna(DnaRead {
                    read_id: i,
                    sample: 0,
                    bases: "ACGT".repeat(1 + (i as usize * 7) % 40).into(),
                    quality: 30.0,
                })
            })
            .collect()
    }

    fn ids(parts: &[Vec<AnyRecord>]) -> Vec<u64> {
        parts.iter().flatten().map(|r| r.id()).collect()
    }

    #[test]
    fn split_even_exact_partition() {
        let recs = events(10);
        let (parts, plan) = split_even(&recs, 3).unwrap();
        assert_eq!(parts.len(), 3);
        let lens: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        assert_eq!(ids(&parts), (0..10).collect::<Vec<u64>>());
        assert_eq!(plan.ranges[0], (0, 4, plan.ranges[0].2));
    }

    #[test]
    fn split_even_more_parts_than_records() {
        let recs = events(2);
        let (parts, _) = split_even(&recs, 5).unwrap();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        assert_eq!(ids(&parts), vec![0, 1]);
    }

    #[test]
    fn split_zero_parts_errors() {
        assert_eq!(split_even(&events(3), 0), Err(DatasetError::ZeroParts));
        assert_eq!(split_records(&events(3), 0), Err(DatasetError::ZeroParts));
    }

    #[test]
    fn split_records_preserves_order_and_partition() {
        let recs = variable_reads(57);
        for n in [1, 2, 3, 7, 16, 57, 100] {
            let (parts, plan) = split_records(&recs, n).unwrap();
            assert_eq!(parts.len(), n, "n={n}");
            assert_eq!(ids(&parts), (0..57).collect::<Vec<u64>>(), "n={n}");
            let total: u64 = plan.ranges.iter().map(|r| r.2).sum();
            let expect: u64 = recs.iter().map(|r| encoded_record_size(r) as u64).sum();
            assert_eq!(total, expect, "n={n}");
        }
    }

    #[test]
    fn split_records_is_byte_balanced() {
        let recs = variable_reads(400);
        let (_, plan) = split_records(&recs, 8).unwrap();
        // Bounded imbalance: with ~50 records per part, sizes must be close.
        assert!(plan.imbalance() < 1.5, "imbalance {}", plan.imbalance());
    }

    #[test]
    fn byte_split_beats_record_split_on_skewed_data() {
        // First records are huge, later ones tiny.
        let mut recs = Vec::new();
        for i in 0..20u64 {
            recs.push(AnyRecord::Dna(DnaRead {
                read_id: i,
                sample: 0,
                bases: "A".repeat(if i < 4 { 10_000 } else { 10 }).into(),
                quality: 1.0,
            }));
        }
        let (_, even_plan) = split_even(&recs, 4).unwrap();
        let (_, byte_plan) = split_records(&recs, 4).unwrap();
        assert!(byte_plan.imbalance() < even_plan.imbalance());
    }

    #[test]
    fn imbalance_is_max_over_mean_not_max_over_min() {
        // One tiny tail part must not explode the metric: sizes are
        // [5000, 5000, 10] bytes → max/mean ≈ 1.5, where max/min = 500.
        let plan = SplitPlan {
            parts: 3,
            ranges: vec![(0, 5, 5000), (5, 5, 5000), (10, 1, 10)],
        };
        let imb = plan.imbalance();
        assert!(imb < 2.0, "imbalance {imb} should be max/mean, not max/min");
        assert!((imb - 5000.0 / (10010.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn split_chunks_clamps_to_record_count() {
        let recs = events(3);
        let (parts, plan) = split_chunks(&recs, 10).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(plan.parts, 3);
        assert!(parts.iter().all(|p| p.len() == 1));
        assert_eq!(ids(&parts), vec![0, 1, 2]);
    }

    #[test]
    fn split_chunks_partitions_exactly() {
        let recs = events(1000);
        let (parts, plan) = split_chunks(&recs, 16).unwrap();
        assert_eq!(parts.len(), 16);
        assert_eq!(plan.parts, 16);
        assert!(parts.iter().all(|p| !p.is_empty()));
        assert_eq!(ids(&parts), (0..1000).collect::<Vec<u64>>());
        // ±1 record per chunk.
        let lens: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(lens.iter().all(|&l| l == 62 || l == 63), "{lens:?}");
    }

    #[test]
    fn split_chunks_empty_input_yields_one_empty_part() {
        let (parts, plan) = split_chunks(&[], 8).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
        assert_eq!(plan.imbalance(), 1.0);
        assert_eq!(split_chunks(&events(2), 0), Err(DatasetError::ZeroParts));
    }

    #[test]
    fn reassemble_is_inverse() {
        let recs = variable_reads(23);
        let (parts, _) = split_records(&recs, 4).unwrap();
        assert_eq!(reassemble(&parts), recs);
    }

    #[test]
    fn split_dataset_names_parts() {
        let ds = Dataset::from_records("lc-1", "LC", events(6));
        let (parts, _) = split_dataset(&ds, 2).unwrap();
        assert_eq!(parts[0].descriptor.id.0, "lc-1.part0");
        assert_eq!(parts[1].descriptor.id.0, "lc-1.part1");
        assert_eq!(parts[0].len() + parts[1].len(), 6);
    }

    #[test]
    fn empty_input_splits_into_empty_parts() {
        let (parts, plan) = split_records(&[], 3).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Vec::is_empty));
        assert_eq!(plan.imbalance(), 1.0);
    }
}

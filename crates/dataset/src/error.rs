//! Error type for dataset encoding, decoding, and splitting.

use std::fmt;

/// Errors from dataset operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// The byte stream does not start with the dataset magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown record-kind tag in the header.
    BadKind(u8),
    /// The stream ended before a complete record/field was read.
    Truncated {
        /// What was being decoded when the stream ran out.
        context: &'static str,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A declared length exceeds the remaining stream (corruption guard).
    LengthOverrun {
        /// Declared length.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Split was asked for zero parts.
    ZeroParts,
    /// Record-count mismatch between header and payload.
    CountMismatch {
        /// Count declared in the header.
        declared: u64,
        /// Records actually decoded.
        decoded: u64,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadMagic => write!(f, "not an IPA dataset (bad magic)"),
            DatasetError::BadVersion(v) => write!(f, "unsupported dataset format version {v}"),
            DatasetError::BadKind(k) => write!(f, "unknown record kind tag {k}"),
            DatasetError::Truncated { context } => {
                write!(f, "dataset stream truncated while reading {context}")
            }
            DatasetError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            DatasetError::LengthOverrun {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining {remaining} bytes"
            ),
            DatasetError::ZeroParts => write!(f, "cannot split a dataset into zero parts"),
            DatasetError::CountMismatch { declared, decoded } => write!(
                f,
                "header declares {declared} records but payload held {decoded}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

//! Binary dataset codec.
//!
//! A compact, length-prefixed format standing in for the experiment's
//! LCIO-style event files. Layout:
//!
//! ```text
//! magic     8 bytes  "IPADSET1"
//! version   u8
//! kind      u8       0 = event, 1 = dna, 2 = trade
//! count     u64 LE   number of records
//! records   count × record encoding (per-kind, see below)
//! ```
//!
//! All integers are little-endian. Strings are length-prefixed UTF-8.
//! Decoding validates magic, version, kind, declared lengths, and the
//! record count, so a truncated or corrupted transfer is detected rather
//! than silently mis-analyzed.

use bytes::{Buf, BufMut, BytesMut};

use crate::dna::DnaRead;
use crate::error::DatasetError;
use crate::event::{CollisionEvent, FourVector, Particle};
use crate::record::AnyRecord;
use crate::trade::TradeRecord;

/// File magic.
pub const DATASET_MAGIC: &[u8; 8] = b"IPADSET1";
/// Current format version.
pub const FORMAT_VERSION: u8 = 1;

/// Kind tags in the header.
const KIND_EVENT: u8 = 0;
const KIND_DNA: u8 = 1;
const KIND_TRADE: u8 = 2;

fn kind_tag(records: &[AnyRecord]) -> u8 {
    match records.first() {
        Some(AnyRecord::Event(_)) | None => KIND_EVENT,
        Some(AnyRecord::Dna(_)) => KIND_DNA,
        Some(AnyRecord::Trade(_)) => KIND_TRADE,
    }
}

/// Encode a homogeneous record slice into the binary format.
pub fn encode_dataset(records: &[AnyRecord]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + records.len() * 64);
    buf.put_slice(DATASET_MAGIC);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u8(kind_tag(records));
    buf.put_u64_le(records.len() as u64);
    for r in records {
        encode_record(r, &mut buf);
    }
    buf.to_vec()
}

/// Encode one record (no header).
pub fn encode_record(r: &AnyRecord, buf: &mut BytesMut) {
    match r {
        AnyRecord::Event(e) => {
            buf.put_u64_le(e.event_id);
            buf.put_u32_le(e.run);
            buf.put_f64_le(e.sqrt_s);
            buf.put_u8(e.is_signal as u8);
            buf.put_u32_le(e.particles.len() as u32);
            for p in &e.particles {
                buf.put_i32_le(p.pdg_id);
                buf.put_f64_le(p.charge);
                buf.put_f64_le(p.p4.e);
                buf.put_f64_le(p.p4.px);
                buf.put_f64_le(p.p4.py);
                buf.put_f64_le(p.p4.pz);
            }
        }
        AnyRecord::Dna(d) => {
            buf.put_u64_le(d.read_id);
            buf.put_u32_le(d.sample);
            buf.put_f32_le(d.quality);
            buf.put_u32_le(d.bases.len() as u32);
            buf.put_slice(d.bases.as_bytes());
        }
        AnyRecord::Trade(t) => {
            buf.put_u64_le(t.trade_id);
            buf.put_u64_le(t.timestamp_ms);
            buf.put_u16_le(t.symbol.len() as u16);
            buf.put_slice(t.symbol.as_bytes());
            buf.put_f64_le(t.price);
            buf.put_u32_le(t.volume);
            buf.put_u8(t.buyer_initiated as u8);
        }
    }
}

/// Exact encoded size of one record in bytes (used for byte-balanced splits
/// without actually encoding).
pub fn encoded_record_size(r: &AnyRecord) -> usize {
    match r {
        AnyRecord::Event(e) => 8 + 4 + 8 + 1 + 4 + e.particles.len() * (4 + 8 * 5),
        AnyRecord::Dna(d) => 8 + 4 + 4 + 4 + d.bases.len(),
        AnyRecord::Trade(t) => 8 + 8 + 2 + t.symbol.len() + 8 + 4 + 1,
    }
}

fn need(buf: &[u8], n: usize, context: &'static str) -> Result<(), DatasetError> {
    if buf.remaining() < n {
        Err(DatasetError::Truncated { context })
    } else {
        Ok(())
    }
}

fn read_string(buf: &mut &[u8], len: usize) -> Result<String, DatasetError> {
    if buf.remaining() < len {
        return Err(DatasetError::LengthOverrun {
            declared: len,
            remaining: buf.remaining(),
        });
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| DatasetError::BadUtf8)
}

fn decode_event(buf: &mut &[u8]) -> Result<CollisionEvent, DatasetError> {
    need(buf, 8 + 4 + 8 + 1 + 4, "event header")?;
    let event_id = buf.get_u64_le();
    let run = buf.get_u32_le();
    let sqrt_s = buf.get_f64_le();
    let is_signal = buf.get_u8() != 0;
    let n = buf.get_u32_le() as usize;
    let per_particle = 4 + 8 * 5;
    if buf.remaining() < n * per_particle {
        return Err(DatasetError::LengthOverrun {
            declared: n * per_particle,
            remaining: buf.remaining(),
        });
    }
    let mut particles = Vec::with_capacity(n);
    for _ in 0..n {
        let pdg_id = buf.get_i32_le();
        let charge = buf.get_f64_le();
        let e = buf.get_f64_le();
        let px = buf.get_f64_le();
        let py = buf.get_f64_le();
        let pz = buf.get_f64_le();
        particles.push(Particle::new(
            pdg_id,
            charge,
            FourVector::new(e, px, py, pz),
        ));
    }
    Ok(CollisionEvent {
        event_id,
        run,
        sqrt_s,
        is_signal,
        particles,
    })
}

fn decode_dna(buf: &mut &[u8]) -> Result<DnaRead, DatasetError> {
    need(buf, 8 + 4 + 4 + 4, "dna header")?;
    let read_id = buf.get_u64_le();
    let sample = buf.get_u32_le();
    let quality = buf.get_f32_le();
    let len = buf.get_u32_le() as usize;
    let bases = read_string(buf, len)?.into();
    Ok(DnaRead {
        read_id,
        sample,
        bases,
        quality,
    })
}

fn decode_trade(buf: &mut &[u8]) -> Result<TradeRecord, DatasetError> {
    need(buf, 8 + 8 + 2, "trade header")?;
    let trade_id = buf.get_u64_le();
    let timestamp_ms = buf.get_u64_le();
    let sym_len = buf.get_u16_le() as usize;
    let symbol = read_string(buf, sym_len)?.into();
    need(buf, 8 + 4 + 1, "trade tail")?;
    let price = buf.get_f64_le();
    let volume = buf.get_u32_le();
    let buyer_initiated = buf.get_u8() != 0;
    Ok(TradeRecord {
        trade_id,
        timestamp_ms,
        symbol,
        price,
        volume,
        buyer_initiated,
    })
}

/// Decode a complete dataset byte stream.
pub fn decode_dataset(data: &[u8]) -> Result<Vec<AnyRecord>, DatasetError> {
    let mut buf = data;
    need(buf, 8, "magic")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != DATASET_MAGIC {
        return Err(DatasetError::BadMagic);
    }
    need(buf, 1 + 1 + 8, "header")?;
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(DatasetError::BadVersion(version));
    }
    let kind = buf.get_u8();
    let count = buf.get_u64_le();
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let rec = match kind {
            KIND_EVENT => AnyRecord::Event(decode_event(&mut buf)?),
            KIND_DNA => AnyRecord::Dna(decode_dna(&mut buf)?),
            KIND_TRADE => AnyRecord::Trade(decode_trade(&mut buf)?),
            k => return Err(DatasetError::BadKind(k)),
        };
        records.push(rec);
    }
    if records.len() as u64 != count {
        return Err(DatasetError::CountMismatch {
            declared: count,
            decoded: records.len() as u64,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<AnyRecord> {
        (0..5)
            .map(|i| {
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 1,
                    sqrt_s: 500.0,
                    is_signal: i % 2 == 0,
                    particles: vec![Particle::new(
                        5,
                        -1.0 / 3.0,
                        FourVector::new(10.0 + i as f64, 1.0, 2.0, 3.0),
                    )],
                })
            })
            .collect()
    }

    #[test]
    fn event_round_trip() {
        let recs = sample_events();
        let bytes = encode_dataset(&recs);
        let back = decode_dataset(&bytes).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn dna_round_trip() {
        let recs: Vec<AnyRecord> = (0..3)
            .map(|i| {
                AnyRecord::Dna(DnaRead {
                    read_id: i,
                    sample: 2,
                    bases: "ACGTACGT".repeat(i as usize + 1).into(),
                    quality: 30.5,
                })
            })
            .collect();
        let back = decode_dataset(&encode_dataset(&recs)).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn trade_round_trip() {
        let recs: Vec<AnyRecord> = vec![AnyRecord::Trade(TradeRecord {
            trade_id: 1,
            timestamp_ms: 123456,
            symbol: "TECHX".into(),
            price: 42.17,
            volume: 300,
            buyer_initiated: true,
        })];
        let back = decode_dataset(&encode_dataset(&recs)).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn empty_dataset_round_trip() {
        let bytes = encode_dataset(&[]);
        assert_eq!(decode_dataset(&bytes).unwrap(), Vec::<AnyRecord>::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_dataset(&sample_events());
        bytes[0] = b'X';
        assert_eq!(decode_dataset(&bytes), Err(DatasetError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_dataset(&sample_events());
        bytes[8] = 99;
        assert_eq!(decode_dataset(&bytes), Err(DatasetError::BadVersion(99)));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = encode_dataset(&sample_events());
        bytes[9] = 7;
        assert_eq!(decode_dataset(&bytes), Err(DatasetError::BadKind(7)));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_dataset(&sample_events());
        for cut in [bytes.len() - 1, bytes.len() / 2, 12] {
            let r = decode_dataset(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn declared_length_overrun_detected() {
        // DNA record claiming a huge base string.
        let recs = vec![AnyRecord::Dna(DnaRead {
            read_id: 0,
            sample: 0,
            bases: "ACGT".into(),
            quality: 1.0,
        })];
        let mut bytes = encode_dataset(&recs);
        // The u32 bases length sits at header(18) + 8 + 4 + 4 = offset 34.
        let off = 18 + 16;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_dataset(&bytes),
            Err(DatasetError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn invalid_utf8_detected() {
        let recs = vec![AnyRecord::Dna(DnaRead {
            read_id: 0,
            sample: 0,
            bases: "ACGT".into(),
            quality: 1.0,
        })];
        let mut bytes = encode_dataset(&recs);
        let base_off = 18 + 16 + 4; // first base byte
        bytes[base_off] = 0xFF;
        assert_eq!(decode_dataset(&bytes), Err(DatasetError::BadUtf8));
    }

    #[test]
    fn encoded_record_size_matches_actual_encoding() {
        for r in sample_events() {
            let mut buf = BytesMut::new();
            encode_record(&r, &mut buf);
            assert_eq!(buf.len(), encoded_record_size(&r));
        }
        let d = AnyRecord::Dna(DnaRead {
            read_id: 0,
            sample: 0,
            bases: "ACGTAC".into(),
            quality: 1.0,
        });
        let mut buf = BytesMut::new();
        encode_record(&d, &mut buf);
        assert_eq!(buf.len(), encoded_record_size(&d));
        let t = AnyRecord::Trade(TradeRecord {
            trade_id: 0,
            timestamp_ms: 0,
            symbol: "ABC".into(),
            price: 1.0,
            volume: 1,
            buyer_initiated: false,
        });
        let mut buf = BytesMut::new();
        encode_record(&t, &mut buf);
        assert_eq!(buf.len(), encoded_record_size(&t));
    }
}

//! `ipa-dataset` — record-based datasets for interactive parallel analysis.
//!
//! The IPA framework targets datasets that are "record or event based" where
//! "the same analysis is to be performed on each event" and "the analysis
//! results can be logically merged" (paper §1). This crate provides:
//!
//! * a uniform record model ([`AnyRecord`]) spanning the paper's three
//!   motivating domains — particle-collider events, DNA sequencing reads,
//!   and stock trading records,
//! * a compact length-prefixed binary codec ([`codec`]) standing in for the
//!   experiment's LCIO-style files,
//! * synthetic generators ([`generator`]) that replace the unavailable
//!   Linear-Collider simulation data with statistically controlled
//!   equivalents (a Higgs-like resonance over continuum background),
//! * the [`splitter`] that cuts a dataset into approximately equal parts for
//!   the analysis engines, and the inverse check used in tests,
//! * the [`columnar`] transcode that re-lays staged parts out as typed
//!   columns with validity bitmaps so engine fills autovectorize.
//!
//! Datasets carry a [`DatasetDescriptor`] (identifier, kind, record count,
//! byte size) — the unit the catalog/locator services reason about.

#![warn(missing_docs)]

pub mod codec;
pub mod columnar;
pub mod dataset;
pub mod dna;
pub mod error;
pub mod event;
pub mod generator;
pub mod record;
pub mod splitter;
pub mod stream;
pub mod trade;

pub use codec::{decode_dataset, encode_dataset, DATASET_MAGIC, FORMAT_VERSION};
pub use columnar::{Column, ColumnBatch, ColumnData, DataLayout};
pub use dataset::{Dataset, DatasetDescriptor, DatasetId, DatasetKind};
pub use dna::DnaRead;
pub use error::DatasetError;
pub use event::{CollisionEvent, FourVector, Particle};
pub use generator::{
    generate_dataset, DnaGeneratorConfig, EventGeneratorConfig, GeneratorConfig,
    TradeGeneratorConfig,
};
pub use record::{AnyRecord, FieldValue, RecordFields};
pub use splitter::{reassemble, split_chunks, split_dataset, split_even, split_records, SplitPlan};
pub use stream::{split_stream, StreamReader, StreamWriter};
pub use trade::TradeRecord;

//! Columnar (structure-of-arrays) transcode of record batches.
//!
//! Engines iterate staged parts record by record, but the per-record path
//! pays a name-keyed `FieldValue` lookup — and for derived observables like
//! `bb_mass` a full recomputation — on every access. A [`ColumnBatch`]
//! transcodes a homogeneous `AnyRecord` slice once into typed columns
//! (`Vec<f64>` / `Vec<i64>` / `Vec<bool>` / shared `Arc<str>`), with a
//! validity bitmap marking [`FieldValue::Missing`] slots, so the hot loop
//! reads contiguous memory and bulk fills autovectorize.
//!
//! Bit-identity is by construction: every cell is produced by calling
//! [`RecordFields::field`] during the transcode, so a per-record read
//! through [`ColumnBatch::field_at`] returns exactly the `FieldValue` the
//! row path would have produced — including `Missing` patterns and the
//! original f64 bit patterns of derived quantities.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::record::{AnyRecord, FieldValue, RecordFields};

/// Which in-memory layout the data plane hands to engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum DataLayout {
    /// Rows: engines read `AnyRecord`s directly (the differential oracle).
    Row,
    /// Columns: staging transcodes each part into a [`ColumnBatch`] and
    /// engines take the vectorized path.
    Columnar,
}

impl DataLayout {
    /// Read the layout from `IPA_DATA_LAYOUT` (`row` | `columnar`),
    /// defaulting to [`DataLayout::Columnar`].
    pub fn from_env() -> Self {
        match std::env::var("IPA_DATA_LAYOUT") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "row" | "rows" => DataLayout::Row,
                "columnar" | "column" | "columns" => DataLayout::Columnar,
                _ => DataLayout::Columnar,
            },
            Err(_) => DataLayout::Columnar,
        }
    }
}

impl std::fmt::Display for DataLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataLayout::Row => write!(f, "row"),
            DataLayout::Columnar => write!(f, "columnar"),
        }
    }
}

/// Typed storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Numeric (`FieldValue::Num`) cells.
    F64(Vec<f64>),
    /// Integer (`FieldValue::Int`) cells.
    I64(Vec<i64>),
    /// Boolean (`FieldValue::Bool`) cells.
    Bool(Vec<bool>),
    /// String (`FieldValue::Str`) cells; each slot shares the record's
    /// buffer, so the transcode copies pointers, not bytes.
    Str(Vec<Arc<str>>),
}

/// One field of a [`ColumnBatch`]: typed data plus an optional validity
/// bitmap (absent when every cell is present).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    /// Bit `i` set ⇔ row `i` holds a concrete value; `None` ⇔ all valid.
    validity: Option<Vec<u64>>,
}

impl Column {
    /// Typed cell storage. Invalid (missing) slots hold a type default and
    /// must be masked through [`Column::is_valid`].
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap words (LSB-first within each word); `None` means
    /// every row is valid.
    pub fn validity(&self) -> Option<&[u64]> {
        self.validity.as_deref()
    }

    /// True when every cell of the column is present.
    pub fn all_valid(&self) -> bool {
        self.validity.is_none()
    }

    /// True when row `row` holds a concrete value.
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        match &self.validity {
            None => true,
            Some(words) => words[row >> 6] & (1u64 << (row & 63)) != 0,
        }
    }

    /// The f64 cells, if this is a numeric column.
    pub fn f64s(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The i64 cells, if this is an integer column.
    pub fn i64s(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The bool cells, if this is a boolean column.
    pub fn bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The string cells, if this is a string column.
    pub fn strs(&self) -> Option<&[Arc<str>]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate heap footprint of the column in bytes.
    pub fn heap_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            // Pointers only: the string bytes stay owned by the records.
            ColumnData::Str(v) => v.len() * std::mem::size_of::<Arc<str>>(),
        };
        data + self.validity.as_ref().map_or(0, |w| w.len() * 8)
    }
}

/// A homogeneous record slice transcoded to columnar layout.
///
/// Immutable after construction; shared between the staging cache, the
/// session, and engines as `Arc<ColumnBatch>` so re-select and rewind reuse
/// the transcode with zero copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    kind: &'static str,
    names: &'static [&'static str],
    len: usize,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// Transcode a record slice. Returns `None` when the slice is empty,
    /// of mixed record kinds, or a field changes concrete type mid-slice —
    /// callers fall back to the row path in those cases.
    pub fn from_records(records: &[AnyRecord]) -> Option<ColumnBatch> {
        let first = records.first()?;
        let kind = first.kind();
        let names = first.field_names();
        let mut builders: Vec<ColumnBuilder> = names
            .iter()
            .map(|_| ColumnBuilder::new(records.len()))
            .collect();
        for rec in records {
            if rec.kind() != kind {
                return None;
            }
            for (builder, name) in builders.iter_mut().zip(names) {
                // field_names() entries always resolve on their own kind.
                let value = rec.field(name)?;
                if !builder.push(value) {
                    return None;
                }
            }
        }
        Some(ColumnBatch {
            kind,
            names,
            len: records.len(),
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
        })
    }

    /// Record kind shared by every row (`"event"`, `"dna"`, `"trade"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Field names, in column order.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows (never produced by
    /// [`ColumnBatch::from_records`], which rejects empty slices).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolve a field name to its column index; `None` mirrors the row
    /// path's "unknown field for this record kind".
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    /// The column at `col` (in [`ColumnBatch::names`] order).
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Read one cell back as the exact `FieldValue` the row path produces.
    #[inline]
    pub fn field_at(&self, col: usize, row: usize) -> FieldValue {
        let c = &self.columns[col];
        if !c.is_valid(row) {
            return FieldValue::Missing;
        }
        match &c.data {
            ColumnData::F64(v) => FieldValue::Num(v[row]),
            ColumnData::I64(v) => FieldValue::Int(v[row]),
            ColumnData::Bool(v) => FieldValue::Bool(v[row]),
            ColumnData::Str(v) => FieldValue::Str(v[row].clone()),
        }
    }

    /// Name-keyed cell read, mirroring [`RecordFields::field`] semantics
    /// (`None` = unknown field, `Some(Missing)` = known but absent).
    pub fn field(&self, name: &str, row: usize) -> Option<FieldValue> {
        self.column_index(name).map(|c| self.field_at(c, row))
    }

    /// Approximate heap footprint of the transcode in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }
}

/// Incremental single-column builder. The column type is pinned by the
/// first concrete value; leading `Missing` slots are back-filled with the
/// type default once the type is known.
struct ColumnBuilder {
    data: BuilderData,
    validity: Vec<u64>,
    any_missing: bool,
    rows: usize,
    cap: usize,
}

enum BuilderData {
    /// No concrete value seen yet; payload counts the missing slots.
    Untyped(usize),
    F64(Vec<f64>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
}

impl ColumnBuilder {
    fn new(cap: usize) -> Self {
        ColumnBuilder {
            data: BuilderData::Untyped(0),
            validity: vec![0u64; cap.div_ceil(64)],
            any_missing: false,
            rows: 0,
            cap,
        }
    }

    /// Append one cell; `false` signals a concrete-type clash (the caller
    /// abandons the transcode).
    fn push(&mut self, value: FieldValue) -> bool {
        let row = self.rows;
        self.rows += 1;
        if matches!(value, FieldValue::Missing) {
            self.any_missing = true;
            match &mut self.data {
                BuilderData::Untyped(n) => *n += 1,
                BuilderData::F64(v) => v.push(0.0),
                BuilderData::I64(v) => v.push(0),
                BuilderData::Bool(v) => v.push(false),
                BuilderData::Str(v) => v.push(Arc::from("")),
            }
            return true;
        }
        self.validity[row >> 6] |= 1u64 << (row & 63);
        if let BuilderData::Untyped(n) = self.data {
            let mut typed = match &value {
                FieldValue::Num(_) => BuilderData::F64(Vec::with_capacity(self.cap)),
                FieldValue::Int(_) => BuilderData::I64(Vec::with_capacity(self.cap)),
                FieldValue::Bool(_) => BuilderData::Bool(Vec::with_capacity(self.cap)),
                FieldValue::Str(_) => BuilderData::Str(Vec::with_capacity(self.cap)),
                FieldValue::Missing => unreachable!("handled above"),
            };
            match &mut typed {
                BuilderData::F64(v) => v.resize(n, 0.0),
                BuilderData::I64(v) => v.resize(n, 0),
                BuilderData::Bool(v) => v.resize(n, false),
                BuilderData::Str(v) => v.resize(n, Arc::from("")),
                BuilderData::Untyped(_) => unreachable!(),
            }
            self.data = typed;
        }
        match (&mut self.data, value) {
            (BuilderData::F64(v), FieldValue::Num(x)) => v.push(x),
            (BuilderData::I64(v), FieldValue::Int(x)) => v.push(x),
            (BuilderData::Bool(v), FieldValue::Bool(x)) => v.push(x),
            (BuilderData::Str(v), FieldValue::Str(x)) => v.push(x),
            _ => return false,
        }
        true
    }

    fn finish(self) -> Column {
        let data = match self.data {
            // Every cell missing: the cells are never read, any type works.
            BuilderData::Untyped(n) => ColumnData::F64(vec![0.0; n]),
            BuilderData::F64(v) => ColumnData::F64(v),
            BuilderData::I64(v) => ColumnData::I64(v),
            BuilderData::Bool(v) => ColumnData::Bool(v),
            BuilderData::Str(v) => ColumnData::Str(v),
        };
        Column {
            data,
            validity: self.any_missing.then_some(self.validity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::DnaRead;
    use crate::event::{CollisionEvent, FourVector, Particle};
    use crate::trade::TradeRecord;

    fn events(n: u64) -> Vec<AnyRecord> {
        (0..n)
            .map(|i| {
                let particles = if i % 3 == 0 {
                    // Two b-tags → bb_mass present.
                    vec![
                        Particle::new(
                            5,
                            -1.0 / 3.0,
                            FourVector::from_mass_momentum(4.8, 40.0 + i as f64, 0.0, 5.0),
                        ),
                        Particle::new(
                            -5,
                            1.0 / 3.0,
                            FourVector::from_mass_momentum(4.8, -35.0, 8.0, -5.0),
                        ),
                    ]
                } else if i % 3 == 1 {
                    // One particle → bb_mass missing, lead_pt present.
                    vec![Particle::new(22, 0.0, FourVector::new(12.0, 3.0, 4.0, 0.0))]
                } else {
                    // No particles → bb_mass and lead_pt both missing.
                    Vec::new()
                };
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 1,
                    sqrt_s: 500.0,
                    is_signal: i % 2 == 0,
                    particles,
                })
            })
            .collect()
    }

    #[test]
    fn round_trip_is_bit_identical_for_events() {
        let recs = events(130); // crosses a validity-word boundary
        let batch = ColumnBatch::from_records(&recs).unwrap();
        assert_eq!(batch.kind(), "event");
        assert_eq!(batch.len(), 130);
        for (row, rec) in recs.iter().enumerate() {
            for name in rec.field_names() {
                assert_eq!(batch.field(name, row), rec.field(name), "{name}[{row}]");
            }
        }
        assert_eq!(batch.field("bogus", 0), None);
    }

    #[test]
    fn round_trip_dna_and_trade() {
        let dna: Vec<AnyRecord> = (0..5)
            .map(|i| {
                AnyRecord::Dna(DnaRead {
                    read_id: i,
                    sample: (i % 3) as u32,
                    bases: "ACGT".repeat(i as usize + 1).into(),
                    quality: 30.0 + i as f32,
                })
            })
            .collect();
        let batch = ColumnBatch::from_records(&dna).unwrap();
        for (row, rec) in dna.iter().enumerate() {
            for name in rec.field_names() {
                assert_eq!(batch.field(name, row), rec.field(name), "{name}[{row}]");
            }
        }

        let trades: Vec<AnyRecord> = (0..5)
            .map(|i| {
                AnyRecord::Trade(TradeRecord {
                    trade_id: i,
                    timestamp_ms: i * 10,
                    symbol: "TXC".into(),
                    price: 100.0 + i as f64,
                    volume: 10 + i as u32,
                    buyer_initiated: i % 2 == 0,
                })
            })
            .collect();
        let batch = ColumnBatch::from_records(&trades).unwrap();
        for (row, rec) in trades.iter().enumerate() {
            for name in rec.field_names() {
                assert_eq!(batch.field(name, row), rec.field(name), "{name}[{row}]");
            }
        }
    }

    #[test]
    fn string_columns_share_the_record_buffer() {
        let read = DnaRead {
            read_id: 0,
            sample: 0,
            bases: "ACGTACGT".into(),
            quality: 30.0,
        };
        let bases = read.bases.clone();
        let recs = vec![AnyRecord::Dna(read)];
        let batch = ColumnBatch::from_records(&recs).unwrap();
        let col = batch.column(batch.column_index("bases").unwrap());
        assert!(Arc::ptr_eq(&col.strs().unwrap()[0], &bases));
    }

    #[test]
    fn missing_slots_are_masked_not_stored() {
        let recs = events(6);
        let batch = ColumnBatch::from_records(&recs).unwrap();
        let bb = batch.column(batch.column_index("bb_mass").unwrap());
        assert!(!bb.all_valid());
        assert!(bb.is_valid(0) && bb.is_valid(3));
        for row in [1, 2, 4, 5] {
            assert!(!bb.is_valid(row));
            assert_eq!(batch.field("bb_mass", row), Some(FieldValue::Missing));
        }
        // Fully-present columns drop the bitmap entirely.
        let e = batch.column(batch.column_index("event_id").unwrap());
        assert!(e.all_valid() && e.validity().is_none());
    }

    #[test]
    fn empty_and_mixed_slices_fall_back() {
        assert!(ColumnBatch::from_records(&[]).is_none());
        let mut recs = events(1);
        recs.push(AnyRecord::Dna(DnaRead {
            read_id: 0,
            sample: 0,
            bases: "A".into(),
            quality: 0.0,
        }));
        assert!(ColumnBatch::from_records(&recs).is_none());
    }

    #[test]
    fn all_missing_column_reads_back_missing() {
        let recs = events(3); // rows 1, 2 have no bb_mass; row 0 does
        let only_missing: Vec<AnyRecord> = recs[1..].to_vec();
        let batch = ColumnBatch::from_records(&only_missing).unwrap();
        for row in 0..2 {
            assert_eq!(batch.field("bb_mass", row), Some(FieldValue::Missing));
        }
    }

    #[test]
    fn layout_env_parsing_defaults_to_columnar() {
        // Exercise the string mapping without touching process env.
        assert_eq!(DataLayout::Columnar.to_string(), "columnar");
        assert_eq!(DataLayout::Row.to_string(), "row");
        let json = serde_json::to_string(&DataLayout::Row).unwrap();
        assert_eq!(json, "\"row\"");
        let back: DataLayout = serde_json::from_str("\"columnar\"").unwrap();
        assert_eq!(back, DataLayout::Columnar);
    }
}

//! DNA sequencing read model — the paper's cellular-biology example domain
//! ("DNA sequencing combinations in cellular biology", §1).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// One sequencing read: an id, a base string, and per-read quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnaRead {
    /// Monotone read number within the dataset.
    pub read_id: u64,
    /// Sample/lane this read came from.
    pub sample: u32,
    /// Base calls, one of `ACGT` per position. Shared so field lookups and
    /// columnar transcodes clone a pointer, not the buffer.
    pub bases: Arc<str>,
    /// Phred-like average quality score for the read.
    pub quality: f32,
}

impl DnaRead {
    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True for a zero-length read.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// GC fraction of the read (0 for empty reads).
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self
            .bases
            .bytes()
            .filter(|b| *b == b'G' || *b == b'C')
            .count();
        gc as f64 / self.bases.len() as f64
    }

    /// Number of (possibly overlapping) occurrences of `motif`.
    pub fn count_motif(&self, motif: &str) -> usize {
        if motif.is_empty() || motif.len() > self.bases.len() {
            return 0;
        }
        let b = self.bases.as_bytes();
        let m = motif.as_bytes();
        (0..=b.len() - m.len())
            .filter(|&i| &b[i..i + m.len()] == m)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(bases: &str) -> DnaRead {
        DnaRead {
            read_id: 0,
            sample: 0,
            bases: bases.into(),
            quality: 30.0,
        }
    }

    #[test]
    fn gc_content_counts_g_and_c() {
        assert!((read("GGCC").gc_content() - 1.0).abs() < 1e-12);
        assert!((read("ATAT").gc_content() - 0.0).abs() < 1e-12);
        assert!((read("ACGT").gc_content() - 0.5).abs() < 1e-12);
        assert_eq!(read("").gc_content(), 0.0);
    }

    #[test]
    fn motif_counting_allows_overlap() {
        assert_eq!(read("AAAA").count_motif("AA"), 3);
        assert_eq!(read("ACGTACGT").count_motif("ACGT"), 2);
        assert_eq!(read("ACGT").count_motif("TTT"), 0);
        assert_eq!(read("ACGT").count_motif(""), 0);
        assert_eq!(read("AC").count_motif("ACGT"), 0);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(read("ACG").len(), 3);
        assert!(read("").is_empty());
    }
}

//! Network transfer-time model (GridFTP stand-in).
//!
//! Transfers are modelled as `latency + per_file_overhead + size/bandwidth`,
//! with two refinements the paper's measurements require:
//!
//! * a *per-stream* bandwidth cap (one GridFTP stream cannot saturate the
//!   LAN), and
//! * an *aggregate source* cap (the storage element / staging disk NIC),
//!
//! so that moving N split files in parallel gets faster with N until the
//! source NIC saturates — the behaviour behind Table 2's move-parts column.

use serde::{Deserialize, Serialize};

/// A (directional) link's characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way startup latency per transfer, seconds (auth + connection).
    pub latency_s: f64,
    /// Per-file protocol overhead, seconds (GridFTP session setup).
    pub per_file_overhead_s: f64,
    /// Sustained bandwidth of one stream, MB/s.
    pub stream_bw_mbps: f64,
    /// Aggregate cap across concurrent streams from the same source, MB/s.
    pub aggregate_bw_mbps: f64,
}

impl LinkSpec {
    /// Duration of a single transfer of `mb` megabytes on this link.
    pub fn single_transfer_secs(&self, mb: f64) -> f64 {
        assert!(mb >= 0.0, "negative transfer size");
        self.latency_s + self.per_file_overhead_s + mb / self.stream_bw_mbps
    }

    /// Effective per-stream bandwidth when `n` streams share the source.
    pub fn per_stream_bw(&self, n: usize) -> f64 {
        let n = n.max(1) as f64;
        self.stream_bw_mbps.min(self.aggregate_bw_mbps / n)
    }

    /// Duration of `n` equal parallel transfers totalling `total_mb`.
    /// All streams start together; completion is when the last finishes.
    pub fn parallel_transfer_secs(&self, total_mb: f64, n: usize) -> f64 {
        assert!(total_mb >= 0.0, "negative transfer size");
        let n = n.max(1);
        let per = total_mb / n as f64;
        self.latency_s + self.per_file_overhead_s + per / self.per_stream_bw(n)
    }
}

/// The two-tier network of the paper's testbed: a WAN between the user's
/// desktop and the grid site, and the site LAN between storage element,
/// staging disk, and worker nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Desktop ↔ grid site (or desktop ↔ remote storage) link.
    pub wan: LinkSpec,
    /// Intra-site link.
    pub lan: LinkSpec,
}

impl NetworkModel {
    /// Time to pull a whole dataset over the WAN (the "Get dataset" row of
    /// Table 1's local column).
    pub fn wan_fetch_secs(&self, mb: f64) -> f64 {
        self.wan.single_transfer_secs(mb)
    }

    /// Time to move the whole dataset SE → staging disk over the LAN
    /// (Table 2 "Move Whole").
    pub fn lan_move_whole_secs(&self, mb: f64) -> f64 {
        self.lan.single_transfer_secs(mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec {
            latency_s: 1.0,
            per_file_overhead_s: 2.0,
            stream_bw_mbps: 10.0,
            aggregate_bw_mbps: 40.0,
        }
    }

    #[test]
    fn single_transfer_composition() {
        assert!((link().single_transfer_secs(100.0) - (1.0 + 2.0 + 10.0)).abs() < 1e-12);
        assert!((link().single_transfer_secs(0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_stream_bandwidth_caps() {
        let l = link();
        assert_eq!(l.per_stream_bw(1), 10.0);
        assert_eq!(l.per_stream_bw(2), 10.0);
        assert_eq!(l.per_stream_bw(4), 10.0);
        assert_eq!(l.per_stream_bw(8), 5.0); // aggregate 40 / 8
    }

    #[test]
    fn parallel_transfers_speed_up_then_saturate() {
        let l = link();
        let t1 = l.parallel_transfer_secs(400.0, 1);
        let t4 = l.parallel_transfer_secs(400.0, 4);
        let t8 = l.parallel_transfer_secs(400.0, 8);
        let t16 = l.parallel_transfer_secs(400.0, 16);
        assert!(t4 < t1, "parallelism helps below saturation");
        // Beyond 4 streams the aggregate cap (40 MB/s) dominates: payload
        // time is constant, only overheads remain.
        assert!((t8 - t16).abs() < 1e-9);
        assert!((t8 - (3.0 + 400.0 / 40.0)).abs() < 1e-9);
    }

    #[test]
    fn parallel_with_one_stream_equals_single() {
        let l = link();
        assert!((l.parallel_transfer_secs(123.0, 1) - l.single_transfer_secs(123.0)).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_size() {
        let l = link();
        let mut last = 0.0;
        for mb in [0.0, 1.0, 10.0, 100.0, 1000.0] {
            let t = l.parallel_transfer_secs(mb, 4);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "negative transfer size")]
    fn negative_size_panics() {
        link().single_transfer_secs(-1.0);
    }
}

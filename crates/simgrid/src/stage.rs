//! The staged-analysis pipeline of Tables 1 and 2, on the simulated grid.
//!
//! Phases (grid case):
//!
//! 1. **Engines start** — GRAM submission at t=0 (overlaps staging).
//! 2. **Move whole** — storage element → staging disk over the LAN.
//! 3. **Split** — one pass over the dataset on the staging disk.
//! 4. **Move parts** — per-part: a serial staging-disk read (FIFO
//!    [`Resource`]) followed by a parallel LAN transfer to the part's
//!    worker. This serial-then-parallel structure is what produces the
//!    paper's `46 + 62/N` move-parts column.
//! 5. **Stage code** — fixed cost once engines are ready.
//! 6. **Analysis** — each engine crunches its part; done at the max.
//!
//! The local case is WAN fetch + single-CPU analysis.
//!
//! Both a wall-clock total (with the overlaps a real session enjoys) and a
//! paper-style sequential sum are reported.

use serde::{Deserialize, Serialize};

use crate::calibration::PaperCalibration;
use crate::des::{Resource, SimTime, Simulation};
use crate::gram::GramSimulator;

/// Per-phase timing of a simulated grid session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Dataset size, MB.
    pub dataset_mb: f64,
    /// Engines used.
    pub nodes: usize,
    /// When all engines were ready (from t=0), s.
    pub engines_ready_s: f64,
    /// Duration of the SE → staging disk move, s (Table 2 "Move Whole").
    pub move_whole_s: f64,
    /// Duration of the split pass, s (Table 2 "Split").
    pub split_s: f64,
    /// Duration from first part read to last part delivered, s
    /// (Table 2 "Move Parts").
    pub move_parts_s: f64,
    /// Code staging cost, s (Table 1 "Stage Code").
    pub stage_code_s: f64,
    /// Analysis wall-clock across engines, s (Table 1/2 "Analysis").
    pub analysis_s: f64,
    /// Wall-clock session total with overlaps, s.
    pub total_s: f64,
    /// Paper-style sequential accounting (sum of phases), s.
    pub sequential_total_s: f64,
}

impl StageBreakdown {
    /// "Stage Dataset" as Table 1 reports it: move whole + split + move
    /// parts.
    pub fn stage_dataset_s(&self) -> f64 {
        self.move_whole_s + self.split_s + self.move_parts_s
    }
}

/// Timing of the local (no-grid) alternative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalBreakdown {
    /// Dataset size, MB.
    pub dataset_mb: f64,
    /// WAN download of the dataset, s (Table 1 "Get dataset").
    pub fetch_s: f64,
    /// Single-CPU analysis, s.
    pub analysis_s: f64,
    /// Total, s.
    pub total_s: f64,
}

/// Simulate one grid session: stage and analyze `mb` megabytes on `nodes`
/// engines under `cal`. Deterministic.
pub fn simulate_session(mb: f64, nodes: usize, cal: &PaperCalibration) -> StageBreakdown {
    assert!(mb >= 0.0, "negative dataset size");
    let nodes = nodes.max(1);
    let mut sim = Simulation::new();

    // Phase 1 — engines start at t=0, overlapping the dataset staging.
    let gram = GramSimulator::new(cal.scheduler);
    let job = gram.start_engines(&mut sim, SimTime::ZERO, nodes);

    // Phase 2 — move whole dataset SE → staging disk.
    let move_whole_s = cal.network.lan_move_whole_secs(mb);
    let staged_at = move_whole_s;

    // Phase 3 — split (one pass at the split rate).
    let split_s = mb / cal.split_mbps;
    let split_done = staged_at + split_s;

    // Phase 4 — move parts: serial disk reads + parallel LAN transfers.
    let mut disk = Resource::new("staging-disk");
    disk.acquire(SimTime::ZERO, split_done); // disk unavailable until split end
    let part_mb = mb / nodes as f64;
    let per_stream = cal.network.lan.per_stream_bw(nodes);
    let mut parts_done_at = split_done;
    let mut part_arrivals = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let read_done = disk.acquire(SimTime(split_done), part_mb / cal.staging_disk_mbps);
        let net =
            cal.network.lan.latency_s + cal.network.lan.per_file_overhead_s + part_mb / per_stream;
        let delivered = read_done.secs() + net;
        part_arrivals.push(delivered);
        parts_done_at = parts_done_at.max(delivered);
        let label = format!("part {i} delivered");
        sim.schedule_at(SimTime(delivered), move |s| s.trace(label));
    }
    let move_parts_s = parts_done_at - split_done;

    // Phase 5 — code staging starts once engines are ready (overlaps the
    // dataset staging in a real session).
    let code_loaded_at = job.all_ready_at + cal.stage_code_s;

    // Phase 6 — per-engine analysis starts when its part has arrived AND
    // the code is loaded.
    let mut analysis_done_at = code_loaded_at;
    let mut analysis_start = f64::INFINITY;
    for (i, &arrived) in part_arrivals.iter().enumerate() {
        let start = arrived.max(code_loaded_at);
        let dur = part_mb * cal.grid_analyze_s_per_mb;
        analysis_start = analysis_start.min(start);
        analysis_done_at = analysis_done_at.max(start + dur);
        let label = format!("engine {i} finished analysis");
        sim.schedule_at(SimTime(start + dur), move |s| s.trace(label));
    }
    let analysis_s = mb * cal.grid_analyze_s_per_mb / nodes as f64;

    let end = sim.run();
    debug_assert!(
        (end.secs() - analysis_done_at).abs() < 1e-6 || end.secs() >= analysis_done_at,
        "simulation end {} vs analytic {}",
        end.secs(),
        analysis_done_at
    );

    StageBreakdown {
        dataset_mb: mb,
        nodes,
        engines_ready_s: job.all_ready_at,
        move_whole_s,
        split_s,
        move_parts_s,
        stage_code_s: cal.stage_code_s,
        analysis_s,
        total_s: analysis_done_at,
        sequential_total_s: move_whole_s + split_s + move_parts_s + cal.stage_code_s + analysis_s,
    }
}

/// Simulate the local alternative: pull the dataset over the WAN, analyze
/// on one desktop CPU.
pub fn simulate_local_analysis(mb: f64, cal: &PaperCalibration) -> LocalBreakdown {
    assert!(mb >= 0.0, "negative dataset size");
    let fetch_s = cal.network.wan_fetch_secs(mb);
    let analysis_s = mb * cal.local_analyze_s_per_mb;
    LocalBreakdown {
        dataset_mb: mb,
        fetch_s,
        analysis_s,
        total_s: fetch_s + analysis_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 471.0;

    #[test]
    fn table2_move_whole_and_split_are_flat_in_n() {
        let cal = PaperCalibration::paper2006();
        let b1 = simulate_session(MB, 1, &cal);
        let b16 = simulate_session(MB, 16, &cal);
        assert!((b1.move_whole_s - b16.move_whole_s).abs() < 1e-9);
        assert!((b1.split_s - b16.split_s).abs() < 1e-9);
        // And near the paper's 63 s / ~120 s.
        assert!((b1.move_whole_s - 63.0).abs() < 3.0, "{}", b1.move_whole_s);
        assert!((b1.split_s - 118.0).abs() < 3.0, "{}", b1.split_s);
    }

    #[test]
    fn table2_move_parts_follows_serial_plus_parallel_shape() {
        let cal = PaperCalibration::paper2006();
        let obs: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&n| (n, simulate_session(MB, n, &cal).move_parts_s))
            .collect();
        // Monotone decreasing.
        for w in obs.windows(2) {
            assert!(w[1].1 < w[0].1, "{obs:?}");
        }
        // Near 46 + 62/N + small overheads.
        for &(n, t) in &obs {
            let expect = MB / cal.staging_disk_mbps + (MB / n as f64) / 7.6;
            assert!(
                (t - expect).abs() < 4.0,
                "n={n}: simulated {t}, analytic {expect}"
            );
        }
        // Paper end points: 105 s at N=1 (we fit 108), 50 s at N=16.
        assert!((obs[0].1 - 108.0).abs() < 6.0, "{}", obs[0].1);
        assert!((obs[4].1 - 50.0).abs() < 6.0, "{}", obs[4].1);
    }

    #[test]
    fn analysis_scales_inversely_with_n() {
        let cal = PaperCalibration::paper2006();
        let b1 = simulate_session(MB, 1, &cal);
        let b16 = simulate_session(MB, 16, &cal);
        assert!((b1.analysis_s / b16.analysis_s - 16.0).abs() < 1e-9);
    }

    #[test]
    fn table1_grid_vs_local_headline() {
        let cal = PaperCalibration::paper2006();
        let grid = simulate_session(MB, 16, &cal);
        let local = simulate_local_analysis(MB, &cal);
        // Local WAN fetch ≈ 6.2 s/MB ≫ everything else.
        assert!(local.fetch_s > 2500.0);
        // The grid wins by a large factor on big datasets.
        assert!(grid.total_s * 4.0 < local.total_s);
        // Stage-dataset near Table 1's 174 s (63 + 118 would exceed; the
        // paper's own columns disagree — we assert the right order).
        let stage = grid.stage_dataset_s();
        assert!(stage > 150.0 && stage < 260.0, "stage = {stage}");
    }

    #[test]
    fn wall_clock_total_is_less_than_sequential_sum() {
        let cal = PaperCalibration::paper2006();
        let b = simulate_session(MB, 8, &cal);
        // Engine startup and code staging overlap dataset staging.
        assert!(b.total_s < b.sequential_total_s + b.engines_ready_s);
        assert!(b.total_s <= b.sequential_total_s + 1e-9);
    }

    #[test]
    fn crossover_small_datasets_favor_local() {
        let cal = PaperCalibration::paper2006();
        // A 1 MB dataset: grid overheads dominate.
        let grid = simulate_session(1.0, 16, &cal);
        let local = simulate_local_analysis(1.0, &cal);
        assert!(local.total_s < grid.total_s);
        // A 100 MB dataset: grid wins.
        let grid = simulate_session(100.0, 16, &cal);
        let local = simulate_local_analysis(100.0, &cal);
        assert!(grid.total_s < local.total_s);
    }

    #[test]
    fn zero_size_dataset_is_all_overhead() {
        let cal = PaperCalibration::paper2006();
        let b = simulate_session(0.0, 4, &cal);
        assert_eq!(b.analysis_s, 0.0);
        assert!(b.total_s > 0.0); // latencies + startup remain
        let l = simulate_local_analysis(0.0, &cal);
        assert!(l.total_s > 0.0);
    }

    #[test]
    fn nodes_zero_is_clamped_to_one() {
        let cal = PaperCalibration::paper2006();
        let b = simulate_session(10.0, 0, &cal);
        assert_eq!(b.nodes, 1);
    }

    #[test]
    fn simulation_traces_cover_parts_and_engines() {
        let cal = PaperCalibration::paper2006();
        // Re-run manually to inspect traces.
        let mut sim = Simulation::new();
        let gram = GramSimulator::new(cal.scheduler);
        gram.start_engines(&mut sim, SimTime::ZERO, 3);
        sim.run();
        assert_eq!(sim.traces.len(), 3);
        assert!(sim.traces.iter().all(|t| t.label.contains("ready")));
    }
}

//! `ipa-simgrid` — the simulated grid substrate.
//!
//! The paper's reference implementation runs on a real 2006 grid: Globus
//! GRAM starts analysis engines through a batch scheduler, GridFTP moves
//! datasets between a storage element, a shared disk, and worker nodes, and
//! X.509 proxy certificates gate every call. None of that infrastructure is
//! available here, so this crate provides a faithful *simulation substrate*
//! with the pieces the IPA framework needs:
//!
//! * [`des`] — a deterministic discrete-event simulation core with FIFO
//!   resources (the shared staging disk, the scheduler queue),
//! * [`net`] — a WAN/LAN transfer-time model (latency + per-file overhead +
//!   bandwidth, with per-stream and aggregate caps) calibrated against the
//!   paper's measurements,
//! * [`gram`] — a GRAM-like job-start model: queue wait, per-engine startup,
//!   VO max-node policy — the paper's "dedicated timely scheduler queue",
//! * [`security`] — simulated grid proxies and mutual authentication
//!   (checked control flow, *not* real cryptography),
//! * [`stage`] — the full staging + analysis pipeline of Tables 1–2 run on
//!   the DES, returning the same per-phase breakdown the paper reports,
//! * [`calibration`] — parameter sets: [`calibration::PaperCalibration`]
//!   reproduces the paper's fitted equations.
//!
//! Real computation (the analysis engines crunching records) happens in
//! `ipa-core` on real threads; this crate only models *time* that the 2006
//! hardware would have spent.

#![warn(missing_docs)]

pub mod calibration;
pub mod des;
pub mod gram;
pub mod net;
pub mod security;
pub mod stage;

pub use calibration::PaperCalibration;
pub use des::{Resource, SimTime, Simulation};
pub use gram::{GramSimulator, JobOutcome, SchedulerConfig};
pub use net::{LinkSpec, NetworkModel};
pub use security::{AuthError, GridProxy, SecurityDomain, VoPolicy};
pub use stage::{simulate_local_analysis, simulate_session, LocalBreakdown, StageBreakdown};

//! Deterministic discrete-event simulation core.
//!
//! A minimal but complete DES: a clock, an event heap ordered by
//! `(time, sequence)`, and FIFO [`Resource`]s for modelling contention
//! (the shared staging disk, the batch queue). Events are boxed closures;
//! determinism comes from the sequence tie-break — two events scheduled for
//! the same instant fire in scheduling order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds since start.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// This time plus `dt` seconds.
    pub fn after(self, dt: f64) -> SimTime {
        SimTime(self.0 + dt)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

/// An event callback.
type EventFn = Box<dyn FnOnce(&mut Simulation)>;

struct Scheduled {
    at: f64,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert to get earliest-first; ties break
        // on scheduling sequence so behaviour is deterministic.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// One trace line: `(time, label)` recorded by simulation code.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the traced event happened.
    pub at: SimTime,
    /// Free-form description.
    pub label: String,
}

/// The simulation: clock + event heap + trace.
#[derive(Default)]
pub struct Simulation {
    now: f64,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
    /// Recorded trace entries (enable by just calling [`Simulation::trace`]).
    pub traces: Vec<TraceEntry>,
    events_run: u64,
}

impl Simulation {
    /// New simulation at time zero.
    pub fn new() -> Self {
        Simulation::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now)
    }

    /// Number of events executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Schedule `f` to run `dt` seconds from now.
    ///
    /// # Panics
    /// Panics if `dt` is negative or NaN.
    pub fn schedule_in(&mut self, dt: f64, f: impl FnOnce(&mut Simulation) + 'static) {
        assert!(dt >= 0.0, "cannot schedule into the past (dt = {dt})");
        self.schedule_at(SimTime(self.now + dt), f);
    }

    /// Schedule `f` at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Simulation) + 'static) {
        assert!(
            at.0 >= self.now && at.0.is_finite(),
            "cannot schedule into the past ({} < {})",
            at.0,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at: at.0,
            seq,
            run: Box::new(f),
        });
    }

    /// Record a trace entry at the current time.
    pub fn trace(&mut self, label: impl Into<String>) {
        self.traces.push(TraceEntry {
            at: self.now(),
            label: label.into(),
        });
    }

    /// Run events until the heap is empty; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(ev) = self.heap.pop() {
            self.now = ev.at;
            self.events_run += 1;
            (ev.run)(self);
        }
        self.now()
    }

    /// Run events with time ≤ `until` (events beyond stay queued).
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(top) = self.heap.peek() {
            if top.at > until.0 {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.now = ev.at;
            self.events_run += 1;
            (ev.run)(self);
        }
        self.now = self.now.max(until.0.min(self.now + f64::INFINITY));
        self.now()
    }
}

/// A FIFO resource with a fixed service rate, e.g. a disk that can stream
/// `rate` MB/s: requests queue and are served one at a time in arrival
/// order. Purely analytic — it tracks the time the resource becomes free.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Resource label for traces.
    pub name: String,
    free_at: f64,
    busy_total: f64,
}

impl Resource {
    /// New idle resource.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            free_at: 0.0,
            busy_total: 0.0,
        }
    }

    /// Reserve the resource for `service` seconds starting no earlier than
    /// `arrival`; returns the completion time. FIFO: later arrivals queue
    /// behind earlier reservations.
    pub fn acquire(&mut self, arrival: SimTime, service: f64) -> SimTime {
        assert!(service >= 0.0, "negative service time");
        let start = self.free_at.max(arrival.0);
        self.free_at = start + service;
        self.busy_total += service;
        SimTime(self.free_at)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        SimTime(self.free_at)
    }

    /// Total busy seconds accumulated.
    pub fn utilization_secs(&self) -> f64 {
        self.busy_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for (dt, tag) in [(5.0, "c"), (1.0, "a"), (3.0, "b")] {
            let order = order.clone();
            sim.schedule_in(dt, move |s| {
                order.borrow_mut().push((s.now().secs(), tag));
            });
        }
        let end = sim.run();
        assert_eq!(end.secs(), 5.0);
        assert_eq!(*order.borrow(), vec![(1.0, "a"), (3.0, "b"), (5.0, "c")]);
        assert_eq!(sim.events_run(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for tag in ["first", "second", "third"] {
            let order = order.clone();
            sim.schedule_in(2.0, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Simulation::new();
        let h = hits.clone();
        sim.schedule_in(1.0, move |s| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            s.schedule_in(1.0, move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        let end = sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(end.secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_in(-1.0, |_| {});
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Simulation::new();
        for dt in [1.0, 2.0, 3.0] {
            let h = hits.clone();
            sim.schedule_in(dt, move |_| *h.borrow_mut() += 1);
        }
        sim.run_until(SimTime(2.0));
        assert_eq!(*hits.borrow(), 2);
        sim.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn fifo_resource_serializes() {
        let mut disk = Resource::new("disk");
        // Two requests arriving at t=0: second waits for the first.
        let done1 = disk.acquire(SimTime(0.0), 10.0);
        let done2 = disk.acquire(SimTime(0.0), 5.0);
        assert_eq!(done1.secs(), 10.0);
        assert_eq!(done2.secs(), 15.0);
        // A late arrival after the disk is idle starts immediately.
        let done3 = disk.acquire(SimTime(100.0), 1.0);
        assert_eq!(done3.secs(), 101.0);
        assert_eq!(disk.utilization_secs(), 16.0);
    }

    #[test]
    fn trace_records_time() {
        let mut sim = Simulation::new();
        sim.schedule_in(4.0, |s| s.trace("hello"));
        sim.run();
        assert_eq!(sim.traces.len(), 1);
        assert_eq!(sim.traces[0].at.secs(), 4.0);
        assert_eq!(sim.traces[0].label, "hello");
    }

    #[test]
    fn simtime_helpers() {
        let t = SimTime(2.0).after(3.0);
        assert_eq!(t.secs(), 5.0);
        assert_eq!(t.max(SimTime(1.0)).secs(), 5.0);
        assert_eq!(t.max(SimTime(9.0)).secs(), 9.0);
    }
}

//! Parameter sets calibrated against the paper's measurements.
//!
//! Section 4 of the paper reports, for a 471 MB dataset on the SLAC OSG
//! queue (866 MHz workers, 1.7 GHz desktop):
//!
//! * local WAN fetch: 6.2 s/MB (fitted),
//! * local analysis: 5.3 s/MB (fitted),
//! * LAN move-whole: 63 s → 0.134 s/MB,
//! * split: ~120 s, flat in N → 0.25 s/MB,
//! * move-parts: ≈ 46 + 62/N seconds at 471 MB → a serial staging-disk
//!   pass at ~10.2 MB/s followed by parallel per-part transfers at
//!   ~7.6 MB/s per stream,
//! * stage code: 7 s (15 kB of bytecode + class-load round trip),
//! * grid analysis: 5.3·X/N s (the paper's fitted equation keeps the local
//!   per-MB rate; Table 1/2 absolute analysis numbers are internally
//!   inconsistent — see EXPERIMENTS.md).
//!
//! [`PaperCalibration::paper2006`] reproduces those constants; other
//! constructors let benches explore modern parameters.

use serde::{Deserialize, Serialize};

use crate::gram::SchedulerConfig;
use crate::net::{LinkSpec, NetworkModel};

/// All timing parameters of the simulated grid site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperCalibration {
    /// WAN + LAN links.
    pub network: NetworkModel,
    /// Staging-disk sequential read/write bandwidth, MB/s (serializes
    /// per-part reads during move-parts).
    pub staging_disk_mbps: f64,
    /// Splitter processing rate, MB/s (one full pass over the dataset).
    pub split_mbps: f64,
    /// Fixed cost of staging the user's analysis code to all engines, s.
    pub stage_code_s: f64,
    /// Analysis rate on one *grid* worker, seconds per MB.
    pub grid_analyze_s_per_mb: f64,
    /// Analysis rate on the *local* desktop, seconds per MB.
    pub local_analyze_s_per_mb: f64,
    /// Scheduler / engine-start behaviour.
    pub scheduler: SchedulerConfig,
}

impl PaperCalibration {
    /// The 2006 SLAC testbed parameters (see module docs for derivation).
    pub fn paper2006() -> Self {
        PaperCalibration {
            network: NetworkModel {
                wan: LinkSpec {
                    latency_s: 2.0,
                    per_file_overhead_s: 3.0,
                    // 6.2 s/MB fitted WAN rate.
                    stream_bw_mbps: 1.0 / 6.2,
                    aggregate_bw_mbps: 1.0 / 6.2,
                },
                lan: LinkSpec {
                    latency_s: 0.5,
                    per_file_overhead_s: 1.0,
                    // 0.134 s/MB LAN move-whole rate → 63 s at 471 MB.
                    stream_bw_mbps: 7.6,
                    aggregate_bw_mbps: 100.0,
                },
            },
            // 471 MB / 46 s serial staging-disk phase.
            staging_disk_mbps: 10.24,
            // 0.25 s/MB split pass → 118 s at 471 MB.
            split_mbps: 4.0,
            stage_code_s: 7.0,
            grid_analyze_s_per_mb: 5.3,
            local_analyze_s_per_mb: 5.3,
            scheduler: SchedulerConfig::default(),
        }
    }

    /// A modern site: gigabit WAN, 10-gig LAN, NVMe staging, fast engines.
    /// Used by ablation benches to show where the 2006 conclusions still
    /// hold (they do: WAN vs LAN asymmetry persists).
    pub fn modern() -> Self {
        PaperCalibration {
            network: NetworkModel {
                wan: LinkSpec {
                    latency_s: 0.2,
                    per_file_overhead_s: 0.3,
                    stream_bw_mbps: 30.0,
                    aggregate_bw_mbps: 120.0,
                },
                lan: LinkSpec {
                    latency_s: 0.05,
                    per_file_overhead_s: 0.1,
                    stream_bw_mbps: 1000.0,
                    aggregate_bw_mbps: 10_000.0,
                },
            },
            staging_disk_mbps: 3000.0,
            split_mbps: 1500.0,
            stage_code_s: 0.5,
            grid_analyze_s_per_mb: 0.1,
            local_analyze_s_per_mb: 0.05,
            scheduler: SchedulerConfig {
                queue_delay_s: 0.5,
                engine_startup_s: 1.0,
                parallel_startup: true,
                nodes_available: 64,
            },
        }
    }
}

impl Default for PaperCalibration {
    fn default() -> Self {
        PaperCalibration::paper2006()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_reproduce_headline_rates() {
        let c = PaperCalibration::paper2006();
        // WAN fetch of 471 MB ≈ 6.2 s/MB → about 49 minutes.
        let wan = c.network.wan_fetch_secs(471.0);
        assert!((wan - (5.0 + 471.0 * 6.2)).abs() < 1.0, "wan = {wan}");
        // LAN move-whole ≈ 63 s.
        let lan = c.network.lan_move_whole_secs(471.0);
        assert!((lan - 63.0).abs() < 3.0, "lan = {lan}");
        // Split ≈ 118 s.
        assert!((471.0 / c.split_mbps - 118.0).abs() < 2.0);
        // Staging-disk pass ≈ 46 s.
        assert!((471.0 / c.staging_disk_mbps - 46.0).abs() < 1.0);
    }

    #[test]
    fn modern_site_is_strictly_faster() {
        let old = PaperCalibration::paper2006();
        let new = PaperCalibration::modern();
        assert!(new.network.wan_fetch_secs(471.0) < old.network.wan_fetch_secs(471.0));
        assert!(new.network.lan_move_whole_secs(471.0) < old.network.lan_move_whole_secs(471.0));
        assert!(new.grid_analyze_s_per_mb < old.grid_analyze_s_per_mb);
    }

    #[test]
    fn serde_round_trip() {
        let c = PaperCalibration::paper2006();
        let s = serde_json::to_string(&c).unwrap();
        let back: PaperCalibration = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}

//! Simulated grid security: proxies, mutual authentication, VO policy.
//!
//! The paper's client "first needs to mutually authenticate with the Web
//! Service using a Grid credential" (§3.1); a proxy certificate is created
//! client-side, the service authorizes it against the site's VO policy, and
//! nothing (not even the insecure RMI data channel) is reachable without a
//! valid session. This module reproduces that *control flow*. The
//! "signature" is an FNV-1a tag over the proxy fields keyed by the issuing
//! domain — enough to catch tampering and cross-domain confusion in tests,
//! and emphatically **not** real cryptography (the substitution is recorded
//! in DESIGN.md).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Authentication / authorization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Proxy signature does not verify (tampered or foreign proxy).
    BadSignature,
    /// Proxy lifetime has passed.
    Expired,
    /// The proxy's VO is not accepted by this site.
    VoNotAuthorized(String),
    /// The subject is explicitly banned.
    SubjectBanned(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadSignature => write!(f, "proxy signature invalid"),
            AuthError::Expired => write!(f, "proxy expired"),
            AuthError::VoNotAuthorized(vo) => write!(f, "VO '{vo}' not authorized at this site"),
            AuthError::SubjectBanned(s) => write!(f, "subject '{s}' is banned"),
        }
    }
}

impl std::error::Error for AuthError {}

/// 64-bit FNV-1a.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A short-lived delegated credential, as created by `grid-proxy-init`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridProxy {
    /// Distinguished name of the user.
    pub subject: String,
    /// Virtual organization the user belongs to.
    pub vo: String,
    /// Issue time (simulated seconds).
    pub issued_at: f64,
    /// Lifetime in seconds.
    pub lifetime_s: f64,
    /// Issuing-domain tag (simulated signature).
    signature: u64,
}

impl GridProxy {
    /// Seconds of validity remaining at time `now`.
    pub fn remaining(&self, now: f64) -> f64 {
        (self.issued_at + self.lifetime_s - now).max(0.0)
    }
}

/// Per-site authorization policy for one VO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoPolicy {
    /// VO name.
    pub vo: String,
    /// Maximum analysis engines one session may start (paper §2.2: "the
    /// maximum number of analysis engine nodes … is determined by the
    /// Grid-VO policy").
    pub max_nodes: usize,
    /// Banned subject names.
    pub banned_subjects: Vec<String>,
    /// Fair-share weight of this VO when a shared engine pool is capped:
    /// pool capacity is split between the VOs holding leases in
    /// proportion to their weights. Non-positive or non-finite values
    /// are treated as `1.0`.
    #[serde(default = "default_share")]
    pub share: f64,
    /// Aggregate engine quota across *all* of the VO's concurrent
    /// sessions; 0 (the default) means unlimited. Enforced at session
    /// creation: a request that would push the VO's total leased engines
    /// past this limit is rejected whole.
    #[serde(default)]
    pub max_total_engines: usize,
}

fn default_share() -> f64 {
    1.0
}

impl VoPolicy {
    /// Policy admitting `vo` with a node cap.
    pub fn new(vo: impl Into<String>, max_nodes: usize) -> Self {
        VoPolicy {
            vo: vo.into(),
            max_nodes,
            banned_subjects: Vec::new(),
            share: default_share(),
            max_total_engines: 0,
        }
    }

    /// Set the VO's fair-share weight.
    pub fn with_share(mut self, share: f64) -> Self {
        self.share = share;
        self
    }

    /// Cap the VO's aggregate engines across all concurrent sessions.
    pub fn with_engine_quota(mut self, max_total_engines: usize) -> Self {
        self.max_total_engines = max_total_engines;
        self
    }
}

/// A certificate-authority domain: issues and verifies proxies, and holds
/// the site's VO policies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SecurityDomain {
    /// Domain name (e.g. `"slac-osg"`), part of the signing key.
    pub name: String,
    /// Secret salt of this domain (what makes foreign proxies fail).
    salt: u64,
    /// Accepted VOs.
    pub policies: Vec<VoPolicy>,
}

impl SecurityDomain {
    /// New domain; `salt` stands in for the CA private key.
    pub fn new(name: impl Into<String>, salt: u64) -> Self {
        SecurityDomain {
            name: name.into(),
            salt,
            policies: Vec::new(),
        }
    }

    /// Register a VO policy.
    pub fn with_policy(mut self, policy: VoPolicy) -> Self {
        self.policies.push(policy);
        self
    }

    fn sign(&self, subject: &str, vo: &str, issued_at: f64, lifetime_s: f64) -> u64 {
        let material = format!(
            "{}|{}|{}|{}|{}|{}",
            self.name, self.salt, subject, vo, issued_at, lifetime_s
        );
        fnv1a(material.as_bytes())
    }

    /// Issue a proxy (the `grid-proxy-init` step).
    pub fn issue_proxy(
        &self,
        subject: impl Into<String>,
        vo: impl Into<String>,
        now: f64,
        lifetime_s: f64,
    ) -> GridProxy {
        let subject = subject.into();
        let vo = vo.into();
        let signature = self.sign(&subject, &vo, now, lifetime_s);
        GridProxy {
            subject,
            vo,
            issued_at: now,
            lifetime_s,
            signature,
        }
    }

    /// Verify signature and lifetime (mutual-auth handshake, server side).
    pub fn authenticate(&self, proxy: &GridProxy, now: f64) -> Result<(), AuthError> {
        let expect = self.sign(&proxy.subject, &proxy.vo, proxy.issued_at, proxy.lifetime_s);
        if expect != proxy.signature {
            return Err(AuthError::BadSignature);
        }
        if now > proxy.issued_at + proxy.lifetime_s {
            return Err(AuthError::Expired);
        }
        Ok(())
    }

    /// Authenticate *and* authorize: returns the matched policy (whose
    /// `max_nodes` caps the session).
    pub fn authorize(&self, proxy: &GridProxy, now: f64) -> Result<&VoPolicy, AuthError> {
        self.authenticate(proxy, now)?;
        let policy = self
            .policies
            .iter()
            .find(|p| p.vo == proxy.vo)
            .ok_or_else(|| AuthError::VoNotAuthorized(proxy.vo.clone()))?;
        if policy.banned_subjects.contains(&proxy.subject) {
            return Err(AuthError::SubjectBanned(proxy.subject.clone()));
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> SecurityDomain {
        SecurityDomain::new("slac-osg", 0xDEADBEEF)
            .with_policy(VoPolicy::new("ilc", 16))
            .with_policy(VoPolicy {
                vo: "atlas".into(),
                max_nodes: 8,
                banned_subjects: vec!["/DC=org/CN=mallory".into()],
                share: 1.0,
                max_total_engines: 0,
            })
    }

    #[test]
    fn issue_and_authorize() {
        let d = domain();
        let p = d.issue_proxy("/DC=org/CN=alice", "ilc", 0.0, 3600.0);
        let policy = d.authorize(&p, 100.0).unwrap();
        assert_eq!(policy.max_nodes, 16);
        assert!(p.remaining(100.0) > 0.0);
    }

    #[test]
    fn expired_proxy_rejected() {
        let d = domain();
        let p = d.issue_proxy("/CN=alice", "ilc", 0.0, 3600.0);
        assert_eq!(d.authorize(&p, 3601.0).unwrap_err(), AuthError::Expired);
        assert_eq!(p.remaining(4000.0), 0.0);
    }

    #[test]
    fn tampered_proxy_rejected() {
        let d = domain();
        let mut p = d.issue_proxy("/CN=alice", "ilc", 0.0, 3600.0);
        p.subject = "/CN=root".into(); // escalate!
        assert_eq!(d.authorize(&p, 1.0).unwrap_err(), AuthError::BadSignature);
        let mut p2 = d.issue_proxy("/CN=alice", "atlas", 0.0, 3600.0);
        p2.vo = "ilc".into(); // hop VOs for a bigger node cap
        assert_eq!(d.authorize(&p2, 1.0).unwrap_err(), AuthError::BadSignature);
    }

    #[test]
    fn foreign_domain_proxy_rejected() {
        let d = domain();
        let other = SecurityDomain::new("evil-grid", 0x1234).with_policy(VoPolicy::new("ilc", 99));
        let p = other.issue_proxy("/CN=alice", "ilc", 0.0, 3600.0);
        assert_eq!(d.authorize(&p, 1.0).unwrap_err(), AuthError::BadSignature);
    }

    #[test]
    fn unknown_vo_rejected() {
        let d = domain();
        let p = d.issue_proxy("/CN=alice", "cms", 0.0, 3600.0);
        assert_eq!(
            d.authorize(&p, 1.0).unwrap_err(),
            AuthError::VoNotAuthorized("cms".into())
        );
    }

    #[test]
    fn banned_subject_rejected() {
        let d = domain();
        let p = d.issue_proxy("/DC=org/CN=mallory", "atlas", 0.0, 3600.0);
        assert!(matches!(
            d.authorize(&p, 1.0).unwrap_err(),
            AuthError::SubjectBanned(_)
        ));
    }

    #[test]
    fn vo_policy_share_and_quota_default_in() {
        // Policies serialized before the multi-tenant fields existed must
        // still load, with weight 1 and no aggregate quota.
        let json = r#"{"vo":"ilc","max_nodes":4,"banned_subjects":[]}"#;
        let p: VoPolicy = serde_json::from_str(json).unwrap();
        assert_eq!(p.share, 1.0);
        assert_eq!(p.max_total_engines, 0);
        let p = VoPolicy::new("ilc", 4).with_share(2.5).with_engine_quota(8);
        assert_eq!(p.share, 2.5);
        assert_eq!(p.max_total_engines, 8);
    }

    #[test]
    fn proxy_serializes_and_still_verifies() {
        let d = domain();
        let p = d.issue_proxy("/CN=alice", "ilc", 0.0, 3600.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: GridProxy = serde_json::from_str(&json).unwrap();
        assert!(d.authenticate(&back, 1.0).is_ok());
    }
}

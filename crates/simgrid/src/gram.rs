//! GRAM-like job start model.
//!
//! The paper's sessions start analysis engines through the Globus GRAM
//! server, which "places the request to start a pre-configured number of
//! analysis engines on the job scheduler" (§3.2). Interactivity needs a
//! "dedicated timely scheduler queue" (§1, §6) — the key site-level
//! requirement the paper identifies. This module models exactly the timing
//! consequences: queue wait, per-engine startup, node caps.

use serde::{Deserialize, Serialize};

use crate::des::{Resource, SimTime, Simulation};

/// Scheduler behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Fixed delay between GRAM submission and the scheduler picking the
    /// job up. Seconds. A *dedicated interactive queue* keeps this small;
    /// a shared batch queue makes it minutes — the ablation benches sweep
    /// this.
    pub queue_delay_s: f64,
    /// Time for one node to start an analysis engine (JVM boot, engine
    /// registration, ready signal).
    pub engine_startup_s: f64,
    /// Engines start concurrently when true (each node boots its own), or
    /// serially when the site launches them one by one.
    pub parallel_startup: bool,
    /// Nodes available in the queue (the paper's dedicated queue had 16).
    pub nodes_available: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            // A dedicated interactive queue still takes a moment to react,
            // and a 2006 JVM engine on an 866 MHz node boots slowly; these
            // defaults put the grid's fixed session overhead near the ~53 s
            // constant of the paper's fitted T_grid equation.
            queue_delay_s: 15.0,
            engine_startup_s: 25.0,
            parallel_startup: true,
            nodes_available: 16,
        }
    }
}

/// Result of a simulated job start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Engines actually granted (≤ requested, capped by policy and queue).
    pub engines_started: usize,
    /// When each engine signalled ready, in engine order.
    pub ready_at: Vec<f64>,
    /// When the whole set was ready (max of `ready_at`, or submission time
    /// +queue delay if zero engines).
    pub all_ready_at: f64,
}

/// The GRAM + scheduler simulator.
#[derive(Debug, Clone)]
pub struct GramSimulator {
    /// Behaviour configuration.
    pub config: SchedulerConfig,
}

impl GramSimulator {
    /// New simulator with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        GramSimulator { config }
    }

    /// Number of engines a request actually gets: capped by the VO policy
    /// (`max_nodes`) and by what the queue has.
    pub fn grant(&self, requested: usize, vo_max_nodes: usize) -> usize {
        requested.min(vo_max_nodes).min(self.config.nodes_available)
    }

    /// Simulate starting `n` engines at `submit` time on `sim`. Engines
    /// signal ready according to the startup mode; the returned outcome has
    /// all timings. Events are also traced into the simulation.
    pub fn start_engines(&self, sim: &mut Simulation, submit: SimTime, n: usize) -> JobOutcome {
        let picked_up = submit.after(self.config.queue_delay_s);
        let mut ready_at = Vec::with_capacity(n);
        if self.config.parallel_startup {
            for i in 0..n {
                let t = picked_up.after(self.config.engine_startup_s);
                ready_at.push(t.secs());
                sim.schedule_at(t, move |s| {
                    s.trace(format!("engine {i} ready"));
                });
            }
        } else {
            // Serial startup through a single launcher resource.
            let mut launcher = Resource::new("launcher");
            // The launcher is idle until the job is picked up.
            launcher.acquire(SimTime::ZERO, picked_up.secs());
            for i in 0..n {
                let t = launcher.acquire(picked_up, self.config.engine_startup_s);
                ready_at.push(t.secs());
                sim.schedule_at(t, move |s| {
                    s.trace(format!("engine {i} ready"));
                });
            }
        }
        let all_ready_at = ready_at.iter().copied().fold(picked_up.secs(), f64::max);
        JobOutcome {
            engines_started: n,
            ready_at,
            all_ready_at,
        }
    }

    /// Closed-form: when are all `n` engines ready after a submission at
    /// `t0`? (Matches [`GramSimulator::start_engines`]; unit-tested.)
    pub fn all_ready_secs(&self, t0: f64, n: usize) -> f64 {
        let base = t0 + self.config.queue_delay_s;
        if n == 0 {
            return base;
        }
        if self.config.parallel_startup {
            base + self.config.engine_startup_s
        } else {
            base + self.config.engine_startup_s * n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_caps_by_policy_and_queue() {
        let g = GramSimulator::new(SchedulerConfig {
            nodes_available: 16,
            ..Default::default()
        });
        assert_eq!(g.grant(4, 16), 4);
        assert_eq!(g.grant(32, 16), 16);
        assert_eq!(g.grant(32, 8), 8);
        assert_eq!(g.grant(0, 16), 0);
    }

    #[test]
    fn parallel_startup_is_flat_in_n() {
        let g = GramSimulator::new(SchedulerConfig {
            queue_delay_s: 2.0,
            engine_startup_s: 4.0,
            parallel_startup: true,
            nodes_available: 16,
        });
        let mut sim = Simulation::new();
        let out = g.start_engines(&mut sim, SimTime::ZERO, 16);
        sim.run();
        assert_eq!(out.engines_started, 16);
        assert!(out.ready_at.iter().all(|&t| (t - 6.0).abs() < 1e-12));
        assert_eq!(out.all_ready_at, 6.0);
        assert_eq!(sim.traces.len(), 16);
        assert_eq!(out.all_ready_at, g.all_ready_secs(0.0, 16));
    }

    #[test]
    fn serial_startup_grows_with_n() {
        let g = GramSimulator::new(SchedulerConfig {
            queue_delay_s: 1.0,
            engine_startup_s: 3.0,
            parallel_startup: false,
            nodes_available: 16,
        });
        let mut sim = Simulation::new();
        let out = g.start_engines(&mut sim, SimTime::ZERO, 4);
        sim.run();
        assert_eq!(out.ready_at, vec![4.0, 7.0, 10.0, 13.0]);
        assert_eq!(out.all_ready_at, 13.0);
        assert_eq!(out.all_ready_at, g.all_ready_secs(0.0, 4));
    }

    #[test]
    fn zero_engines_is_just_queue_delay() {
        let g = GramSimulator::new(SchedulerConfig {
            queue_delay_s: 2.0,
            ..Default::default()
        });
        let mut sim = Simulation::new();
        let out = g.start_engines(&mut sim, SimTime(10.0), 0);
        assert_eq!(out.engines_started, 0);
        assert_eq!(out.all_ready_at, 12.0);
        assert_eq!(g.all_ready_secs(10.0, 0), 12.0);
    }

    #[test]
    fn batch_queue_vs_interactive_queue() {
        // The paper's point: a shared batch queue kills interactivity.
        let interactive = GramSimulator::new(SchedulerConfig::default());
        let batch = GramSimulator::new(SchedulerConfig {
            queue_delay_s: 600.0,
            ..Default::default()
        });
        assert!(interactive.all_ready_secs(0.0, 16) < 60.0);
        assert!(batch.all_ready_secs(0.0, 16) > 60.0);
    }
}

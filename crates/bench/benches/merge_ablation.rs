//! Merge-plane ablation (paper §2.5): cost of merging N partial AIDA trees
//! flat vs through a two-level hierarchy, as the part count grows. This is
//! the design choice DESIGN.md calls out — the sub-merger level trades a
//! little total work for parallelizable stages and a bounded top fan-in.
//!
//! PR 3 additions: the incremental result plane. `snapshot_*` measures the
//! cached two-level merge (a repeat poll with nothing new is a pure cache
//! hit; a poll after one part changed re-merges only that part's bucket),
//! and `publish_*` measures delta publishes against full-tree clones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipa_aida::{Histogram1D, Histogram2D, Tree};
use ipa_core::{AidaManager, PartPayload, PartUpdate};

fn partial_tree_with(seed: u64, extra_mass_fills: u64) -> Tree {
    let mut t = Tree::new();
    let mut h = Histogram1D::new("mass", 120, 0.0, 240.0);
    let mut h2 = Histogram2D::new("corr", 40, 0.0, 40.0, 40, 0.0, 240.0);
    for i in 0..2000u64 {
        let x = ((seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i * 2654435761))
            % 2400) as f64
            / 10.0;
        h.fill1(x);
        h2.fill1((i % 40) as f64, x);
    }
    for i in 0..extra_mass_fills {
        h.fill1((i % 240) as f64);
    }
    t.put("/higgs/mass", h).unwrap();
    t.put("/higgs/corr", h2).unwrap();
    t
}

fn partial_tree(seed: u64) -> Tree {
    partial_tree_with(seed, 0)
}

fn checkpoint(engine: usize, tree: Tree) -> PartUpdate {
    PartUpdate {
        engine,
        epoch: 0,
        seq: 0,
        processed: 2000,
        total: 2000,
        payload: PartPayload::Checkpoint(tree),
        done: true,
    }
}

fn manager_with_parts(parts: usize) -> AidaManager {
    let mut m = AidaManager::new();
    for p in 0..parts as u64 {
        m.publish(p, checkpoint(p as usize, partial_tree(p)));
    }
    m
}

fn bench_merge(c: &mut Criterion) {
    // Correctness gate: the cached snapshot plane must agree with the
    // flat reference merge before any of its numbers mean anything
    // (weights are unit fills, so sums are exact integers — bit-equal
    // under any merge association).
    {
        let mut m = manager_with_parts(64);
        let snap = m.snapshot().unwrap();
        let flat = m.merged().unwrap();
        assert_eq!(*snap, flat, "cached snapshot diverged from flat merge");
    }

    let mut g = c.benchmark_group("merge_ablation");
    for parts in [4usize, 16, 64] {
        let mut m = manager_with_parts(parts);
        g.bench_with_input(BenchmarkId::new("flat", parts), &parts, |b, _| {
            b.iter(|| m.merged().unwrap());
        });
        let mut m2 = manager_with_parts(parts);
        g.bench_with_input(
            BenchmarkId::new("hierarchical_fan4", parts),
            &parts,
            |b, _| {
                b.iter(|| m2.merged_hierarchical(4).unwrap());
            },
        );
        // Cached poll, nothing new since the last one: the steady state of
        // an interactive client between engine publishes. Zero merges.
        let mut m3 = manager_with_parts(parts);
        m3.snapshot().unwrap();
        g.bench_with_input(
            BenchmarkId::new("snapshot_unchanged", parts),
            &parts,
            |b, _| {
                b.iter(|| m3.snapshot().unwrap());
            },
        );
        // Poll after exactly one part republished: only that part's bucket
        // re-merges, plus the top-level combine.
        let mut m4 = manager_with_parts(parts);
        m4.snapshot().unwrap();
        let fresh = partial_tree(0);
        g.bench_with_input(
            BenchmarkId::new("snapshot_one_dirty", parts),
            &parts,
            |b, _| {
                b.iter(|| {
                    m4.publish(0, checkpoint(0, fresh.clone()));
                    m4.snapshot().unwrap()
                });
            },
        );
    }
    g.finish();

    // Publish-path ablation: what an engine's periodic publish costs the
    // manager when it ships a compact delta (here: one changed histogram
    // out of two booked objects) vs a full-tree checkpoint clone.
    let mut g = c.benchmark_group("publish_path");
    // `grown` is the same engine state one publish interval later: 50 more
    // fills, all landing in /higgs/mass — /higgs/corr is unchanged, so the
    // delta carries one object instead of two.
    let base = partial_tree(0);
    let grown = partial_tree_with(0, 50);
    let delta = grown.diff_since(&base);
    // Gate: replaying the delta onto the baseline reproduces the grown
    // tree exactly.
    {
        let mut replay = base.clone();
        replay.apply_delta(&delta).unwrap();
        assert_eq!(replay, grown, "delta replay diverged from the source");
    }
    let mut m = AidaManager::new();
    m.publish(0, checkpoint(0, base.clone()));
    g.bench_function("checkpoint_clone", |b| {
        b.iter(|| {
            m.publish(0, checkpoint(0, grown.clone()));
        });
    });
    let mut md = AidaManager::new();
    md.publish(0, checkpoint(0, base.clone()));
    let mut seq = 0u64;
    g.bench_function("delta", |b| {
        b.iter(|| {
            seq += 1;
            let outcome = md.publish(
                0,
                PartUpdate {
                    engine: 0,
                    epoch: 0,
                    seq,
                    processed: 2050,
                    total: 2050,
                    payload: PartPayload::Delta(delta.clone()),
                    done: false,
                },
            );
            assert!(outcome.applied());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

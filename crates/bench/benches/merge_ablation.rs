//! Merge-plane ablation (paper §2.5): cost of merging N partial AIDA trees
//! flat vs through a two-level hierarchy, as the part count grows. This is
//! the design choice DESIGN.md calls out — the sub-merger level trades a
//! little total work for parallelizable stages and a bounded top fan-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipa_aida::{Histogram1D, Histogram2D, Tree};
use ipa_core::{AidaManager, PartUpdate};

fn partial_tree(seed: u64) -> Tree {
    let mut t = Tree::new();
    let mut h = Histogram1D::new("mass", 120, 0.0, 240.0);
    let mut h2 = Histogram2D::new("corr", 40, 0.0, 40.0, 40, 0.0, 240.0);
    for i in 0..2000u64 {
        let x = ((seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i * 2654435761))
            % 2400) as f64
            / 10.0;
        h.fill1(x);
        h2.fill1((i % 40) as f64, x);
    }
    t.put("/higgs/mass", h).unwrap();
    t.put("/higgs/corr", h2).unwrap();
    t
}

fn manager_with_parts(parts: usize) -> AidaManager {
    let mut m = AidaManager::new();
    for p in 0..parts as u64 {
        m.publish(
            p,
            PartUpdate {
                engine: p as usize,
                epoch: 0,
                processed: 2000,
                total: 2000,
                tree: partial_tree(p),
                done: true,
            },
        );
    }
    m
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_ablation");
    for parts in [4usize, 16, 64] {
        let mut m = manager_with_parts(parts);
        g.bench_with_input(BenchmarkId::new("flat", parts), &parts, |b, _| {
            b.iter(|| m.merged().unwrap());
        });
        let mut m2 = manager_with_parts(parts);
        g.bench_with_input(
            BenchmarkId::new("hierarchical_fan4", parts),
            &parts,
            |b, _| {
                b.iter(|| m2.merged_hierarchical(4).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

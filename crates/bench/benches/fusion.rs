//! Script fusion ladder on the Higgs workload: the unfused VM, the
//! peephole-superinstruction VM, and the vectorized batch kernel, all
//! driven through [`run_fused`] — the same dispatch the engine hot loop
//! uses — over one columnar part. The tree-walk interpreter rides along
//! as the semantic floor.
//!
//! The acceptance target for `kernel` is ≥2× the unfused VM's records/s
//! on this workload — but only after the correctness gate: every rung of
//! the ladder must produce a bit-identical result tree before anything
//! is timed.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipa_dataset::{AnyRecord, ColumnBatch, EventGeneratorConfig};
use ipa_script::{
    compile, engine_for, run_fused, AidaHost, BatchKernel, Program, ScriptBackend, ScriptFusion,
};

/// The canonical analyze shape: a guarded fill plus an unconditional
/// fill — exactly what `BatchKernel::compile` targets.
const SCRIPT: &str = r#"
    fn init() {
        h1("/f/bb_mass", 60, 0.0, 240.0);
        h1("/f/visible_energy", 60, 0.0, 600.0);
    }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/f/bb_mass", m); }
        fill("/f/visible_energy", e.visible_energy);
    }
"#;

/// Full lifecycle at one point of the (backend, fusion) matrix, through
/// the shared `run_fused` dispatch.
fn run_mode(
    program: &Program,
    records: &Arc<Vec<AnyRecord>>,
    columns: &Arc<ColumnBatch>,
    backend: ScriptBackend,
    fusion: ScriptFusion,
) -> AidaHost {
    let mut engine = engine_for(program, backend, fusion).unwrap();
    let mut kernel = (backend == ScriptBackend::Vm && fusion == ScriptFusion::Kernel)
        .then(|| BatchKernel::compile(program))
        .flatten();
    let mut host = AidaHost::new();
    engine.run_init(&mut host).unwrap();
    let (done, err) = run_fused(
        engine.as_mut(),
        kernel.as_mut(),
        records,
        Some(columns),
        0..records.len(),
        &mut host,
    );
    assert_eq!(done, records.len(), "workload must be error-free");
    assert!(err.is_none(), "workload must be error-free: {err:?}");
    engine.run_end(&mut host).unwrap();
    host
}

fn bench_fusion(c: &mut Criterion) {
    let records = Arc::new(
        EventGeneratorConfig {
            events: 20_000,
            signal_fraction: 0.4,
            ..Default::default()
        }
        .generate(),
    );
    let columns = Arc::new(ColumnBatch::from_records(&records).expect("homogeneous event batch"));
    let program = compile(SCRIPT).unwrap();
    assert!(
        BatchKernel::compile(&program).is_some(),
        "bench script must be kernel-eligible"
    );

    // Correctness gate: every fusion level must match the tree-walk
    // bit-for-bit before any timing runs. Compared via the Debug dump —
    // it prints every bin and sidesteps NaN != NaN on empty stats.
    let ladder = [
        (ScriptBackend::Interp, ScriptFusion::Off),
        (ScriptBackend::Vm, ScriptFusion::Off),
        (ScriptBackend::Vm, ScriptFusion::Super),
        (ScriptBackend::Vm, ScriptFusion::Kernel),
    ];
    let trees: Vec<String> = ladder
        .iter()
        .map(|(b, f)| format!("{:?}", run_mode(&program, &records, &columns, *b, *f).tree))
        .collect();
    for (i, t) in trees.iter().enumerate().skip(1) {
        assert_eq!(
            &trees[0], t,
            "{}/{} diverges from the tree-walk",
            ladder[i].0, ladder[i].1
        );
    }

    let mut g = c.benchmark_group("script_fusion");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("interp", |b| {
        b.iter(|| run_mode(&program, &records, &columns, ScriptBackend::Interp, ScriptFusion::Off))
    });
    g.bench_function("vm_off", |b| {
        b.iter(|| run_mode(&program, &records, &columns, ScriptBackend::Vm, ScriptFusion::Off))
    });
    g.bench_function("vm_super", |b| {
        b.iter(|| run_mode(&program, &records, &columns, ScriptBackend::Vm, ScriptFusion::Super))
    });
    g.bench_function("vm_kernel", |b| {
        b.iter(|| run_mode(&program, &records, &columns, ScriptBackend::Vm, ScriptFusion::Kernel))
    });
    g.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);

//! Web-services boundary cost: round-trip latency of gateway requests over
//! loopback TCP + JSON — what the paper's SOAP/RMI hops cost us per client
//! poll. Compares a metadata-only call (Poll) against shipping the whole
//! merged tree (Results).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ipa_core::{IpaConfig, ManagerNode, WsClient, WsGateway, WsRequest};
use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{SecurityDomain, VoPolicy};

fn bench_gateway(c: &mut Criterion) {
    let sec = SecurityDomain::new("bench-gw", 2).with_policy(VoPolicy::new("ilc", 8));
    let manager = Arc::new(ManagerNode::new(
        "bench-gw",
        sec.clone(),
        IpaConfig {
            publish_every: 1_000,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/d",
            ipa_dataset::generate_dataset(
                "gw-events",
                "events",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 5_000,
                    ..Default::default()
                }),
            ),
            ipa_catalog::Metadata::new(),
        )
        .unwrap();
    let gw = WsGateway::serve(manager, ("127.0.0.1", 0)).unwrap();
    let mut client = WsClient::connect(gw.addr()).unwrap();

    // Stand up a finished session so Poll/Results have real payloads.
    let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
    let session = match client
        .call_ok(&WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 2,
        })
        .unwrap()
    {
        ipa_core::WsResponse::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    client
        .call_ok(&WsRequest::SelectDataset {
            session,
            id: "gw-events".into(),
        })
        .unwrap();
    client
        .call_ok(&WsRequest::LoadNative {
            session,
            name: "higgs-search".into(),
        })
        .unwrap();
    client.call_ok(&WsRequest::Run { session }).unwrap();
    // Wait for completion.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        if let ipa_core::WsResponse::Status(st) =
            client.call_ok(&WsRequest::Poll { session }).unwrap()
        {
            if st.state == ipa_core::RunState::Finished {
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // The current result version, for the version-aware fast path below.
    let version = match client
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: None,
        })
        .unwrap()
    {
        ipa_core::WsResponse::Tree { version, .. } => version,
        other => panic!("{other:?}"),
    };

    let mut g = c.benchmark_group("gateway");
    g.bench_function("catalog_tree_rtt", |b| {
        b.iter(|| client.call(&WsRequest::CatalogTree).unwrap())
    });
    g.bench_function("poll_rtt", |b| {
        b.iter(|| client.call(&WsRequest::Poll { session }).unwrap())
    });
    g.bench_function("results_tree_rtt", |b| {
        b.iter(|| {
            client
                .call(&WsRequest::Results {
                    session,
                    if_newer_than: None,
                })
                .unwrap()
        })
    });
    // Same poll but echoing the version already held: the run is finished,
    // nothing changes, and the reply is a constant-size Unchanged message
    // instead of the whole serialized tree.
    g.bench_function("results_unchanged_rtt", |b| {
        b.iter(|| {
            client
                .call(&WsRequest::Results {
                    session,
                    if_newer_than: Some(version),
                })
                .unwrap()
        })
    });
    g.finish();

    client
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
}

criterion_group!(benches, bench_gateway);
criterion_main!(benches);

//! Splitter throughput: the Table-2 "split" phase on real records — record
//! -count vs byte-balanced strategies, and codec encode/decode rates (the
//! splitter service's full pass over the dataset).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipa_dataset::{
    decode_dataset, encode_dataset, split_even, split_records, EventGeneratorConfig,
};

fn bench_split(c: &mut Criterion) {
    let records = EventGeneratorConfig {
        events: 20_000,
        ..Default::default()
    }
    .generate();
    let encoded = encode_dataset(&records);
    let mb = encoded.len() as u64;

    let mut g = c.benchmark_group("splitter");
    g.throughput(Throughput::Bytes(mb));
    for n in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("split_even", n), &n, |b, &n| {
            b.iter(|| split_even(black_box(&records), n).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("split_bytes", n), &n, |b, &n| {
            b.iter(|| split_records(black_box(&records), n).unwrap());
        });
    }
    g.bench_function("encode", |b| b.iter(|| encode_dataset(black_box(&records))));
    g.bench_function("decode", |b| {
        b.iter(|| decode_dataset(black_box(&encoded)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);

//! Multi-tenant control-plane cost: what the shared engine pool and the
//! reactor gateway add (or save) over single-tenant ownership. Three
//! views: session admission latency with and without the pool (lease vs
//! spawn), concurrent-tenant aggregate run throughput on one shared pool,
//! and idle-session poll RTT through the gateway while other clients are
//! connected — the reactor must keep that flat as connections stack up.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipa_core::{
    AnalysisCode, IpaConfig, ManagerNode, RunState, SchedulerPolicy, WsClient, WsGateway,
    WsRequest, WsResponse,
};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{GridProxy, SecurityDomain, VoPolicy};

const EVENTS: u64 = 10_000;

fn manager(pool: bool, pool_size: usize) -> (Arc<ManagerNode>, GridProxy) {
    let sec = SecurityDomain::new("bench-mt", 7).with_policy(VoPolicy::new("ilc", 64));
    let m = Arc::new(ManagerNode::new(
        "bench-mt",
        sec.clone(),
        IpaConfig {
            engine_pool: pool,
            pool_size,
            pool_lease_timeout_ms: 30_000,
            scheduler: SchedulerPolicy::WorkStealing,
            publish_every: 1_000,
            ..Default::default()
        },
    ));
    m.publish_dataset(
        "/d",
        ipa_dataset::generate_dataset(
            "mt-events",
            "events",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: EVENTS,
                ..Default::default()
            }),
        ),
        ipa_catalog::Metadata::new(),
    )
    .unwrap();
    let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
    (m, proxy)
}

/// Create+close latency: pooled leases recycle warm engines, ownership
/// spawns (and joins) fresh threads every time.
fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("multitenant/admission");
    for (label, pool) in [("owned", false), ("pooled", true)] {
        let (m, proxy) = manager(pool, 0);
        // Warm the pool so the steady-state path is measured, not spawn.
        let mut s = m.create_session(&proxy, 0.0, 4).unwrap();
        s.close();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut s = m.create_session(&proxy, 0.0, 4).unwrap();
                s.close();
            })
        });
    }
    g.finish();
}

/// Aggregate records/s with N tenants sharing one pool sized to the
/// machine: fair-share should divide, not serialize.
fn bench_concurrent_tenants(c: &mut Criterion) {
    let mut g = c.benchmark_group("multitenant/aggregate");
    g.sample_size(10);
    for tenants in [1usize, 2, 4] {
        let (m, proxy) = manager(true, 8);
        g.throughput(Throughput::Elements(EVENTS * tenants as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let mut handles = Vec::new();
                    for _ in 0..tenants {
                        let m = m.clone();
                        let proxy = proxy.clone();
                        handles.push(std::thread::spawn(move || {
                            let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
                            s.select_dataset(&DatasetId::new("mt-events")).unwrap();
                            s.load_code(AnalysisCode::Native("higgs-search".into()))
                                .unwrap();
                            s.run().unwrap();
                            let st = s.wait_finished(Duration::from_secs(120)).unwrap();
                            assert_eq!(st.records_processed, EVENTS);
                            s.close();
                        }));
                    }
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

/// Poll RTT for one idle session while `others` extra clients sit
/// connected to the same gateway: the reactor multiplexes them on a fixed
/// worker pool, so idle fan-in must not tax the active client.
fn bench_idle_poll_rtt(c: &mut Criterion) {
    let (m, proxy) = manager(true, 8);
    let gw = WsGateway::serve(m, ("127.0.0.1", 0)).unwrap();
    let mut client = WsClient::connect(gw.addr()).unwrap();
    let session = match client
        .call_ok(&WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 2,
        })
        .unwrap()
    {
        WsResponse::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    client
        .call_ok(&WsRequest::SelectDataset {
            session,
            id: "mt-events".into(),
        })
        .unwrap();
    client
        .call_ok(&WsRequest::LoadNative {
            session,
            name: "higgs-search".into(),
        })
        .unwrap();
    client.call_ok(&WsRequest::Run { session }).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        if let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() {
            if st.state == RunState::Finished {
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut g = c.benchmark_group("multitenant/idle_poll_rtt");
    let mut parked: Vec<WsClient> = Vec::new();
    for others in [0usize, 16, 128] {
        while parked.len() < others {
            parked.push(WsClient::connect(gw.addr()).unwrap());
        }
        g.bench_with_input(BenchmarkId::from_parameter(others), &others, |b, _| {
            b.iter(|| client.call(&WsRequest::Poll { session }).unwrap())
        });
    }
    g.finish();

    client
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
    drop(parked);
}

criterion_group!(
    benches,
    bench_admission,
    bench_concurrent_tenants,
    bench_idle_poll_rtt
);
criterion_main!(benches);

//! Row vs columnar data-plane throughput on the Higgs workload.
//!
//! The columnar plane transcodes a staged part once into typed column
//! slices (materializing derived fields like `bb_mass` in the process)
//! and fills histograms in bulk; the row plane re-derives every field
//! per record. The acceptance target for the columnar plane is ≥2×
//! records/s on this workload — but only after the correctness gate:
//! both layouts must merge to bit-identical trees before we time
//! anything.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipa_core::{
    builtin_registry, instantiate_code, run_analyzer_batch, AnalysisCode, Analyzer,
    HiggsSearchAnalyzer,
};
use ipa_dataset::{AnyRecord, ColumnBatch, EventGeneratorConfig};
use ipa_script::{AidaHost, ScriptBackend, ScriptFusion};

const SCRIPT: &str = r#"
    fn init() {
        h1("/s/bb_mass", 60, 0.0, 240.0);
        h1("/s/visible_energy", 60, 0.0, 600.0);
    }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/s/bb_mass", m); }
        fill("/s/visible_energy", e.visible_energy);
    }
"#;

/// Full native-analyzer lifecycle over one batch, row or columnar.
fn run_native(records: &Arc<Vec<AnyRecord>>, columns: Option<&Arc<ColumnBatch>>) -> AidaHost {
    let mut host = AidaHost::new();
    run_analyzer_batch(
        &mut HiggsSearchAnalyzer::default(),
        records,
        columns,
        &mut host,
    )
    .unwrap();
    host
}

/// Same lifecycle through the IPAScript VM (column-bound when columnar).
fn run_script(
    analyzer: &mut dyn Analyzer,
    records: &Arc<Vec<AnyRecord>>,
    columns: Option<&Arc<ColumnBatch>>,
) -> AidaHost {
    let mut host = AidaHost::new();
    run_analyzer_batch(analyzer, records, columns, &mut host).unwrap();
    host
}

fn script_analyzer() -> Box<dyn Analyzer> {
    instantiate_code(
        &AnalysisCode::Script(SCRIPT.into()),
        &builtin_registry(),
        ScriptBackend::Vm,
        ScriptFusion::from_env(),
    )
    .unwrap()
}

fn bench_data_layout(c: &mut Criterion) {
    let records = Arc::new(
        EventGeneratorConfig {
            events: 20_000,
            signal_fraction: 0.4,
            ..Default::default()
        }
        .generate(),
    );
    let columns = Arc::new(ColumnBatch::from_records(&records).expect("homogeneous event batch"));

    // Correctness gate: the columnar plane must merge bit-identically to
    // the row oracle — native and scripted — before any timing runs.
    let row = run_native(&records, None);
    let col = run_native(&records, Some(&columns));
    assert_eq!(row.tree, col.tree, "native: columnar disagrees with row");
    let srow = run_script(script_analyzer().as_mut(), &records, None);
    let scol = run_script(script_analyzer().as_mut(), &records, Some(&columns));
    assert_eq!(srow.tree, scol.tree, "script: columnar disagrees with row");

    let mut g = c.benchmark_group("data_layout");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("higgs_row", |b| b.iter(|| run_native(&records, None)));
    g.bench_function("higgs_columnar", |b| {
        b.iter(|| run_native(&records, Some(&columns)))
    });
    g.bench_function("script_vm_row", |b| {
        let mut a = script_analyzer();
        b.iter(|| run_script(a.as_mut(), &records, None))
    });
    g.bench_function("script_vm_columnar", |b| {
        let mut a = script_analyzer();
        b.iter(|| run_script(a.as_mut(), &records, Some(&columns)))
    });
    // One-time staging cost the transcode cache amortizes away.
    g.bench_function("transcode", |b| {
        b.iter(|| ColumnBatch::from_records(&records).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_data_layout);
criterion_main!(benches);

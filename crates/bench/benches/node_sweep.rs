//! Table 2 bench: the node sweep (1..16 engines) over the 471 MB staging +
//! analysis pipeline, one Criterion benchmark per row, printing the
//! simulated row values for EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ipa_bench::{PAPER_NODES, PAPER_TABLE2};
use ipa_simgrid::{simulate_session, PaperCalibration};

fn bench_node_sweep(c: &mut Criterion) {
    let cal = PaperCalibration::paper2006();
    let mut g = c.benchmark_group("table2");
    for &n in &PAPER_NODES {
        g.bench_with_input(BenchmarkId::new("simulate", n), &n, |b, &n| {
            b.iter(|| simulate_session(black_box(471.0), n, &cal))
        });
    }
    g.finish();

    println!("[table2] nodes  moveWhole  split  moveParts  analysis   (paper in parens)");
    for (&n, (pn, mw, sp, mp, an)) in PAPER_NODES.iter().zip(PAPER_TABLE2) {
        assert_eq!(n, pn);
        let r = simulate_session(471.0, n, &cal);
        println!(
            "[table2] {:>5}  {:>6.0}({:>3.0}) {:>5.0}({:>3.0}) {:>7.0}({:>3.0}) {:>7.0}({:>3.0})",
            n, r.move_whole_s, mw, r.split_s, sp, r.move_parts_s, mp, r.analysis_s, an
        );
    }
}

criterion_group!(benches, bench_node_sweep);
criterion_main!(benches);

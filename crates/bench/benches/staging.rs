//! Table 1 bench: the simulated staging + analysis pipeline at the paper's
//! operating point (471 MB, 16 nodes), plus the local alternative. The
//! *simulated seconds* are the reproduction; Criterion here measures that
//! the simulator itself is cheap enough to sweep densely.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipa_simgrid::{simulate_local_analysis, simulate_session, PaperCalibration};

fn bench_staging(c: &mut Criterion) {
    let cal = PaperCalibration::paper2006();
    let mut g = c.benchmark_group("table1");
    g.bench_function("simulate_grid_471mb_16n", |b| {
        b.iter(|| simulate_session(black_box(471.0), black_box(16), &cal))
    });
    g.bench_function("simulate_local_471mb", |b| {
        b.iter(|| simulate_local_analysis(black_box(471.0), &cal))
    });
    g.finish();

    // Print the actual Table-1 numbers alongside the bench.
    let grid = simulate_session(471.0, 16, &cal);
    let local = simulate_local_analysis(471.0, &cal);
    println!(
        "[table1] local total = {:.0} s (paper 2700), grid total = {:.0} s (paper 259), speedup {:.1}x",
        local.total_s,
        grid.total_s,
        local.total_s / grid.total_s
    );
}

criterion_group!(benches, bench_staging);
criterion_main!(benches);

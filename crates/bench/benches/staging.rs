//! Staging benches.
//!
//! Table 1: the simulated staging + analysis pipeline at the paper's
//! operating point (471 MB, 16 nodes), plus the local alternative. The
//! *simulated seconds* are the reproduction; Criterion here measures that
//! the simulator itself is cheap enough to sweep densely.
//!
//! PR 4 additions: the real staging plane. `staging_plane` stages an
//! actual in-memory dataset through [`SitePlane`] — eager (read pass then
//! transfers) vs pipelined (read overlapped with chunked transfers) vs a
//! cached re-select (split-cache hit, the interactive loop's steady
//! state) — gated on all three delivering bit-identical parts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipa_core::{
    DatasetPlane, DatasetStore, IpaConfig, LocatorService, SitePlane, SplitSpec, StagerConfig,
};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{simulate_local_analysis, simulate_session, PaperCalibration};

const EVENTS: u64 = 20_000;
const PARTS: usize = 16;

fn locator() -> LocatorService {
    let store = DatasetStore::new();
    store
        .put(ipa_dataset::generate_dataset(
            "bench-ds",
            "staging bench events",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: EVENTS,
                ..Default::default()
            }),
        ))
        .unwrap();
    LocatorService::new(store, "bench-site")
}

/// A plane staging through the pipeline on every call (no split cache),
/// with overlap on or off.
fn uncached_plane(overlap: bool) -> SitePlane {
    let config = IpaConfig {
        split_cache: false,
        stage_overlap: overlap,
        // Small chunks so the 20k-event dataset actually pipelines.
        stage_chunk_bytes: 64 << 10,
        ..Default::default()
    };
    let sc = StagerConfig::from_config(&config);
    SitePlane::new(locator(), &config).with_stager_config(sc)
}

fn spec() -> SplitSpec {
    SplitSpec {
        micro_parts: false,
        parts: PARTS,
        byte_balanced: true,
    }
}

fn bench_staging(c: &mut Criterion) {
    let cal = PaperCalibration::paper2006();
    let mut g = c.benchmark_group("table1");
    g.bench_function("simulate_grid_471mb_16n", |b| {
        b.iter(|| simulate_session(black_box(471.0), black_box(16), &cal))
    });
    g.bench_function("simulate_local_471mb", |b| {
        b.iter(|| simulate_local_analysis(black_box(471.0), &cal))
    });
    g.finish();

    // Print the actual Table-1 numbers alongside the bench.
    let grid = simulate_session(471.0, 16, &cal);
    let local = simulate_local_analysis(471.0, &cal);
    println!(
        "[table1] local total = {:.0} s (paper 2700), grid total = {:.0} s (paper 259), speedup {:.1}x",
        local.total_s,
        grid.total_s,
        local.total_s / grid.total_s
    );

    let id = DatasetId::new("bench-ds");

    // Correctness gate: eager, pipelined, and cached-reselect staging must
    // all deliver the same parts bit for bit before any timing matters.
    {
        let eager = uncached_plane(false).stage(&id, &spec()).unwrap();
        let piped = uncached_plane(true).stage(&id, &spec()).unwrap();
        assert_eq!(eager.parts.len(), piped.parts.len());
        for (a, b) in eager.parts.iter().zip(&piped.parts) {
            assert_eq!(a, b, "pipelined delivery diverged from eager");
        }
        let mut cached = SitePlane::new(locator(), &IpaConfig::default());
        let miss = cached.stage(&id, &spec()).unwrap();
        let hit = cached.stage(&id, &spec()).unwrap();
        assert!(!miss.from_cache && hit.from_cache);
        for (a, b) in miss.parts.iter().zip(&hit.parts) {
            assert!(
                std::sync::Arc::ptr_eq(a, b),
                "cache hit must return the staged part buffers themselves"
            );
        }
    }

    let mut g = c.benchmark_group("staging_plane");
    let mut eager = uncached_plane(false);
    g.bench_function("stage_eager_16p", |b| {
        b.iter(|| black_box(eager.stage(&id, &spec()).unwrap()))
    });
    let mut piped = uncached_plane(true);
    g.bench_function("stage_pipelined_16p", |b| {
        b.iter(|| black_box(piped.stage(&id, &spec()).unwrap()))
    });
    let mut cached = SitePlane::new(locator(), &IpaConfig::default());
    cached.stage(&id, &spec()).unwrap();
    g.bench_function("stage_cached_reselect_16p", |b| {
        b.iter(|| {
            let staged = cached.stage(&id, &spec()).unwrap();
            assert!(staged.from_cache);
            black_box(staged)
        })
    });
    g.finish();

    // The calibrated "move parts" shape of the last uncached stages.
    let st = piped.stats();
    println!(
        "[staging] sim read {:.1} s + transfer {:.1} s → pipelined {:.1} s \
         (overlap hides {:.0}% of eager); {} chunks/stage",
        st.sim_read_s,
        st.sim_transfer_s,
        st.sim_pipelined_s,
        st.overlap_ratio * 100.0,
        st.chunks_sent / st.cache_misses.max(1),
    );
}

criterion_group!(benches, bench_staging);
criterion_main!(benches);

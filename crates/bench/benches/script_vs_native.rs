//! Per-record cost of the code paths the paper supports: interpreted
//! scripts (PNUTS → IPAScript) vs compiled analyzers (Java classes →
//! native Rust). Quantifies the interpretation tax users pay for on-the-fly
//! editability — and how much of it the bytecode VM claws back over the
//! tree-walk.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipa_core::{run_analyzer_serial, HiggsSearchAnalyzer};
use ipa_dataset::{AnyRecord, EventGeneratorConfig};
use ipa_script::{compile, engine_for, AidaHost, Program, RecordRef, ScriptBackend, ScriptFusion};

const SCRIPT: &str = r#"
    fn init() { h1("/higgs/bb_mass", 60, 0.0, 240.0); }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/higgs/bb_mass", m); }
    }
"#;

/// Run the full analysis lifecycle on one backend, sharing the batch the
/// way the engine hot path does (`RecordRef::batch` — no record copies).
fn run_backend(
    program: &Program,
    records: &Arc<Vec<AnyRecord>>,
    backend: ScriptBackend,
) -> AidaHost {
    let mut host = AidaHost::new();
    let mut engine = engine_for(program, backend, ScriptFusion::Off).unwrap();
    engine.run_init(&mut host).unwrap();
    for i in 0..records.len() {
        engine
            .process(&mut host, RecordRef::batch(Arc::clone(records), i))
            .unwrap();
    }
    engine.run_end(&mut host).unwrap();
    host
}

fn bench_code_paths(c: &mut Criterion) {
    let records = Arc::new(
        EventGeneratorConfig {
            events: 2_000,
            ..Default::default()
        }
        .generate(),
    );

    let program = compile(SCRIPT).unwrap();
    // Correctness gate: both backends must produce bin-for-bin identical
    // results before we bother timing them.
    let interp_host = run_backend(&program, &records, ScriptBackend::Interp);
    let vm_host = run_backend(&program, &records, ScriptBackend::Vm);
    assert_eq!(
        interp_host.tree, vm_host.tree,
        "tree-walk and VM disagree on the bench script"
    );

    let mut g = c.benchmark_group("code_paths");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("native_higgs", |b| {
        b.iter(|| {
            let mut host = AidaHost::new();
            run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &records, &mut host).unwrap();
            host
        })
    });
    g.bench_function("script_higgs", |b| {
        b.iter(|| run_backend(&program, &records, ScriptBackend::Interp))
    });
    g.bench_function("script_higgs_vm", |b| {
        b.iter(|| run_backend(&program, &records, ScriptBackend::Vm))
    });
    g.bench_function("script_compile_only", |b| {
        b.iter(|| compile(SCRIPT).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_code_paths);
criterion_main!(benches);

//! Per-record cost of the two code paths the paper supports: interpreted
//! scripts (PNUTS → IPAScript) vs compiled analyzers (Java classes →
//! native Rust). Quantifies the interpretation tax users pay for on-the-fly
//! editability.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipa_core::{run_analyzer_serial, HiggsSearchAnalyzer};
use ipa_dataset::EventGeneratorConfig;
use ipa_script::{compile, AidaHost, Interpreter};

const SCRIPT: &str = r#"
    fn init() { h1("/higgs/bb_mass", 60, 0.0, 240.0); }
    fn process(e) {
        let m = e.bb_mass;
        if m != null { fill("/higgs/bb_mass", m); }
    }
"#;

fn bench_code_paths(c: &mut Criterion) {
    let records = EventGeneratorConfig {
        events: 2_000,
        ..Default::default()
    }
    .generate();

    let mut g = c.benchmark_group("code_paths");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("native_higgs", |b| {
        b.iter(|| {
            let mut host = AidaHost::new();
            run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &records, &mut host).unwrap();
            host
        })
    });
    let program = compile(SCRIPT).unwrap();
    g.bench_function("script_higgs", |b| {
        b.iter(|| {
            let mut host = AidaHost::new();
            let mut interp = Interpreter::new(&program);
            interp.run_init(&mut host).unwrap();
            for r in &records {
                interp.process_record(&mut host, r).unwrap();
            }
            host
        })
    });
    g.bench_function("script_compile_only", |b| {
        b.iter(|| compile(SCRIPT).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_code_paths);
criterion_main!(benches);

//! The equation-fitting experiment (paper §4): sweep the simulator over
//! (X, N), fit the cost equations by least squares, and print the
//! recovered coefficients against the paper's.

use criterion::{criterion_group, criterion_main, Criterion};
use ipa_bench::fitted_equations;
use ipa_model::{PAPER_GRID, PAPER_LOCAL};
use ipa_simgrid::PaperCalibration;

fn bench_fitting(c: &mut Criterion) {
    let cal = PaperCalibration::paper2006();
    c.bench_function("fit_equations_full_sweep", |b| {
        b.iter(|| fitted_equations(&cal))
    });

    let (local, grid) = fitted_equations(&cal);
    println!(
        "[equations] local slope: paper {:.1}, refit {:.2}",
        PAPER_LOCAL.slope(),
        local.slope()
    );
    println!(
        "[equations] grid (a, c, d, b): paper ({:.3}, {:.0}, {:.0}, {:.1}), refit ({:.3}, {:.0}, {:.0}, {:.1})",
        PAPER_GRID.a_s_per_mb,
        PAPER_GRID.c_s,
        PAPER_GRID.d_s,
        PAPER_GRID.b_s_per_mb,
        grid.a_s_per_mb,
        grid.c_s,
        grid.d_s,
        grid.b_s_per_mb
    );
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);

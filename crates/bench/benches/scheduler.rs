//! Static split vs pull-based work stealing under a straggler: one of
//! four engines throttled to 4× slower, 10k-record session. The paper's
//! static one-part-per-engine split (§3.4) is hostage to the slow node;
//! the work-stealing scheduler routes micro-parts around it and
//! speculatively re-executes its tail part, so the run should finish in
//! ≤ 50% of the static wall-clock. The interpreted analyzer is used so
//! per-record compute (not channel/poll overhead) dominates the timing.

use criterion::{criterion_group, criterion_main, Criterion};
use ipa_aida::Tree;
use ipa_core::{AnalysisCode, IpaConfig, ManagerNode, SchedulerPolicy};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{GridProxy, SecurityDomain, VoPolicy};
use std::time::Duration;

const EVENTS: u64 = 10_000;

fn higgs_script() -> AnalysisCode {
    AnalysisCode::Script(
        r#"
        fn init() {
            h1("/higgs/bb_mass", 60, 0.0, 240.0);
            h1("/higgs/n_btags", 8, 0.0, 8.0);
        }
        fn process(e) {
            fill("/higgs/n_btags", e.n_btags);
            let m = e.bb_mass;
            if m != null { fill("/higgs/bb_mass", m); }
        }
        "#
        .to_string(),
    )
}

fn rig(scheduler: SchedulerPolicy) -> (ManagerNode, GridProxy) {
    let sec = SecurityDomain::new("bench-site", 1).with_policy(VoPolicy::new("ilc", 64));
    let manager = ManagerNode::new(
        "bench-site",
        sec.clone(),
        IpaConfig {
            scheduler,
            engines_per_session: 4,
            oversub: 4,
            publish_every: 250,
            speed_factors: vec![4.0, 1.0, 1.0, 1.0],
            ..Default::default()
        },
    );
    let ds = ipa_dataset::generate_dataset(
        "bench-sched",
        "Straggler bench events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: EVENTS,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/bench", ds, ipa_catalog::Metadata::new())
        .unwrap();
    let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
    (manager, proxy)
}

fn run_once(manager: &ManagerNode, proxy: &GridProxy) -> Tree {
    let mut s = manager.create_session(proxy, 0.0, 4).unwrap();
    s.select_dataset(&DatasetId::new("bench-sched")).unwrap();
    s.load_code(higgs_script()).unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(300)).unwrap();
    assert_eq!(
        st.records_processed, EVENTS,
        "run must process every record"
    );
    let tree = s.results().unwrap().as_ref().clone();
    s.close();
    tree
}

/// Fills all use weight 1.0, so merged bin heights are exact integer sums
/// — the two policies must agree bit for bit, not just approximately.
fn assert_identical(a: &Tree, b: &Tree, path: &str) {
    let ha = a.get(path).unwrap().as_h1().unwrap();
    let hb = b.get(path).unwrap().as_h1().unwrap();
    assert_eq!(ha.all_entries(), hb.all_entries(), "{path}: entries");
    for i in 0..ha.axis().bins() {
        assert_eq!(ha.bin_entries(i), hb.bin_entries(i), "{path} bin {i}");
        assert_eq!(
            ha.bin_height(i).to_bits(),
            hb.bin_height(i).to_bits(),
            "{path} bin {i} height"
        );
    }
}

fn bench_scheduler(c: &mut Criterion) {
    // Correctness gate before timing anything: both policies must merge to
    // bit-identical histograms despite stealing and speculation.
    {
        let (static_mgr, static_proxy) = rig(SchedulerPolicy::Static);
        let (ws_mgr, ws_proxy) = rig(SchedulerPolicy::WorkStealing);
        let a = run_once(&static_mgr, &static_proxy);
        let b = run_once(&ws_mgr, &ws_proxy);
        assert_identical(&a, &b, "/higgs/n_btags");
        assert_identical(&a, &b, "/higgs/bb_mass");
    }

    let mut g = c.benchmark_group("scheduler_straggler_4x_10k");
    g.sample_size(10);
    for (name, policy) in [
        ("static", SchedulerPolicy::Static),
        ("work_queue", SchedulerPolicy::WorkQueue),
        ("work_stealing", SchedulerPolicy::WorkStealing),
    ] {
        let (manager, proxy) = rig(policy);
        g.bench_function(name, |b| b.iter(|| run_once(&manager, &proxy)));
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);

//! Real-compute scaling: the Table-2 "analysis" column with actual engines
//! on actual threads over actual records. Measures wall-clock of a full
//! session run vs engine count — the shape (monotone speedup, sublinear at
//! high N on few cores) is what the paper's analysis column shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipa_bench::LiveRig;

fn bench_engine_scaling(c: &mut Criterion) {
    let rig = LiveRig::new(20_000, 5_000);
    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("run_20k_events", n), &n, |b, &n| {
            b.iter(|| rig.run_to_completion(n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);

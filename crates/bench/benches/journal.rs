//! Session-journal benches (PR 7): WAL append cost per durability mode
//! (memory, buffered file, fsync'd file) and replay throughput.
//!
//! Recovery is only compatible with an *interactive* facility if (a) the
//! per-publish journal tax is far below the publish interval and (b)
//! replaying a session's log is far cheaper than re-running the analysis.
//! These benches put numbers on both; `reproduce -- perf` snapshots the
//! same quantities into `BENCH_results.json`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ipa_aida::Tree;
use ipa_core::{
    decode_events, replay, AnalysisCode, HiggsSearchAnalyzer, JournalBackend, JournalEvent,
    PartPayload, PartUpdate, SessionJournal,
};
use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
use ipa_script::AidaHost;

const BATCH: usize = 64;
const REPLAY_EVENTS: usize = 1_000;

/// A realistic checkpoint payload: the higgs-search tree over a small
/// event sample (three histograms, same shape engines publish mid-run).
fn sample_tree() -> Tree {
    let ds = ipa_dataset::generate_dataset(
        "journal-bench",
        "journal bench events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: 500,
            ..Default::default()
        }),
    );
    let mut host = AidaHost::new();
    ipa_core::run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &ds.records, &mut host)
        .unwrap();
    host.tree
}

/// `n` checkpoint publishes across 16 parts / 4 engines, epoch 0 — the
/// steady-state record mix of a running session.
fn publish_events(n: usize, tree: &Tree) -> Vec<JournalEvent> {
    (0..n)
        .map(|i| JournalEvent::ResultUpdate {
            part: (i % 16) as u64,
            update: PartUpdate {
                engine: i % 4,
                epoch: 0,
                seq: 0,
                processed: 100,
                total: 100,
                payload: PartPayload::Checkpoint(tree.clone()),
                done: i % 16 == 15,
            },
        })
        .collect()
}

/// A full session-shaped journal: creation, dataset, code, run, then
/// `n` publishes with completions and a version mark at the end.
fn session_events(n: usize, tree: &Tree) -> Vec<JournalEvent> {
    let mut events = vec![
        JournalEvent::SessionCreated {
            session: 1,
            subject: "/CN=bench".into(),
            engines: 4,
        },
        JournalEvent::DatasetSelected {
            id: "journal-bench".into(),
        },
        JournalEvent::CodeLoaded {
            code: AnalysisCode::Native("higgs-search".into()),
        },
        JournalEvent::RunStarted,
    ];
    events.extend(publish_events(n, tree));
    events.push(JournalEvent::ResultVersion { version: 1 });
    events
}

fn bench_journal(c: &mut Criterion) {
    let tree = sample_tree();
    let batch = publish_events(BATCH, &tree);

    let mut g = c.benchmark_group("journal_append");
    g.bench_function("memory_64ev", |b| {
        b.iter_batched(
            || SessionJournal::new(JournalBackend::memory(), 0),
            |mut j| {
                for ev in &batch {
                    j.append(ev);
                }
                assert_eq!(j.append_errors(), 0);
                j
            },
            BatchSize::SmallInput,
        )
    });
    let dir = std::env::temp_dir().join(format!("ipa-journal-bench-{}", std::process::id()));
    for (label, fsync) in [("file_buffered_64ev", false), ("file_fsync_64ev", true)] {
        let path = dir.join(format!("{label}.wal"));
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let _ = std::fs::remove_file(&path);
                    SessionJournal::new(JournalBackend::file(&path, fsync), 0)
                },
                |mut j| {
                    for ev in &batch {
                        j.append(ev);
                    }
                    assert_eq!(j.append_errors(), 0);
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();

    // Encode a full session journal once; decode and replay are what the
    // recovery path actually pays at restart.
    let events = session_events(REPLAY_EVENTS, &tree);
    let mut j = SessionJournal::new(JournalBackend::memory(), 0);
    for ev in &events {
        j.append(ev);
    }
    let bytes = j.handle().unwrap().lock().clone();
    assert_eq!(decode_events(&bytes).len(), events.len());

    let mut g = c.benchmark_group("journal_recovery");
    g.bench_function("decode_1k", |b| {
        b.iter(|| black_box(decode_events(black_box(&bytes)).len()))
    });
    g.bench_function("replay_1k", |b| {
        b.iter(|| {
            let rec = replay(black_box(&events), 8, 1);
            black_box(rec.aida.result_version())
        })
    });
    g.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);

//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p ipa-bench --bin reproduce -- all
//! cargo run --release -p ipa-bench --bin reproduce -- table1 table2 figure5 equations live
//! ```
//!
//! Output compares the paper's published numbers with this reproduction's
//! simulated (and, for `live`, really-measured) values. SVG renderings of
//! Figure 5 are written to `reproduction/`.

use ipa_aida::render::{render_series_svg, Series, SvgOptions};
use ipa_bench::*;
use ipa_model::{PAPER_GRID, PAPER_LOCAL};
use ipa_simgrid::PaperCalibration;

fn hline() {
    println!("{}", "-".repeat(78));
}

fn table1_cmd(cal: &PaperCalibration) {
    hline();
    println!("TABLE 1 — local vs. Grid (16 nodes), 471 MB dataset, seconds");
    hline();
    let (local, grid) = table1(cal);
    println!("{:<28} {:>12} {:>12}", "phase", "paper", "simulated");
    println!(
        "{:<28} {:>12} {:>12.0}",
        "local: get dataset (WAN)", "1920 (32 min)", local.fetch_s
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "local: analysis", "780 (13 min)", local.analysis_s
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "local: TOTAL", "2700 (45 min)", local.total_s
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "grid: stage dataset",
        "174",
        grid.stage_dataset_s()
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "grid: stage code", "7", grid.stage_code_s
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "grid: analysis", "258", grid.analysis_s
    );
    println!(
        "{:<28} {:>12} {:>12.0}",
        "grid: TOTAL (wall clock)", "259 (4m19s)", grid.total_s
    );
    println!(
        "grid speedup over local: paper ~10x, simulated {:.1}x",
        local.total_s / grid.total_s
    );
    println!(
        "note: the paper's own Table 1 rows do not sum to its total; we report\n\
         both a sequential sum ({:.0} s) and the overlapped wall clock above.",
        grid.sequential_total_s
    );
}

fn table2_cmd(cal: &PaperCalibration) {
    hline();
    println!("TABLE 2 — stage & analyze vs. node count, 471 MB dataset, seconds");
    hline();
    println!(
        "{:>5} | {:>10} {:>10} | {:>6} {:>6} | {:>10} {:>10} | {:>9} {:>9}",
        "nodes",
        "moveW(pap)",
        "moveW(sim)",
        "sp(pap)",
        "sp(sim)",
        "parts(pap)",
        "parts(sim)",
        "ana(pap)",
        "ana(sim)"
    );
    let rows = table2_rows(cal);
    for (row, (n, mw, sp, mp, an)) in rows.iter().zip(PAPER_TABLE2) {
        println!(
            "{:>5} | {:>10.0} {:>10.0} | {:>6.0} {:>6.0} | {:>10.0} {:>10.0} | {:>9.0} {:>9.0}",
            n, mw, row.move_whole_s, sp, row.split_s, mp, row.move_parts_s, an, row.analysis_s
        );
    }
    println!(
        "shape checks: move-whole & split flat in N; move-parts ~ 46 + 62/N;\n\
         analysis ~ 1/N (paper's absolute analysis column is internally\n\
         inconsistent with Table 1 — see EXPERIMENTS.md)."
    );
}

fn figure5_cmd(cal: &PaperCalibration) {
    hline();
    println!("FIGURE 5 — T(X, N) surfaces: local (gold) vs grid (blue)");
    hline();
    let paper = figure5_paper();
    let sim = figure5_simulated(cal);
    println!("paper-equation surface (s), rows = X MB, cols = N:");
    print_surface(&paper);
    println!("\nsimulated surface (s):");
    print_surface(&sim);

    for n in [2usize, 4, 8, 16, 32] {
        let (p, s) = crossovers(cal, n);
        println!(
            "crossover (grid wins above) N={n:>2}: paper-eq {} MB, simulated {} MB",
            p.map(|x| format!("{x:.1}")).unwrap_or_else(|| "—".into()),
            s.map(|x| format!("{x:.1}")).unwrap_or_else(|| "—".into()),
        );
    }

    // SVG rendering: one slice per N of interest, local vs grid.
    std::fs::create_dir_all("reproduction").ok();
    let mut series = Vec::new();
    series.push(Series {
        label: "local".into(),
        color: "#c9a227".into(),
        points: sim
            .iter()
            .filter(|p| p.n == 16)
            .map(|p| (p.x_mb, p.t_local_s))
            .collect(),
    });
    for (n, color) in [(1usize, "#9ecbff"), (4, "#5a9bd8"), (16, "#1f4e96")] {
        series.push(Series {
            label: format!("grid N={n}"),
            color: color.into(),
            points: sim
                .iter()
                .filter(|p| p.n == n)
                .map(|p| (p.x_mb, p.t_grid_s))
                .collect(),
        });
    }
    let svg = render_series_svg(
        "Figure 5: analysis time vs dataset size (slices of the N axis)",
        &series,
        &SvgOptions::default(),
    );
    std::fs::write("reproduction/figure5.svg", svg).ok();
    println!("wrote reproduction/figure5.svg");
}

fn print_surface(points: &[ipa_model::SurfacePoint]) {
    let mut ns: Vec<usize> = points.iter().map(|p| p.n).collect();
    ns.sort_unstable();
    ns.dedup();
    let mut xs: Vec<f64> = points.iter().map(|p| p.x_mb).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    print!("{:>9} {:>9} |", "X (MB)", "local");
    for n in &ns {
        print!(" {:>8}", format!("N={n}"));
    }
    println!();
    for &x in &xs {
        let local = points
            .iter()
            .find(|p| p.x_mb == x)
            .map(|p| p.t_local_s)
            .unwrap_or(f64::NAN);
        print!("{x:>9.1} {local:>9.0} |");
        for &n in &ns {
            let t = points
                .iter()
                .find(|p| p.x_mb == x && p.n == n)
                .map(|p| p.t_grid_s)
                .unwrap_or(f64::NAN);
            print!(" {t:>8.0}");
        }
        println!();
    }
}

fn equations_cmd(cal: &PaperCalibration) {
    hline();
    println!("FITTED EQUATIONS — least-squares over simulated measurements");
    hline();
    let (local, grid) = fitted_equations(cal);
    println!("               {:>10} {:>12}", "paper", "refit (sim)");
    println!(
        "local move     {:>10.2} {:>12.2}   (s/MB over WAN)",
        PAPER_LOCAL.move_s_per_mb, local.move_s_per_mb
    );
    println!(
        "local analyze  {:>10.2} {:>12.2}   (s/MB)",
        PAPER_LOCAL.analyze_s_per_mb, local.analyze_s_per_mb
    );
    println!(
        "local slope    {:>10.2} {:>12.2}   (T_local = k X)",
        PAPER_LOCAL.slope(),
        local.slope()
    );
    println!(
        "grid a         {:>10.3} {:>12.3}   (X term)",
        PAPER_GRID.a_s_per_mb, grid.a_s_per_mb
    );
    println!(
        "grid c         {:>10.1} {:>12.1}   (constant)",
        PAPER_GRID.c_s, grid.c_s
    );
    println!(
        "grid d         {:>10.1} {:>12.1}   (1/N term)",
        PAPER_GRID.d_s, grid.d_s
    );
    println!(
        "grid b         {:>10.2} {:>12.2}   (X/N term — parallel analysis)",
        PAPER_GRID.b_s_per_mb, grid.b_s_per_mb
    );
}

fn live_cmd() {
    hline();
    println!("LIVE — real engines, real records (shape check for Table 2's analysis column)");
    hline();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let events = 200_000u64;
    let rig = LiveRig::new(events, 5_000);
    println!("dataset: {events} simulated LC events, interpreted analysis script");
    println!(
        "host exposes {cores} CPU core(s) — speedup saturates there; on a\n\
         single-core host the table verifies overhead, not parallelism"
    );
    println!(
        "{:>8} {:>12} {:>9} {:>14}",
        "engines", "wall (s)", "speedup", "records/s"
    );
    let base = rig.run_code_to_completion(1, LiveRig::higgs_script());
    println!(
        "{:>8} {:>12.3} {:>9.2} {:>14.0}",
        1,
        base,
        1.0,
        events as f64 / base
    );
    for n in [2usize, 4, 8] {
        let t = rig.run_code_to_completion(n, LiveRig::higgs_script());
        println!(
            "{:>8} {:>12.3} {:>9.2} {:>14.0}",
            n,
            t,
            base / t,
            events as f64 / t
        );
    }
    // Interactivity yardstick: time to first merged partial result.
    let mut s = rig.session(4);
    let report = ipa_client::monitor_run(
        &mut s,
        std::time::Duration::from_millis(1),
        std::time::Duration::from_secs(120),
        |_, _| {},
    )
    .unwrap();
    println!(
        "first feedback on 4 engines: {:?} (paper requires < 60 s)",
        report.first_feedback.unwrap_or_default()
    );
    s.close();
}

fn ablations_cmd(cal: &PaperCalibration) {
    hline();
    println!("ABLATIONS — design choices DESIGN.md calls out");
    hline();

    // 1. Dedicated interactive queue vs shared batch queue (§1/§6: "the
    //    need for a fast processing queue").
    println!("\n[A1] scheduler queue delay vs session total (471 MB, 16 nodes):");
    println!(
        "{:>14} {:>12} {:>16}",
        "queue delay", "total (s)", "interactive?"
    );
    for delay in [2.0, 15.0, 60.0, 600.0, 3600.0] {
        let mut c = *cal;
        c.scheduler.queue_delay_s = delay;
        let b = ipa_simgrid::simulate_session(471.0, 16, &c);
        println!(
            "{:>12.0} s {:>12.0} {:>16}",
            delay,
            b.total_s,
            if b.engines_ready_s < 60.0 {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // 2. Parallel vs serial engine startup.
    println!("\n[A2] engine startup mode (471 MB):");
    println!("{:>8} {:>16} {:>16}", "nodes", "parallel (s)", "serial (s)");
    for n in [1usize, 4, 16] {
        let mut par = *cal;
        par.scheduler.parallel_startup = true;
        let mut ser = *cal;
        ser.scheduler.parallel_startup = false;
        println!(
            "{:>8} {:>16.0} {:>16.0}",
            n,
            ipa_simgrid::simulate_session(471.0, n, &par).engines_ready_s,
            ipa_simgrid::simulate_session(471.0, n, &ser).engines_ready_s
        );
    }

    // 3. Source-NIC aggregate cap: why move-parts stops improving with N.
    println!("\n[A3] move-parts vs staging-source bandwidth (471 MB, N sweep):");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "disk MB/s", "N=1", "N=4", "N=16"
    );
    for disk in [5.0, 10.24, 40.0, 200.0] {
        let mut c = *cal;
        c.staging_disk_mbps = disk;
        let t = |n| ipa_simgrid::simulate_session(471.0, n, &c).move_parts_s;
        println!(
            "{:>12.1} {:>10.0} {:>10.0} {:>10.0}",
            disk,
            t(1),
            t(4),
            t(16)
        );
    }

    // 4. Publish interval vs first-feedback latency (live, real engines).
    println!("\n[A4] publish interval vs first feedback (live, 100k events, 4 engines):");
    println!(
        "{:>16} {:>18} {:>12}",
        "publish_every", "first feedback", "polls"
    );
    for every in [100usize, 1_000, 10_000, 100_000] {
        let rig = LiveRig::new(100_000, every);
        let mut s = rig.session_with(4, LiveRig::higgs_script());
        let report = ipa_client::monitor_run(
            &mut s,
            std::time::Duration::from_micros(200),
            std::time::Duration::from_secs(120),
            |_, _| {},
        )
        .expect("monitored run");
        println!(
            "{:>16} {:>18} {:>12}",
            every,
            format!("{:?}", report.first_feedback.unwrap_or_default()),
            report.polls
        );
        s.close();
    }

    // 5. Merge fan-in: total pairwise merges flat vs hierarchical (§2.5).
    println!("\n[A5] merge plane: pairwise tree merges per client poll, 64 parts:");
    use ipa_core::{AidaManager, PartPayload, PartUpdate};
    let mk_manager = || {
        let mut m = AidaManager::new();
        for p in 0..64u64 {
            let mut h = ipa_aida::Histogram1D::new("m", 100, 0.0, 240.0);
            h.fill1((p % 50) as f64);
            let mut tree = ipa_aida::Tree::new();
            tree.put("/m", h).unwrap();
            m.publish(
                p,
                PartUpdate {
                    engine: p as usize,
                    epoch: 0,
                    seq: 0,
                    processed: 1,
                    total: 1,
                    payload: PartPayload::Checkpoint(tree),
                    done: true,
                },
            );
        }
        m
    };
    let mut flat = mk_manager();
    flat.merged().unwrap();
    println!("{:>24} {:>10}", "flat", flat.merges_performed());
    for fan in [2usize, 4, 8, 16] {
        let mut m = mk_manager();
        m.merged_hierarchical(fan).unwrap();
        println!(
            "{:>24} {:>10}",
            format!("hierarchical fan-in {fan}"),
            m.merges_performed()
        );
    }
    // The incremental snapshot plane: the first poll pays the two-level
    // merge, repeat polls with nothing new perform zero merges.
    let mut m = mk_manager();
    m.snapshot().unwrap();
    let first = m.merges_performed();
    m.snapshot().unwrap();
    m.snapshot().unwrap();
    println!(
        "{:>24} {:>10}   (then {} merges across 2 repeat polls, {} cache hits)",
        "cached snapshot",
        first,
        m.merges_performed() - first,
        m.merge_cache_hits()
    );
    println!(
        "(identical merged output — the win is that each sub-merger's work can\n\
         run on its own node, bounding the top-level manager's fan-in, and the\n\
         cached snapshot makes an unchanged client poll free)"
    );

    // 6. Staging plane: split cache × read/transfer overlap — Table 2's
    //    "Move Parts" phase at the plane level, plus the re-select cost
    //    the cache removes from the interactive loop.
    println!("\n[A6] staging plane: split cache × overlap, 30k events into 16 parts:");
    {
        use ipa_core::{DatasetPlane, SitePlane, SplitSpec, StagerConfig};
        let locator = || {
            let store = ipa_core::DatasetStore::new();
            store
                .put(ipa_dataset::generate_dataset(
                    "abl-ds",
                    "staging-ablation events",
                    &ipa_dataset::GeneratorConfig::Event(ipa_dataset::EventGeneratorConfig {
                        events: 30_000,
                        ..Default::default()
                    }),
                ))
                .unwrap();
            ipa_core::LocatorService::new(store, "ablation-site")
        };
        let spec = SplitSpec {
            micro_parts: false,
            parts: 16,
            byte_balanced: true,
        };
        let id = ipa_dataset::DatasetId::new("abl-ds");
        println!(
            "{:>7} {:>9} {:>13} {:>13} {:>12} {:>8}",
            "cache", "overlap", "stage (ms)", "restage (ms)", "sim (s)", "hidden"
        );
        for (cache, overlap) in [(false, false), (false, true), (true, false), (true, true)] {
            let config = ipa_core::IpaConfig {
                split_cache: cache,
                stage_overlap: overlap,
                stage_chunk_bytes: 64 << 10,
                ..Default::default()
            };
            let mut plane = SitePlane::new(locator(), &config)
                .with_stager_config(StagerConfig::from_config(&config));
            plane.stage(&id, &spec).unwrap();
            let first = plane.stats();
            let t0 = std::time::Instant::now();
            plane.stage(&id, &spec).unwrap();
            let restage_ms = t0.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:>7} {:>9} {:>13.2} {:>13.3} {:>12.1} {:>7.0}%",
                if cache { "on" } else { "off" },
                if overlap { "on" } else { "off" },
                first.split_ms + first.deliver_ms,
                restage_ms,
                first.sim_pipelined_s,
                first.overlap_ratio * 100.0,
            );
        }
        println!(
            "(a cached restage is O(parts) Arc clones — re-selecting a dataset in\n\
             the interactive loop skips Table 2's split + move-parts entirely)"
        );
    }
}

/// Flatten every numeric leaf of a JSON document into `path -> value`
/// pairs (objects dotted, arrays indexed). A tiny hand-rolled scanner:
/// the perf diff only ever reads documents this command itself wrote,
/// and staying dependency-free keeps it usable in stripped-down builds.
fn numeric_leaves(json: &str) -> Vec<(String, f64)> {
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }
    fn string(b: &[u8], i: &mut usize) -> String {
        *i += 1; // opening quote
        let mut s = String::new();
        while *i < b.len() && b[*i] != b'"' {
            if b[*i] == b'\\' {
                *i += 1;
            }
            if *i < b.len() {
                s.push(b[*i] as char);
                *i += 1;
            }
        }
        *i += 1; // closing quote
        s
    }
    fn value(b: &[u8], i: &mut usize, path: &mut Vec<String>, out: &mut Vec<(String, f64)>) {
        skip_ws(b, i);
        if *i >= b.len() {
            return;
        }
        match b[*i] {
            b'{' => {
                *i += 1;
                loop {
                    skip_ws(b, i);
                    if *i >= b.len() {
                        break;
                    }
                    if b[*i] == b'}' {
                        *i += 1;
                        break;
                    }
                    if b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    let key = string(b, i);
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b':' {
                        *i += 1;
                    }
                    path.push(key);
                    value(b, i, path, out);
                    path.pop();
                }
            }
            b'[' => {
                *i += 1;
                let mut idx = 0usize;
                loop {
                    skip_ws(b, i);
                    if *i >= b.len() {
                        break;
                    }
                    if b[*i] == b']' {
                        *i += 1;
                        break;
                    }
                    if b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    path.push(idx.to_string());
                    value(b, i, path, out);
                    path.pop();
                    idx += 1;
                }
            }
            b'"' => {
                let _ = string(b, i);
            }
            b't' | b'f' | b'n' => {
                while *i < b.len() && b[*i].is_ascii_alphabetic() {
                    *i += 1;
                }
            }
            _ => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                if let Ok(v) = std::str::from_utf8(&b[start..*i])
                    .unwrap_or("")
                    .parse::<f64>()
                {
                    out.push((path.join("."), v));
                }
            }
        }
    }
    let b = json.as_bytes();
    let mut i = 0usize;
    let (mut path, mut out) = (Vec::new(), Vec::new());
    value(b, &mut i, &mut path, &mut out);
    out
}

/// Metric-by-metric comparison of the fresh snapshot against the
/// previously committed one (positive change = the number went up;
/// whether that is good depends on the metric — appends and RTTs want
/// down, records/s wants up).
fn print_perf_diff(previous: &str, current: &str) {
    let old: std::collections::HashMap<String, f64> =
        numeric_leaves(previous).into_iter().collect();
    let fresh = numeric_leaves(current);
    hline();
    println!("PERF DIFF — this run vs the committed BENCH_results.json");
    hline();
    println!(
        "{:<58} {:>13} {:>13} {:>8}",
        "metric", "previous", "current", "change"
    );
    for (path, now) in &fresh {
        match old.get(path) {
            Some(was) if *was != 0.0 => println!(
                "{:<58} {:>13.3} {:>13.3} {:>+7.1}%",
                path,
                was,
                now,
                (now - was) / was.abs() * 100.0
            ),
            Some(was) => println!("{:<58} {:>13.3} {:>13.3} {:>8}", path, was, now, "-"),
            None => println!("{:<58} {:>13} {:>13.3} {:>8}", path, "(new)", now, "-"),
        }
    }
    for (path, was) in numeric_leaves(previous) {
        if !fresh.iter().any(|(p, _)| p == &path) {
            println!("{:<58} {:>13.3} {:>13} {:>8}", path, was, "(gone)", "-");
        }
    }
}

/// Machine-readable perf snapshot → `BENCH_results.json` (cwd): journal
/// append cost per durability mode, decode + replay throughput (what a
/// manager restart pays), the script-fusion ladder, and a small live
/// end-to-end run as a throughput yardstick. When a previous snapshot is
/// already committed in the working directory, prints a metric-by-metric
/// diff against it after writing the new one. CI archives the file per
/// commit.
fn perf_cmd() {
    use ipa_core::{
        decode_events, replay, AnalysisCode, JournalBackend, JournalEvent, PartPayload, PartUpdate,
        SessionJournal,
    };
    use std::time::Instant;

    hline();
    println!("PERF — machine-readable snapshot -> BENCH_results.json");
    hline();

    // A realistic checkpoint payload: the higgs-search tree over a small
    // event sample, the shape engines publish mid-run.
    let ds = ipa_dataset::generate_dataset(
        "perf-journal",
        "perf snapshot events",
        &ipa_dataset::GeneratorConfig::Event(ipa_dataset::EventGeneratorConfig {
            events: 500,
            ..Default::default()
        }),
    );
    let mut host = ipa_script::AidaHost::new();
    ipa_core::run_analyzer_serial(
        &mut ipa_core::HiggsSearchAnalyzer::default(),
        &ds.records,
        &mut host,
    )
    .unwrap();
    let tree = host.tree;

    let make_event = |i: usize| JournalEvent::ResultUpdate {
        part: (i % 16) as u64,
        update: PartUpdate {
            engine: i % 4,
            epoch: 0,
            seq: 0,
            processed: 100,
            total: 100,
            payload: PartPayload::Checkpoint(tree.clone()),
            done: i % 16 == 15,
        },
    };
    const APPENDS: usize = 2_000;
    const FSYNC_APPENDS: usize = 64;
    let mut events: Vec<JournalEvent> = vec![
        JournalEvent::SessionCreated {
            session: 1,
            subject: "/CN=perf".into(),
            engines: 4,
        },
        JournalEvent::DatasetSelected {
            id: "perf-journal".into(),
        },
        JournalEvent::CodeLoaded {
            code: AnalysisCode::Native("higgs-search".into()),
        },
        JournalEvent::RunStarted,
    ];
    events.extend((0..APPENDS).map(make_event));
    events.push(JournalEvent::ResultVersion { version: 1 });

    // Append cost per durability mode.
    let t0 = Instant::now();
    let mut mem = SessionJournal::new(JournalBackend::memory(), 0);
    for ev in &events {
        mem.append(ev);
    }
    let append_memory_us = t0.elapsed().as_secs_f64() * 1e6 / events.len() as f64;

    let dir = std::env::temp_dir().join(format!("ipa-reproduce-perf-{}", std::process::id()));
    let buffered_path = dir.join("buffered.wal");
    let t0 = Instant::now();
    let mut buf = SessionJournal::new(JournalBackend::file(&buffered_path, false), 0);
    for ev in &events {
        buf.append(ev);
    }
    let append_buffered_us = t0.elapsed().as_secs_f64() * 1e6 / events.len() as f64;

    let fsync_path = dir.join("fsync.wal");
    let t0 = Instant::now();
    let mut fs = SessionJournal::new(JournalBackend::file(&fsync_path, true), 0);
    for ev in events.iter().take(FSYNC_APPENDS) {
        fs.append(ev);
    }
    let append_fsync_us = t0.elapsed().as_secs_f64() * 1e6 / FSYNC_APPENDS as f64;
    assert_eq!(
        mem.append_errors() + buf.append_errors() + fs.append_errors(),
        0
    );

    // Recovery cost: decode the frames, then fold them back into a
    // session (the restart path's actual work).
    let bytes = mem.handle().unwrap().lock().clone();
    let journal_bytes = bytes.len();
    let t0 = Instant::now();
    let decoded = decode_events(&bytes);
    let decode_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(decoded.len(), events.len());
    let t0 = Instant::now();
    let rec = replay(&events, 8, 1);
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replay_events_per_s = events.len() as f64 / (replay_ms / 1e3);
    assert_eq!(rec.session, 1);
    let _ = std::fs::remove_dir_all(&dir);

    // Live yardstick: a short end-to-end run with real engines.
    let live_events = 20_000u64;
    let rig = LiveRig::new(live_events, 2_000);
    let live_wall_s = rig.run_code_to_completion(2, AnalysisCode::Native("higgs-search".into()));
    let live_records_per_s = live_events as f64 / live_wall_s;

    // Data-plane layouts: end-to-end engine throughput of the row oracle
    // vs the columnar plane on the native Higgs workload. The per-record
    // acceptance ratio lives in the `columnar` criterion bench; this
    // records the session-level number (staging + transcode included).
    let layout_events = 50_000u64;
    let layout_rig = |layout| {
        LiveRig::with_config(
            layout_events,
            ipa_core::IpaConfig {
                publish_every: 5_000,
                data_layout: layout,
                ..Default::default()
            },
        )
    };
    let row_wall_s = layout_rig(ipa_dataset::DataLayout::Row)
        .run_code_to_completion(2, AnalysisCode::Native("higgs-search".into()));
    let col_wall_s = layout_rig(ipa_dataset::DataLayout::Columnar)
        .run_code_to_completion(2, AnalysisCode::Native("higgs-search".into()));
    let row_records_per_s = layout_events as f64 / row_wall_s;
    let col_records_per_s = layout_events as f64 / col_wall_s;

    // Script fusion ladder: the canonical guarded-fill analyze body over
    // one columnar part, through the engine's `run_fused` dispatch — the
    // tree-walk as the semantic floor, then the VM at each fusion level.
    // Gate first: every rung must produce a bit-identical result tree.
    let fusion_src = r#"
        fn init() {
            h1("/f/bb_mass", 60, 0.0, 240.0);
            h1("/f/visible_energy", 60, 0.0, 600.0);
        }
        fn process(e) {
            let m = e.bb_mass;
            if m != null { fill("/f/bb_mass", m); }
            fill("/f/visible_energy", e.visible_energy);
        }
    "#;
    let fusion_events = 20_000u64;
    let frecords = std::sync::Arc::new(
        ipa_dataset::EventGeneratorConfig {
            events: fusion_events,
            signal_fraction: 0.4,
            ..Default::default()
        }
        .generate(),
    );
    let fcolumns = std::sync::Arc::new(
        ipa_dataset::ColumnBatch::from_records(&frecords).expect("homogeneous event batch"),
    );
    let fprogram = ipa_script::compile(fusion_src).unwrap();
    let fusion_mode = |backend: ipa_core::ScriptBackend, fusion: ipa_core::ScriptFusion| {
        let run_once = || {
            let mut engine = ipa_script::engine_for(&fprogram, backend, fusion).unwrap();
            let mut kernel = (backend == ipa_core::ScriptBackend::Vm
                && fusion == ipa_core::ScriptFusion::Kernel)
                .then(|| ipa_script::BatchKernel::compile(&fprogram))
                .flatten();
            let mut host = ipa_script::AidaHost::new();
            engine.run_init(&mut host).unwrap();
            let (done, err) = ipa_script::run_fused(
                engine.as_mut(),
                kernel.as_mut(),
                &frecords,
                Some(&fcolumns),
                0..frecords.len(),
                &mut host,
            );
            assert_eq!(done as u64, fusion_events);
            assert!(err.is_none(), "{err:?}");
            engine.run_end(&mut host).unwrap();
            host
        };
        let tree = format!("{:?}", run_once().tree); // warmup doubles as the gate run
        let t0 = Instant::now();
        run_once();
        (fusion_events as f64 / t0.elapsed().as_secs_f64(), tree)
    };
    let (interp_rps, interp_tree) =
        fusion_mode(ipa_core::ScriptBackend::Interp, ipa_core::ScriptFusion::Off);
    let (vm_off_rps, vm_off_tree) =
        fusion_mode(ipa_core::ScriptBackend::Vm, ipa_core::ScriptFusion::Off);
    let (vm_super_rps, vm_super_tree) =
        fusion_mode(ipa_core::ScriptBackend::Vm, ipa_core::ScriptFusion::Super);
    let (vm_kernel_rps, vm_kernel_tree) =
        fusion_mode(ipa_core::ScriptBackend::Vm, ipa_core::ScriptFusion::Kernel);
    assert_eq!(interp_tree, vm_off_tree, "vm/off diverges from tree-walk");
    assert_eq!(interp_tree, vm_super_tree, "vm/super diverges from tree-walk");
    assert_eq!(interp_tree, vm_kernel_tree, "vm/kernel diverges from tree-walk");
    let kernel_speedup = vm_kernel_rps / vm_off_rps;
    println!(
        "script fusion: interp {interp_rps:.0} rec/s, vm/off {vm_off_rps:.0}, \
         vm/super {vm_super_rps:.0}, vm/kernel {vm_kernel_rps:.0} ({kernel_speedup:.1}x vm/off)"
    );

    // Node sweep: records/s vs engine count under the default layout,
    // on the compute-bound interpreted script (Table 2's analysis shape).
    let sweep_events = 40_000u64;
    let sweep_rig = LiveRig::new(sweep_events, 5_000);
    let mut sweep_json = String::new();
    for (i, &n) in [1usize, 2, 4, 8].iter().enumerate() {
        let wall = sweep_rig.run_code_to_completion(n, LiveRig::higgs_script());
        if i > 0 {
            sweep_json.push_str(", ");
        }
        sweep_json.push_str(&format!("\"{}\": {:.0}", n, sweep_events as f64 / wall));
    }

    // Multi-tenant sweep: aggregate records/s as tenants stack onto one
    // manager with and without the shared engine pool, then idle-session
    // poll RTT through the reactor gateway as connected clients pile up.
    // The acceptance shape: aggregate throughput scales with the pool,
    // idle p99 stays flat under client fan-in.
    let mt_events = 20_000u64;
    let mt_rig = |pool: bool| {
        LiveRig::with_config(
            mt_events,
            ipa_core::IpaConfig {
                engine_pool: pool,
                pool_size: if pool { 8 } else { 0 },
                pool_lease_timeout_ms: 30_000,
                scheduler: ipa_core::SchedulerPolicy::WorkStealing,
                publish_every: 2_000,
                ..Default::default()
            },
        )
    };
    let mut mt_json = String::new();
    for (i, pool) in [false, true].into_iter().enumerate() {
        let rig = mt_rig(pool);
        if i > 0 {
            mt_json.push_str(", ");
        }
        mt_json.push_str(&format!(
            "\"pool_{}\": {{ ",
            if pool { "on" } else { "off" }
        ));
        for (j, tenants) in [1usize, 2, 4].into_iter().enumerate() {
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..tenants {
                    scope.spawn(|| {
                        rig.run_code_to_completion(2, AnalysisCode::Native("higgs-search".into()));
                    });
                }
            });
            let agg = (mt_events * tenants as u64) as f64 / t0.elapsed().as_secs_f64();
            if j > 0 {
                mt_json.push_str(", ");
            }
            mt_json.push_str(&format!("\"{tenants}\": {agg:.0}"));
        }
        mt_json.push_str(" }");
    }

    // Idle-session poll RTT vs parked connections on the same gateway.
    let rtt_rig = mt_rig(true);
    let mut gw = ipa_core::WsGateway::serve(rtt_rig.manager.clone(), ("127.0.0.1", 0)).unwrap();
    let sec = ipa_simgrid::SecurityDomain::new("bench-site", 1)
        .with_policy(ipa_simgrid::VoPolicy::new("ilc", 64));
    let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
    let mut client = ipa_core::WsClient::connect(gw.addr()).unwrap();
    let session = match client
        .call_ok(&ipa_core::WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 2,
        })
        .unwrap()
    {
        ipa_core::WsResponse::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    let mut rtt_json = String::new();
    let mut parked: Vec<ipa_core::WsClient> = Vec::new();
    for (i, others) in [0usize, 64, 256].into_iter().enumerate() {
        while parked.len() < others {
            parked.push(ipa_core::WsClient::connect(gw.addr()).unwrap());
        }
        let mut us: Vec<f64> = (0..300)
            .map(|_| {
                let t0 = Instant::now();
                client.call(&ipa_core::WsRequest::Poll { session }).unwrap();
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = us[us.len() / 2];
        let p99 = us[us.len() * 99 / 100];
        if i > 0 {
            rtt_json.push_str(", ");
        }
        rtt_json.push_str(&format!(
            "\"{others}\": {{ \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1} }}"
        ));
    }
    client
        .call_ok(&ipa_core::WsRequest::CloseSession { session })
        .unwrap();
    drop(parked);
    gw.shutdown();

    let json = format!(
        "{{\n\
         \x20 \"generated_by\": \"reproduce perf\",\n\
         \x20 \"journal\": {{\n\
         \x20   \"events\": {},\n\
         \x20   \"bytes\": {journal_bytes},\n\
         \x20   \"append_memory_us_per_event\": {append_memory_us:.3},\n\
         \x20   \"append_file_buffered_us_per_event\": {append_buffered_us:.3},\n\
         \x20   \"append_file_fsync_us_per_event\": {append_fsync_us:.3},\n\
         \x20   \"decode_ms\": {decode_ms:.3},\n\
         \x20   \"replay_ms\": {replay_ms:.3},\n\
         \x20   \"replay_events_per_s\": {replay_events_per_s:.0}\n\
         \x20 }},\n\
         \x20 \"live\": {{\n\
         \x20   \"engines\": 2,\n\
         \x20   \"events\": {live_events},\n\
         \x20   \"wall_s\": {live_wall_s:.4},\n\
         \x20   \"records_per_s\": {live_records_per_s:.0}\n\
         \x20 }},\n\
         \x20 \"engine_throughput\": {{\n\
         \x20   \"engines\": 2,\n\
         \x20   \"events\": {layout_events},\n\
         \x20   \"row_records_per_s\": {row_records_per_s:.0},\n\
         \x20   \"columnar_records_per_s\": {col_records_per_s:.0},\n\
         \x20   \"columnar_speedup\": {:.2}\n\
         \x20 }},\n\
         \x20 \"script_fusion\": {{\n\
         \x20   \"events\": {fusion_events},\n\
         \x20   \"records_per_s\": {{\n\
         \x20     \"interp\": {interp_rps:.0},\n\
         \x20     \"vm_off\": {vm_off_rps:.0},\n\
         \x20     \"vm_super\": {vm_super_rps:.0},\n\
         \x20     \"vm_kernel\": {vm_kernel_rps:.0}\n\
         \x20   }},\n\
         \x20   \"kernel_speedup_vs_vm_off\": {kernel_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"node_sweep\": {{\n\
         \x20   \"events\": {sweep_events},\n\
         \x20   \"code\": \"higgs_script\",\n\
         \x20   \"records_per_s\": {{ {sweep_json} }}\n\
         \x20 }},\n\
         \x20 \"multitenant\": {{\n\
         \x20   \"events_per_tenant\": {mt_events},\n\
         \x20   \"engines_per_tenant\": 2,\n\
         \x20   \"pool_size\": 8,\n\
         \x20   \"aggregate_records_per_s\": {{ {mt_json} }},\n\
         \x20   \"idle_poll_rtt_by_extra_clients\": {{ {rtt_json} }}\n\
         \x20 }}\n\
         }}\n",
        events.len(),
        col_records_per_s / row_records_per_s,
    );
    let previous = std::fs::read_to_string("BENCH_results.json").ok();
    std::fs::write("BENCH_results.json", &json).unwrap();
    println!("{json}");
    println!("wrote BENCH_results.json");
    if let Some(previous) = previous {
        print_perf_diff(&previous, &json);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cal = PaperCalibration::paper2006();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    if want("table1") {
        table1_cmd(&cal);
    }
    if want("table2") {
        table2_cmd(&cal);
    }
    if want("figure5") {
        figure5_cmd(&cal);
    }
    if want("equations") {
        equations_cmd(&cal);
    }
    if want("live") {
        live_cmd();
    }
    if want("ablations") {
        ablations_cmd(&cal);
    }
    if want("perf") {
        perf_cmd();
    }
    hline();
}

//! `ipa-bench` — experiment harness shared by the `reproduce` binary and
//! the Criterion benches.
//!
//! Every table and figure of the paper's evaluation (Section 4) has a
//! generator here; `cargo run -p ipa-bench --bin reproduce -- all` prints
//! the same rows/series the paper reports, side by side with the paper's
//! numbers. EXPERIMENTS.md archives the output.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use ipa_core::{AnalysisCode, IpaConfig, ManagerNode, Session};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_model::{
    crossover_mb, fit_grid_equation, fit_local_equation, generate_surface, GridEquation,
    LocalEquation, SurfacePoint, PAPER_GRID, PAPER_LOCAL,
};
use ipa_simgrid::{
    simulate_local_analysis, simulate_session, PaperCalibration, SecurityDomain, StageBreakdown,
    VoPolicy,
};

/// The paper's dataset size (MB).
pub const PAPER_MB: f64 = 471.0;
/// The paper's node sweep.
pub const PAPER_NODES: [usize; 5] = [1, 2, 4, 8, 16];
/// Table 2's published rows: (nodes, move_whole, split, move_parts, analysis).
pub const PAPER_TABLE2: [(usize, f64, f64, f64, f64); 5] = [
    (1, 63.0, 120.0, 105.0, 330.0),
    (2, 63.0, 120.0, 77.0, 287.0),
    (4, 63.0, 115.0, 70.0, 190.0),
    (8, 63.0, 117.0, 65.0, 148.0),
    (16, 63.0, 124.0, 50.0, 78.0),
];

/// Simulated Table 2 rows under a calibration.
pub fn table2_rows(cal: &PaperCalibration) -> Vec<StageBreakdown> {
    PAPER_NODES
        .iter()
        .map(|&n| simulate_session(PAPER_MB, n, cal))
        .collect()
}

/// Table 1: the (local, grid-16) comparison at 471 MB.
pub fn table1(cal: &PaperCalibration) -> (ipa_simgrid::LocalBreakdown, StageBreakdown) {
    (
        simulate_local_analysis(PAPER_MB, cal),
        simulate_session(PAPER_MB, 16, cal),
    )
}

/// Sweep the simulator over (X, N) and fit the grid equation — the paper's
/// own fitting step applied to our substrate.
pub fn fitted_equations(cal: &PaperCalibration) -> (LocalEquation, GridEquation) {
    let xs = [1.0, 10.0, 50.0, 100.0, 250.0, 471.0, 750.0, 1000.0];
    let local_samples: Vec<(f64, f64, f64)> = xs
        .iter()
        .map(|&x| {
            let b = simulate_local_analysis(x, cal);
            (x, b.fetch_s, b.analysis_s)
        })
        .collect();
    let mut grid_samples = Vec::new();
    for &x in &xs {
        for &n in &[1usize, 2, 4, 8, 16, 32] {
            let b = simulate_session(x, n, cal);
            grid_samples.push((x, n, b.sequential_total_s));
        }
    }
    (
        fit_local_equation(&local_samples).expect("local fit"),
        fit_grid_equation(&grid_samples).expect("grid fit"),
    )
}

/// Figure-5 surface points from the paper's equations.
pub fn figure5_paper() -> Vec<SurfacePoint> {
    let xs: Vec<f64> = (0..=10).map(|i| 10f64.powf(i as f64 * 0.3)).collect();
    let ns = [1usize, 2, 4, 8, 16, 32];
    generate_surface(&PAPER_LOCAL, &PAPER_GRID, &xs, &ns)
}

/// Figure-5 surface points from the simulator.
pub fn figure5_simulated(cal: &PaperCalibration) -> Vec<SurfacePoint> {
    let xs: Vec<f64> = (0..=10).map(|i| 10f64.powf(i as f64 * 0.3)).collect();
    let ns = [1usize, 2, 4, 8, 16, 32];
    let mut out = Vec::new();
    for &x in &xs {
        let local = simulate_local_analysis(x, cal).total_s;
        for &n in &ns {
            out.push(SurfacePoint {
                x_mb: x,
                n,
                t_local_s: local,
                t_grid_s: simulate_session(x, n, cal).total_s,
            });
        }
    }
    out
}

/// Crossover dataset sizes (paper equations vs simulated) for a node count.
pub fn crossovers(cal: &PaperCalibration, n: usize) -> (Option<f64>, Option<f64>) {
    let paper = crossover_mb(&PAPER_LOCAL, &PAPER_GRID, n, 1e5);
    // Bisect the simulator the same way.
    let sim = {
        let diff =
            |x: f64| simulate_session(x, n, cal).total_s - simulate_local_analysis(x, cal).total_s;
        if diff(1e5) >= 0.0 {
            None
        } else if diff(0.0) <= 0.0 {
            Some(0.0)
        } else {
            let (mut lo, mut hi) = (0.0, 1e5);
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                if diff(mid) >= 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            Some(0.5 * (lo + hi))
        }
    };
    (paper, sim)
}

/// A ready-to-run live rig: manager + published event dataset + session.
/// Used by the real-compute benches and the `live` reproduction mode.
pub struct LiveRig {
    /// The manager node (keep alive for the session).
    pub manager: Arc<ManagerNode>,
    /// Dataset id published on the rig.
    pub dataset: DatasetId,
}

impl LiveRig {
    /// Build a rig with `events` generated collider events.
    pub fn new(events: u64, publish_every: usize) -> Self {
        LiveRig::with_config(
            events,
            IpaConfig {
                publish_every,
                ..Default::default()
            },
        )
    }

    /// Build a rig under an explicit config (layout/scheduler ablations).
    pub fn with_config(events: u64, config: IpaConfig) -> Self {
        let sec = SecurityDomain::new("bench-site", 1).with_policy(VoPolicy::new("ilc", 64));
        let manager = Arc::new(ManagerNode::new("bench-site", sec.clone(), config));
        let ds = ipa_dataset::generate_dataset(
            "bench-events",
            "Bench events",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events,
                ..Default::default()
            }),
        );
        manager
            .publish_dataset("/bench", ds, ipa_catalog::Metadata::new())
            .unwrap();
        let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
        // Stash the proxy by re-issuing at connect time instead: sessions
        // need it, so keep the domain.
        let rig = LiveRig {
            manager,
            dataset: DatasetId::new("bench-events"),
        };
        // Smoke-check the proxy path once.
        rig.manager.create_session(&proxy, 0.0, 1).unwrap().close();
        LiveRig {
            manager: rig.manager,
            dataset: rig.dataset,
        }
    }

    /// Open a session with `engines` engines, staged and loaded with the
    /// given analysis code.
    pub fn session_with(&self, engines: usize, code: AnalysisCode) -> Session {
        let sec = SecurityDomain::new("bench-site", 1).with_policy(VoPolicy::new("ilc", 64));
        let proxy = sec.issue_proxy("/CN=bench", "ilc", 0.0, 1e6);
        let mut s = self.manager.create_session(&proxy, 0.0, engines).unwrap();
        s.select_dataset(&self.dataset).unwrap();
        s.load_code(code).unwrap();
        s
    }

    /// Open a session loaded with the fast native Higgs analyzer.
    pub fn session(&self, engines: usize) -> Session {
        self.session_with(engines, AnalysisCode::Native("higgs-search".into()))
    }

    /// Run a staged session (given code) to completion; wall-clock seconds.
    pub fn run_code_to_completion(&self, engines: usize, code: AnalysisCode) -> f64 {
        let mut s = self.session_with(engines, code);
        let t0 = std::time::Instant::now();
        s.run().unwrap();
        let st = s.wait_finished(Duration::from_secs(300)).unwrap();
        assert_eq!(st.parts_done, st.parts_total, "run did not finish");
        let dt = t0.elapsed().as_secs_f64();
        s.close();
        dt
    }

    /// Run with the native analyzer (overhead-dominated at small sizes).
    pub fn run_to_completion(&self, engines: usize) -> f64 {
        self.run_code_to_completion(engines, AnalysisCode::Native("higgs-search".into()))
    }

    /// The interpreted Higgs script — the compute-bound code path used for
    /// the live scaling check (interpretation is ~an order of magnitude
    /// slower per record, like the paper's 866 MHz JVMs).
    pub fn higgs_script() -> AnalysisCode {
        AnalysisCode::Script(
            r#"
            fn init() {
                h1("/higgs/bb_mass", 60, 0.0, 240.0);
                h1("/higgs/n_btags", 8, 0.0, 8.0);
            }
            fn process(e) {
                fill("/higgs/n_btags", e.n_btags);
                let m = e.bb_mass;
                if m != null { fill("/higgs/bb_mass", m); }
            }
            "#
            .to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_paper_shape() {
        let rows = table2_rows(&PaperCalibration::paper2006());
        assert_eq!(rows.len(), 5);
        // Analysis strictly decreasing, move-parts strictly decreasing,
        // move-whole and split flat.
        for w in rows.windows(2) {
            assert!(w[1].analysis_s < w[0].analysis_s);
            assert!(w[1].move_parts_s < w[0].move_parts_s);
            assert!((w[1].move_whole_s - w[0].move_whole_s).abs() < 1e-9);
            assert!((w[1].split_s - w[0].split_s).abs() < 1e-9);
        }
    }

    #[test]
    fn fit_recovers_simulator_coefficients_reasonably() {
        let (local, grid) = fitted_equations(&PaperCalibration::paper2006());
        // Local: WAN ~6.2 s/MB (plus latency absorbed), analysis 5.3 s/MB.
        assert!((local.move_s_per_mb - 6.2).abs() < 0.2, "{local:?}");
        assert!((local.analyze_s_per_mb - 5.3).abs() < 0.01);
        // Grid: X/N analysis coefficient near 5.3, constant near the
        // session fixed overhead, a near the staging slope.
        assert!((grid.b_s_per_mb - 5.3).abs() < 0.4, "{grid:?}");
        assert!(grid.a_s_per_mb > 0.3 && grid.a_s_per_mb < 0.6, "{grid:?}");
        assert!(grid.c_s > 5.0 && grid.c_s < 90.0, "{grid:?}");
    }

    #[test]
    fn crossover_simulated_matches_order_of_magnitude() {
        let (paper, sim) = crossovers(&PaperCalibration::paper2006(), 16);
        let paper = paper.unwrap();
        let sim = sim.unwrap();
        assert!((1.0..30.0).contains(&paper), "paper {paper}");
        assert!((1.0..30.0).contains(&sim), "sim {sim}");
    }

    #[test]
    fn live_rig_runs() {
        let rig = LiveRig::new(600, 100);
        let t = rig.run_to_completion(2);
        assert!(t > 0.0);
    }
}

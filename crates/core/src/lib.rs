//! `ipa-core` — the Interactive Parallel Analysis framework.
//!
//! This crate is the paper's contribution proper: the three-layer system
//! that turns a (simulated) grid site into an interactive parallel
//! dataset-analysis facility.
//!
//! ```text
//!  client layer     ipa-client / your code
//!        │  create session, choose dataset, load code, poll results
//!  service layer    ManagerNode ─ control/session, catalog, locator,
//!        │          splitter, code loader, worker registry, AIDA manager
//!  grid layer       analysis engines (one OS thread each), simulated
//!                   GRAM/GridFTP/X.509 via ipa-simgrid
//! ```
//!
//! The user's four steps (paper Figure 1) map to:
//!
//! 1. **Securely connect, create session** — [`ManagerNode::create_session`]
//!    authenticates a [`GridProxy`](ipa_simgrid::GridProxy) and starts the
//!    session's engines (VO policy caps the count).
//! 2. **Select dataset** — [`Session::select_dataset`] resolves the id
//!    through the locator, splits it, and stages parts onto engines.
//! 3. **Initiate analysis run with custom code** —
//!    [`Session::load_code`] ships an IPAScript source (or a named native
//!    analyzer — the "compiled Java class" path) to every engine, then
//!    [`Session::run`] / [`Session::pause`] / [`Session::rewind`] /
//!    [`Session::run_events`] provide the paper's interactive controls.
//! 4. **Collect & display result** — engines publish partial AIDA trees
//!    continuously; [`Session::poll`] returns the merged tree plus
//!    progress, which the client renders live.
//!
//! Engine failures are detected at poll time and their parts are
//! transparently re-queued — back onto the same engine while its retry
//! budget ([`IpaConfig::max_part_retries`]) lasts, then onto survivors
//! (results never double count — merging is keyed by dataset part, not by
//! engine). Every control-plane reset bumps a session-wide *run epoch*
//! stamped through commands and events, so in-flight updates from a
//! superseded run are dropped instead of polluting the fresh results.
//!
//! Scheduling is pluggable ([`IpaConfig::scheduler`]): beyond the paper's
//! static one-part-per-engine split, the [`sched`] module provides
//! pull-based work-queue scheduling over micro-parts and speculative
//! straggler re-execution with first-completion-wins semantics.

#![warn(missing_docs)]

pub mod aida_manager;
pub mod analyzer;
pub mod config;
pub mod engine;
pub mod error;
pub mod gateway;
pub mod journal;
pub mod locator;
pub mod manager;
pub mod pool;
pub mod registry;
pub mod sched;
pub mod session;
pub mod staging;
pub mod store;

pub use aida_manager::{
    AidaExport, AidaManager, PartPayload, PartUpdate, PublishOutcome, ResultPlaneStats,
};
pub use analyzer::{
    builtin_registry, instantiate_code, run_analyzer_batch, run_analyzer_serial, AnalysisCode,
    Analyzer, AnalyzerFactory, DnaMotifAnalyzer, FieldHistogramAnalyzer, HiggsSearchAnalyzer,
    NativeRegistry, ScriptAnalyzer, TradeVwapAnalyzer,
};
pub use config::IpaConfig;
pub use engine::{EngineCommand, EngineEvent, EngineHandle, EngineId, Epoch, PartId};
pub use error::CoreError;
pub use gateway::{WsClient, WsGateway, WsRequest, WsResponse};
pub use ipa_script::{ScriptBackend, ScriptFusion};
pub use journal::{
    decode_events, replay, session_journal_path, JournalBackend, JournalEvent, RecoveredState,
    SessionJournal, SessionSnapshot,
};
pub use locator::{DatasetLocation, LocatorService};
pub use manager::ManagerNode;
pub use pool::{EnginePool, PoolStats};
pub use registry::{SessionInfo, WorkerInfo, WorkerRegistry, WorkerState};
pub use sched::{SchedStats, SchedulerPolicy};
pub use session::{FailureRecord, RunState, Session, SessionStatus};
pub use staging::pipeline::{StageFaultPlan, StagerConfig};
pub use staging::{DatasetPlane, SitePlane, SplitSpec, StagedDataset, StagingStats};
pub use store::DatasetStore;

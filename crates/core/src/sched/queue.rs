//! Pull-based part queue with first-completion-wins speculation.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::engine::{EngineId, PartId};

/// Result of recording a part completion: who else was running the part
/// (and must be told to stop), and whether the winner was a speculative
/// duplicate rather than the original runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionOutcome {
    /// Engines still holding the part; their in-flight work is now moot.
    pub losers: Vec<EngineId>,
    /// True when the completing engine was a speculative re-issue (not
    /// the runner the part was originally dispatched to).
    pub winner_was_speculative: bool,
}

/// Tracks every micro-part through `pending → running → completed`.
///
/// Parts are staged FIFO; [`PartQueue::pop`] moves one to `running` under
/// the pulling engine. A part may have at most two concurrent runners —
/// the original plus one speculative duplicate — and the first `done`
/// update wins: [`PartQueue::is_complete`] lets the session drop the
/// loser's late updates, the same shape as the epoch guard but keyed by
/// part instead of generation.
#[derive(Debug, Default)]
pub struct PartQueue {
    pending: VecDeque<PartId>,
    /// Runners per in-flight part; index 0 is the original runner, a
    /// second entry (if any) is the speculative duplicate.
    running: HashMap<PartId, Vec<EngineId>>,
    completed: HashSet<PartId>,
}

impl PartQueue {
    /// Reset and stage parts `0..n` as pending, in order.
    pub fn stage(&mut self, n: usize) {
        self.pending = (0..n as PartId).collect();
        self.running.clear();
        self.completed.clear();
    }

    /// Pull the next pending part for `engine`, marking it running.
    pub fn pop(&mut self, engine: EngineId) -> Option<PartId> {
        let part = self.pending.pop_front()?;
        self.running.insert(part, vec![engine]);
        Some(part)
    }

    /// Number of parts still waiting to be pulled.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of parts recorded complete.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// The completed parts, sorted (journal snapshots).
    pub fn completed_parts(&self) -> Vec<PartId> {
        let mut v: Vec<PartId> = self.completed.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// True once `part` has a winning completion; late updates from any
    /// other runner must be dropped.
    pub fn is_complete(&self, part: PartId) -> bool {
        self.completed.contains(&part)
    }

    /// Add `engine` as a speculative second runner for an in-flight
    /// `part`. Returns false (and changes nothing) if the part is not
    /// running, already complete, already has two runners, or `engine`
    /// is already running it.
    pub fn speculate(&mut self, part: PartId, engine: EngineId) -> bool {
        if self.completed.contains(&part) {
            return false;
        }
        match self.running.get_mut(&part) {
            Some(runners) if runners.len() < 2 && !runners.contains(&engine) => {
                runners.push(engine);
                true
            }
            _ => false,
        }
    }

    /// Record that `engine` finished `part`. The part moves to
    /// `completed` and every other runner is returned as a loser.
    pub fn complete(&mut self, part: PartId, engine: EngineId) -> CompletionOutcome {
        let runners = self.running.remove(&part).unwrap_or_default();
        let winner_was_speculative = runners.first().is_some_and(|&orig| orig != engine);
        self.completed.insert(part);
        CompletionOutcome {
            losers: runners.into_iter().filter(|&e| e != engine).collect(),
            winner_was_speculative,
        }
    }

    /// Drop `engine` from `part`'s runner set (it failed or was stopped).
    /// Returns true if another engine is still running the part — in that
    /// case the part needs neither invalidation nor requeueing.
    pub fn release(&mut self, part: PartId, engine: EngineId) -> bool {
        match self.running.get_mut(&part) {
            Some(runners) => {
                runners.retain(|&e| e != engine);
                if runners.is_empty() {
                    self.running.remove(&part);
                    false
                } else {
                    true
                }
            }
            None => false,
        }
    }

    /// Re-queue a part whose only runner was lost (front of the queue so
    /// recovery happens before new work).
    pub fn requeue(&mut self, part: PartId) {
        if !self.completed.contains(&part) && !self.running.contains_key(&part) {
            self.pending.push_front(part);
        }
    }

    /// Journal recovery: mark `part` complete without it ever running in
    /// this process. The part leaves `pending` (and any phantom `running`
    /// entry) so it is never dispatched, and late updates for it are
    /// dropped by the usual [`PartQueue::is_complete`] guard.
    pub fn mark_recovered_complete(&mut self, part: PartId) {
        self.pending.retain(|&p| p != part);
        self.running.remove(&part);
        self.completed.insert(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_complete_lifecycle() {
        let mut q = PartQueue::default();
        q.stage(3);
        assert_eq!(q.pending_len(), 3);
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(1), Some(1));
        let out = q.complete(0, 0);
        assert!(out.losers.is_empty());
        assert!(!out.winner_was_speculative);
        assert!(q.is_complete(0));
        assert_eq!(q.completed_len(), 1);
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn speculation_first_completion_wins() {
        let mut q = PartQueue::default();
        q.stage(1);
        assert_eq!(q.pop(0), Some(0));
        assert!(q.speculate(0, 1));
        // Third runner and duplicate runner are refused.
        assert!(!q.speculate(0, 2));
        assert!(!q.speculate(0, 0));
        // Speculative engine finishes first: original runner loses.
        let out = q.complete(0, 1);
        assert_eq!(out.losers, vec![0]);
        assert!(out.winner_was_speculative);
        assert!(q.is_complete(0));
        // Late speculation on a completed part is refused.
        assert!(!q.speculate(0, 2));
    }

    #[test]
    fn recovered_completion_skips_dispatch() {
        let mut q = PartQueue::default();
        q.stage(3);
        q.mark_recovered_complete(1);
        assert!(q.is_complete(1));
        assert_eq!(q.pending_len(), 2);
        // Dispatch order skips the recovered part entirely.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(1), Some(2));
        assert_eq!(q.pop(2), None);
        // Requeue of a recovered-complete part is refused.
        q.requeue(1);
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn release_and_requeue_only_when_last_runner_lost() {
        let mut q = PartQueue::default();
        q.stage(2);
        q.pop(0);
        assert!(q.speculate(0, 1));
        // Engine 0 dies; engine 1 still runs part 0 → no requeue needed.
        assert!(q.release(0, 0));
        // Engine 1 dies too → part 0 is orphaned and goes back first.
        assert!(!q.release(0, 1));
        q.requeue(0);
        assert_eq!(q.pop(2), Some(0));
        // Completed parts never requeue.
        q.complete(0, 2);
        q.requeue(0);
        assert_eq!(q.pending_len(), 1);
        assert_eq!(q.pop(2), Some(1));
    }
}

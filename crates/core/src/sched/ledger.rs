//! Per-engine throughput accounting for straggler detection.

use std::time::Instant;

use crate::engine::EngineId;

/// Smoothed throughput samples per engine, fed from the progress deltas in
/// `EngineEvent::Update` stamps.
///
/// The rate is an exponentially weighted moving average
/// (`rate = 0.5·old + 0.5·sample`) so a transient hiccup does not brand an
/// engine a straggler, while a genuinely slow node converges within a few
/// publish intervals. An engine with no samples yet reports `0.0` and is
/// excluded from the median.
#[derive(Debug, Default)]
pub struct WorkerLedger {
    /// `(smoothed records/sec, last sample instant)` per engine; `None`
    /// until the first progress stamp arrives.
    samples: Vec<Option<(f64, Instant)>>,
}

impl WorkerLedger {
    /// Size the ledger for `engines` workers, clearing any history.
    pub fn reset(&mut self, engines: usize) {
        self.samples = vec![None; engines];
    }

    /// Record that `engine` processed `delta` more records, observed at
    /// `now`. The first stamp only anchors the clock; rates start flowing
    /// from the second stamp. Zero or negative intervals are skipped.
    pub fn on_progress(&mut self, engine: EngineId, delta: u64, now: Instant) {
        let Some(slot) = self.samples.get_mut(engine) else {
            return;
        };
        match slot {
            None => *slot = Some((0.0, now)),
            Some((rate, last)) => {
                let dt = now.duration_since(*last).as_secs_f64();
                if dt <= 0.0 {
                    return;
                }
                let sample = delta as f64 / dt;
                *rate = if *rate == 0.0 {
                    sample
                } else {
                    0.5 * *rate + 0.5 * sample
                };
                *last = now;
            }
        }
    }

    /// Smoothed records/sec for `engine` (`0.0` until two stamps arrive).
    pub fn rate(&self, engine: EngineId) -> f64 {
        self.samples
            .get(engine)
            .and_then(|s| s.map(|(r, _)| r))
            .unwrap_or(0.0)
    }

    /// All smoothed rates, indexed by engine (for [`super::SchedStats`]).
    pub fn rates(&self) -> Vec<f64> {
        (0..self.samples.len()).map(|e| self.rate(e)).collect()
    }

    /// Median over engines with a measured (non-zero) rate; `None` when
    /// fewer than two engines have measurements — no basis for calling
    /// anyone slow yet.
    pub fn median_rate(&self) -> Option<f64> {
        let mut rates: Vec<f64> = self.rates().into_iter().filter(|&r| r > 0.0).collect();
        if rates.len() < 2 {
            return None;
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        Some(rates[rates.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rates_need_two_stamps_and_smooth() {
        let mut l = WorkerLedger::default();
        l.reset(2);
        let t0 = Instant::now();
        l.on_progress(0, 100, t0);
        assert_eq!(l.rate(0), 0.0);
        l.on_progress(0, 100, t0 + Duration::from_secs(1));
        assert!((l.rate(0) - 100.0).abs() < 1e-9);
        // EWMA: next sample at 300/s → (100 + 300) / 2 = 200.
        l.on_progress(0, 300, t0 + Duration::from_secs(2));
        assert!((l.rate(0) - 200.0).abs() < 1e-9);
        // Zero-interval stamps are ignored, out-of-range engines too.
        l.on_progress(0, 999, t0 + Duration::from_secs(2));
        assert!((l.rate(0) - 200.0).abs() < 1e-9);
        l.on_progress(7, 999, t0);
    }

    #[test]
    fn median_requires_two_measured_engines() {
        let mut l = WorkerLedger::default();
        l.reset(3);
        let t0 = Instant::now();
        assert_eq!(l.median_rate(), None);
        l.on_progress(0, 50, t0);
        l.on_progress(0, 50, t0 + Duration::from_secs(1));
        assert_eq!(l.median_rate(), None);
        l.on_progress(2, 400, t0);
        l.on_progress(2, 400, t0 + Duration::from_secs(1));
        assert_eq!(l.median_rate(), Some(400.0));
        assert_eq!(l.rates(), vec![50.0, 0.0, 400.0]);
    }
}

//! The scheduling plane: adaptive work-queue scheduling for analysis parts.
//!
//! The paper's Splitter cuts a dataset into exactly one ~equal part per
//! engine (§3.4), which makes session wall-clock hostage to the slowest
//! node — the `5.3·k·X/N` analysis term of §4 only holds when every node
//! runs at the calibrated speed. This module replaces that static
//! assignment with a pull-based scheduler:
//!
//! * the dataset is over-partitioned into `engines × oversub` *micro-parts*
//!   ([`ipa_dataset::split_chunks`]),
//! * a [`PartQueue`] hands the next pending part to whichever engine
//!   finishes first (work stealing falls out of pulling),
//! * a [`WorkerLedger`] tracks per-engine throughput (records/sec, EWMA)
//!   so the session can flag stragglers and speculatively re-issue their
//!   current part to an idle engine — first completion wins, the loser's
//!   updates are dropped by part-dedup, composing with the PR-1 epoch
//!   rules so records stay exactly-once.
//!
//! The policy is selected per-manager via [`crate::IpaConfig::scheduler`]
//! and observable through [`SchedStats`] on every status poll.

pub mod fair;
mod ledger;
mod queue;

pub use ledger::WorkerLedger;
pub use queue::{CompletionOutcome, PartQueue};

use serde::{Deserialize, Serialize};

/// Which scheduling policy a session uses to map parts onto engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// One ~equal part per engine, assigned up front (the paper's §3.4
    /// behavior). No stealing, no speculation.
    #[default]
    Static,
    /// Over-partition into micro-parts; engines pull the next pending part
    /// when they finish one. No speculative re-execution.
    WorkQueue,
    /// [`SchedulerPolicy::WorkQueue`] plus straggler mitigation: when the
    /// queue is dry and an engine's throughput lags the median by more
    /// than `straggler_factor`, its current part is speculatively
    /// re-issued to an idle engine and the first completion wins.
    WorkStealing,
}

impl SchedulerPolicy {
    /// Parse the `IPA_SCHEDULER` environment variable (used by the CI
    /// matrix to run the whole suite under each policy). Unset or
    /// unrecognized values fall back to `Static`.
    pub fn from_env() -> Self {
        match std::env::var("IPA_SCHEDULER") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "workqueue" | "work_queue" => SchedulerPolicy::WorkQueue,
                "workstealing" | "work_stealing" => SchedulerPolicy::WorkStealing,
                _ => SchedulerPolicy::Static,
            },
            Err(_) => SchedulerPolicy::Static,
        }
    }

    /// True for the pull-based policies (`WorkQueue`, `WorkStealing`)
    /// that over-partition and dispatch from the queue.
    pub fn is_pull(&self) -> bool {
        !matches!(self, SchedulerPolicy::Static)
    }
}

/// Scheduler counters reported through [`crate::SessionStatus`] and the
/// gateway's `SchedStats` request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedStats {
    /// Policy the session is running under.
    pub policy: SchedulerPolicy,
    /// Micro-parts the dataset was cut into at the last (re)stage.
    pub parts_queued: u64,
    /// Parts pulled from the queue *after* the initial staging round —
    /// i.e. assignments that went to whichever engine freed up first.
    pub parts_stolen: u64,
    /// Speculative duplicate executions issued for suspected stragglers.
    pub parts_speculated: u64,
    /// Speculations whose duplicate finished before the original runner.
    pub speculations_won: u64,
    /// Per-engine smoothed throughput in records/sec (EWMA); `0.0` until
    /// an engine has published at least two progress stamps.
    pub engine_rate: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_env_parsing() {
        // Can't mutate the process env safely under the parallel test
        // harness; exercise the match arms through a local copy instead.
        let parse = |v: &str| match v.to_ascii_lowercase().as_str() {
            "workqueue" | "work_queue" => SchedulerPolicy::WorkQueue,
            "workstealing" | "work_stealing" => SchedulerPolicy::WorkStealing,
            _ => SchedulerPolicy::Static,
        };
        assert_eq!(parse("WorkStealing"), SchedulerPolicy::WorkStealing);
        assert_eq!(parse("work_queue"), SchedulerPolicy::WorkQueue);
        assert_eq!(parse("static"), SchedulerPolicy::Static);
        assert_eq!(parse("garbage"), SchedulerPolicy::Static);
        assert!(SchedulerPolicy::WorkStealing.is_pull());
        assert!(!SchedulerPolicy::Static.is_pull());
    }

    #[test]
    fn stats_serde_round_trip() {
        let s = SchedStats {
            policy: SchedulerPolicy::WorkStealing,
            parts_queued: 16,
            parts_stolen: 3,
            parts_speculated: 1,
            speculations_won: 1,
            engine_rate: vec![100.0, 25.0],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: SchedStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

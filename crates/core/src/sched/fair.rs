//! Cross-session fair-share arithmetic for the shared engine pool.
//!
//! The PR-2 scheduler balances *parts across one session's engines*; this
//! module balances *engines across sessions* sharing a capped
//! [`EnginePool`](crate::pool::EnginePool). The model follows the GAE
//! resource-management paper's global scheduler: each VO carries a share
//! weight ([`VoPolicy::share`](ipa_simgrid::VoPolicy)), pool capacity is
//! divided between the VOs *currently holding leases* in proportion to
//! their weights, and a VO's slice is divided evenly between its
//! sessions. A session is a preemption victim only for engines it holds
//! *above* that entitlement, and entitlements never drop below one — so
//! every session always keeps at least one engine and makes progress each
//! scheduling round (the no-starvation guarantee the chaos tests pin).
//!
//! Everything here is pure arithmetic over snapshots; the pool holds its
//! lock while calling in, so determinism matters (ties break on session
//! id, not map order).

use std::collections::HashMap;

/// A session's current standing in the pool: who it is, which VO it
/// belongs to, and how many engines it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionHolding {
    /// Session id.
    pub session: u64,
    /// VO the session's proxy belonged to.
    pub vo: String,
    /// Engines currently leased to the session.
    pub held: usize,
}

/// Effective share weight for a VO: configured weight when positive and
/// finite, `1.0` otherwise (including VOs with no configured policy).
fn share_of(shares: &HashMap<String, f64>, vo: &str) -> f64 {
    match shares.get(vo).copied() {
        Some(s) if s.is_finite() && s > 0.0 => s,
        _ => 1.0,
    }
}

/// Per-session engine entitlements for a pool of `capacity` engines.
///
/// Capacity is split between the VOs present in `holdings` weighted by
/// `shares` (absent/invalid weights count as `1.0`), then each VO's slice
/// is divided evenly between its sessions, floored, and clamped to at
/// least one engine per session.
pub fn entitlements(
    capacity: usize,
    holdings: &[SessionHolding],
    shares: &HashMap<String, f64>,
) -> HashMap<u64, usize> {
    let mut vo_sessions: HashMap<&str, usize> = HashMap::new();
    for h in holdings {
        *vo_sessions.entry(h.vo.as_str()).or_insert(0) += 1;
    }
    let total: f64 = vo_sessions.keys().map(|vo| share_of(shares, vo)).sum();
    let mut out = HashMap::with_capacity(holdings.len());
    for h in holdings {
        let w = share_of(shares, &h.vo);
        let vo_capacity = if total > 0.0 {
            capacity as f64 * w / total
        } else {
            capacity as f64
        };
        let n = vo_sessions[h.vo.as_str()] as f64;
        let ent = ((vo_capacity / n).floor() as usize).max(1);
        out.insert(h.session, ent);
    }
    out
}

/// Choose preemption victims to free `need` engines: sessions holding the
/// most engines above their entitlement give back first, and no session
/// is ever asked below its entitlement (hence never below one engine).
///
/// Returns `(session, engines_to_return)` pairs; the total may fall short
/// of `need` when the pool is genuinely fully entitled.
pub fn pick_victims(
    capacity: usize,
    holdings: &[SessionHolding],
    shares: &HashMap<String, f64>,
    need: usize,
) -> Vec<(u64, usize)> {
    let ent = entitlements(capacity, holdings, shares);
    let mut over: Vec<(u64, usize)> = holdings
        .iter()
        .filter_map(|h| {
            let e = ent.get(&h.session).copied().unwrap_or(1);
            (h.held > e).then(|| (h.session, h.held - e))
        })
        .collect();
    over.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out = Vec::new();
    let mut left = need;
    for (session, excess) in over {
        if left == 0 {
            break;
        }
        let k = excess.min(left);
        out.push((session, k));
        left -= k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(session: u64, vo: &str, held: usize) -> SessionHolding {
        SessionHolding {
            session,
            vo: vo.to_string(),
            held,
        }
    }

    #[test]
    fn equal_shares_split_capacity_evenly() {
        let shares = HashMap::new();
        let holdings = vec![h(1, "ilc", 8), h(2, "cms", 0)];
        let ent = entitlements(8, &holdings, &shares);
        assert_eq!(ent[&1], 4);
        assert_eq!(ent[&2], 4);
    }

    #[test]
    fn weighted_shares_skew_the_split() {
        let mut shares = HashMap::new();
        shares.insert("ilc".to_string(), 3.0);
        shares.insert("cms".to_string(), 1.0);
        let holdings = vec![h(1, "ilc", 8), h(2, "cms", 0)];
        let ent = entitlements(8, &holdings, &shares);
        assert_eq!(ent[&1], 6);
        assert_eq!(ent[&2], 2);
    }

    #[test]
    fn vo_slice_divides_between_its_sessions() {
        let shares = HashMap::new();
        let holdings = vec![h(1, "ilc", 4), h(2, "ilc", 4), h(3, "cms", 0)];
        // ilc gets 8 of 16, split 4/4; cms gets 8 whole.
        let ent = entitlements(16, &holdings, &shares);
        assert_eq!(ent[&1], 4);
        assert_eq!(ent[&2], 4);
        assert_eq!(ent[&3], 8);
    }

    #[test]
    fn entitlement_never_below_one() {
        let shares = HashMap::new();
        let holdings: Vec<_> = (0..10).map(|i| h(i, "ilc", 1)).collect();
        let ent = entitlements(4, &holdings, &shares);
        assert!(ent.values().all(|&e| e == 1), "{ent:?}");
    }

    #[test]
    fn invalid_or_missing_shares_default_to_one() {
        let mut shares = HashMap::new();
        shares.insert("bad".to_string(), f64::NAN);
        shares.insert("zero".to_string(), 0.0);
        let holdings = vec![h(1, "bad", 0), h(2, "zero", 0), h(3, "unknown", 0)];
        let ent = entitlements(9, &holdings, &shares);
        assert_eq!(ent[&1], 3);
        assert_eq!(ent[&2], 3);
        assert_eq!(ent[&3], 3);
    }

    #[test]
    fn victims_are_the_most_over_entitled_first() {
        let shares = HashMap::new();
        // Capacity 8, two sessions of one VO: entitlement 4 each. Session
        // 1 holds 7 (3 over), session 2 holds 1 (under) — only session 1
        // yields, and only the 2 engines actually needed.
        let holdings = vec![h(1, "ilc", 7), h(2, "ilc", 1)];
        let v = pick_victims(8, &holdings, &shares, 2);
        assert_eq!(v, vec![(1, 2)]);
    }

    #[test]
    fn victims_never_asked_below_entitlement() {
        let shares = HashMap::new();
        let holdings = vec![h(1, "ilc", 6), h(2, "cms", 2)];
        // Entitlements: 4 each. Session 1 can yield at most 2, session 2
        // nothing; a need of 5 is only partially satisfiable.
        let v = pick_victims(8, &holdings, &shares, 5);
        assert_eq!(v, vec![(1, 2)]);
    }

    #[test]
    fn ties_break_on_session_id() {
        let shares = HashMap::new();
        let holdings = vec![h(9, "ilc", 3), h(4, "ilc", 3)];
        // Entitlement 2 each (capacity 4), both 1 over; lower id first.
        let v = pick_victims(4, &holdings, &shares, 2);
        assert_eq!(v, vec![(4, 1), (9, 1)]);
    }
}

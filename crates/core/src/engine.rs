//! Analysis engines.
//!
//! "Analysis engines are processes that accept a dataset and an analysis
//! script and analyze the dataset using the script to produce a result"
//! (§2). Each engine here is one OS thread doing *real* computation over
//! its staged dataset part, with the paper's interactive controls: run,
//! pause, stop, rewind, run-N-events, and dynamic code reload. Engines
//! publish cumulative partial results for their current part every
//! `publish_every` records — the feedback stream that makes the system
//! interactive.
//!
//! A test/failure-injection hook ([`EngineCommand::FailAfter`]) makes an
//! engine die after N more records, which the session uses to exercise
//! part re-queuing.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use ipa_aida::Tree;
use ipa_dataset::{AnyRecord, ColumnBatch};
use ipa_script::{AidaHost, ScriptBackend, ScriptFusion};

use crate::aida_manager::{PartPayload, PartUpdate};
use crate::analyzer::{instantiate_code, AnalysisCode, Analyzer, NativeRegistry};
use crate::error::CoreError;

/// Engine identifier within a session.
pub type EngineId = usize;
/// Dataset-part identifier within a session.
pub type PartId = u64;

/// Session-wide run-epoch generation counter. Bumped by the session on
/// every control-plane reset (`select_dataset`, `load_code`, `rewind`);
/// engines stamp it into every event so the session and the AIDA manager
/// can drop updates that belong to a superseded run.
pub type Epoch = u64;

/// Commands a session sends to an engine.
pub enum EngineCommand {
    /// Ship analysis code (compiled/validated engine-side, like the
    /// managing class loader).
    LoadCode {
        /// The code to compile and instantiate.
        code: AnalysisCode,
        /// Run epoch this load belongs to.
        epoch: Epoch,
    },
    /// Stage a dataset part onto the engine.
    AssignPart {
        /// Part id (merge key).
        part: PartId,
        /// The records (shared, not copied).
        records: Arc<Vec<AnyRecord>>,
        /// Columnar transcode of `records` when the data plane staged one
        /// (`DataLayout::Columnar`); `None` keeps the row path.
        columns: Option<Arc<ColumnBatch>>,
        /// Run epoch this assignment belongs to.
        epoch: Epoch,
    },
    /// Start / resume processing to the end of the part.
    Run,
    /// Process at most this many further records, then pause.
    RunN(usize),
    /// Pause after the current batch (a later `Run` resumes mid-part).
    Pause,
    /// Stop: halt *and drop the position* — a later `Run` restarts the
    /// current part from record 0 with fresh results. Unlike `Rewind`,
    /// nothing is published, so previously merged results stay visible.
    Stop,
    /// Restart the current part from record 0 with fresh results and a
    /// fresh analyzer instance.
    Rewind,
    /// Failure injection: abort with an error after N more records. The
    /// fault is consumed when it fires, so a re-assigned part succeeds.
    FailAfter(u64),
    /// Straggler injection: multiply this engine's per-batch compute time
    /// by the given factor (the engine sleeps `(factor − 1) ×` the time
    /// each batch took). Values ≤ 1.0 restore full speed. Used by the
    /// scheduler benches and `speed_factors` config to make slow nodes
    /// reproducible.
    Throttle(f64),
    /// Resync request from the result plane: force the next publish to be
    /// a full-tree checkpoint (and publish immediately if a part is
    /// staged). Sent by the session when the AIDA manager rejects a delta
    /// it cannot apply safely.
    Checkpoint,
    /// Re-lease the engine to a new owner: wipe *all* per-session state
    /// (code, analyzer, AIDA host, part, epoch, throttle, injected
    /// faults, publish baseline), take on a new engine id, and redirect
    /// events to the new owner's channel — then announce `Ready` there.
    /// Because commands are processed strictly in order, every event the
    /// previous owner could still drain precedes the rebind and every
    /// event after it belongs to the new owner: a rebound engine is
    /// indistinguishable from a freshly spawned one.
    Rebind {
        /// Engine id within the new owning session.
        id: EngineId,
        /// The new owner's event channel.
        events: Sender<EngineEvent>,
    },
    /// Terminate the engine thread.
    Shutdown,
}

/// Events an engine sends back.
#[derive(Debug)]
pub enum EngineEvent {
    /// Engine thread is up (the paper's "ready signal").
    Ready {
        /// Which engine.
        engine: EngineId,
    },
    /// Code compiled and loaded.
    CodeLoaded {
        /// Which engine.
        engine: EngineId,
        /// Run epoch the load belonged to.
        epoch: Epoch,
    },
    /// Code failed to compile/instantiate.
    CodeError {
        /// Which engine.
        engine: EngineId,
        /// Run epoch the load belonged to.
        epoch: Epoch,
        /// Compiler/loader message.
        message: String,
    },
    /// A partial-result publication for a part (epoch is stamped inside
    /// the [`PartUpdate`]).
    Update {
        /// Part id (merge key).
        part: PartId,
        /// The update payload.
        update: PartUpdate,
    },
    /// The engine failed (analyzer error or injected fault) and dropped
    /// its part.
    Failed {
        /// Which engine.
        engine: EngineId,
        /// The part it was processing, if any.
        part: Option<PartId>,
        /// Run epoch the failure belongs to.
        epoch: Epoch,
        /// Failure description.
        message: String,
    },
    /// A `log()` call from user code.
    Log {
        /// Which engine.
        engine: EngineId,
        /// Run epoch the log was emitted under.
        epoch: Epoch,
        /// Message text.
        message: String,
    },
}

struct CurrentPart {
    id: PartId,
    records: Arc<Vec<AnyRecord>>,
    columns: Option<Arc<ColumnBatch>>,
    pos: usize,
    done: bool,
}

struct EngineWorker {
    id: EngineId,
    publish_every: usize,
    /// Publish a full-tree checkpoint every this-many publishes; the
    /// publishes in between ship deltas. 1 = every publish is a
    /// checkpoint (the legacy full-clone behavior).
    checkpoint_every: usize,
    registry: NativeRegistry,
    /// Script execution backend handed to `instantiate_code` (native
    /// analyzers ignore it).
    backend: ScriptBackend,
    /// Script fusion level handed to `instantiate_code` alongside the
    /// backend (superinstructions and/or the batch kernel).
    fusion: ScriptFusion,
    events: Sender<EngineEvent>,
    commands: Receiver<EngineCommand>,

    code: Option<AnalysisCode>,
    analyzer: Option<Box<dyn Analyzer>>,
    host: AidaHost,
    needs_init: bool,
    part: Option<CurrentPart>,
    running: bool,
    budget: Option<usize>,
    fail_after: Option<u64>,
    /// Compute-time multiplier; > 1.0 makes this engine a straggler.
    speed_factor: f64,
    /// Latest run epoch seen from the session (via LoadCode/AssignPart);
    /// stamped into every outgoing event.
    epoch: Epoch,
    /// Snapshot of the tree as of the previous publish — the baseline the
    /// next delta is computed against.
    baseline: Tree,
    /// Publish sequence number for the current part assignment.
    seq: u64,
    /// Publishes since the last checkpoint.
    since_checkpoint: usize,
    /// Force the next publish to be a checkpoint (resync request).
    force_checkpoint: bool,
}

enum Disposition {
    Continue,
    Shutdown,
}

impl EngineWorker {
    /// Reset the delta stream: the next publish will be a checkpoint.
    /// Called whenever the cumulative tree restarts (new part, new code,
    /// stop, rewind) so the manager can never apply a delta across a
    /// baseline discontinuity.
    fn reset_publish_state(&mut self) {
        self.baseline = Tree::new();
        self.seq = 0;
        self.since_checkpoint = 0;
        self.force_checkpoint = false;
    }

    fn publish(&mut self) {
        let Some(part) = &self.part else { return };
        // Invariant: the first publish of a part assignment and every
        // `done` publish are checkpoints, so the manager always has a
        // baseline to apply deltas to and final results never ride on a
        // fragile delta chain.
        let checkpoint = self.force_checkpoint
            || part.done
            || self.seq == 0
            || self.since_checkpoint + 1 >= self.checkpoint_every;
        let payload = if checkpoint {
            self.force_checkpoint = false;
            self.since_checkpoint = 0;
            self.baseline = self.host.tree.clone();
            PartPayload::Checkpoint(self.host.tree.clone())
        } else {
            let delta = self.host.tree.diff_since(&self.baseline);
            // Roll the baseline forward by the same delta the manager will
            // apply (cheaper than a full clone: unchanged objects are
            // untouched). Failure cannot happen for a self-produced delta;
            // fall back to a clone rather than desync silently.
            if self.baseline.apply_delta(&delta).is_err() {
                self.baseline = self.host.tree.clone();
            }
            self.since_checkpoint += 1;
            PartPayload::Delta(delta)
        };
        let update = PartUpdate {
            engine: self.id,
            epoch: self.epoch,
            seq: self.seq,
            processed: part.pos as u64,
            total: part.records.len() as u64,
            payload,
            done: part.done,
        };
        self.seq += 1;
        let _ = self.events.send(EngineEvent::Update {
            part: part.id,
            update,
        });
    }

    fn drain_logs(&mut self) {
        for message in self.host.messages.drain(..) {
            let _ = self.events.send(EngineEvent::Log {
                engine: self.id,
                epoch: self.epoch,
                message,
            });
        }
    }

    fn fresh_analyzer(&mut self) -> Result<(), String> {
        let Some(code) = &self.code else {
            return Err("no code loaded".to_string());
        };
        match instantiate_code(code, &self.registry, self.backend, self.fusion) {
            Ok(a) => {
                self.analyzer = Some(a);
                self.needs_init = true;
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    fn fail(&mut self, message: String) {
        let part = self.part.as_ref().map(|p| p.id);
        let _ = self.events.send(EngineEvent::Failed {
            engine: self.id,
            part,
            epoch: self.epoch,
            message,
        });
        self.part = None;
        self.running = false;
        self.budget = None;
        self.reset_publish_state();
        // An injected fault is consumed by firing: a re-assigned part must
        // be able to succeed on retry.
        self.fail_after = None;
    }

    fn handle(&mut self, cmd: EngineCommand) -> Disposition {
        match cmd {
            EngineCommand::LoadCode { code, epoch } => {
                self.epoch = epoch;
                self.code = Some(code);
                match self.fresh_analyzer() {
                    Ok(()) => {
                        // New code restarts the current part from zero and
                        // waits for an explicit Run.
                        self.host = AidaHost::new();
                        self.reset_publish_state();
                        if let Some(p) = &mut self.part {
                            p.pos = 0;
                            p.done = false;
                        }
                        self.running = false;
                        self.budget = None;
                        let _ = self.events.send(EngineEvent::CodeLoaded {
                            engine: self.id,
                            epoch: self.epoch,
                        });
                    }
                    Err(message) => {
                        self.analyzer = None;
                        let _ = self.events.send(EngineEvent::CodeError {
                            engine: self.id,
                            epoch: self.epoch,
                            message,
                        });
                    }
                }
            }
            EngineCommand::AssignPart {
                part,
                records,
                columns,
                epoch,
            } => {
                self.epoch = epoch;
                self.part = Some(CurrentPart {
                    id: part,
                    records,
                    columns,
                    pos: 0,
                    done: false,
                });
                self.host = AidaHost::new();
                self.reset_publish_state();
                // A freshly staged part waits for an explicit Run; without
                // this, a rewind/select racing a running engine would keep
                // it crunching while the session believes it is idle.
                self.running = false;
                self.budget = None;
                if self.code.is_some() {
                    if let Err(message) = self.fresh_analyzer() {
                        self.fail(message);
                    }
                }
            }
            EngineCommand::Run => {
                self.budget = None;
                self.running = true;
            }
            EngineCommand::RunN(n) => {
                self.budget = Some(n);
                self.running = true;
            }
            EngineCommand::Pause => {
                self.running = false;
                self.publish();
            }
            EngineCommand::Stop => {
                // Halt and drop the position: a later Run restarts the part
                // from record 0. Nothing is published — merged results from
                // before the stop stay visible at the manager.
                self.running = false;
                self.budget = None;
                self.host = AidaHost::new();
                self.reset_publish_state();
                if let Some(p) = &mut self.part {
                    p.pos = 0;
                    p.done = false;
                }
                if self.code.is_some() {
                    if let Err(message) = self.fresh_analyzer() {
                        self.fail(message);
                    }
                }
            }
            EngineCommand::Rewind => {
                self.host = AidaHost::new();
                self.reset_publish_state();
                if let Some(p) = &mut self.part {
                    p.pos = 0;
                    p.done = false;
                }
                self.running = false;
                self.budget = None;
                if self.code.is_some() {
                    if let Err(message) = self.fresh_analyzer() {
                        self.fail(message);
                    }
                }
                self.publish();
            }
            EngineCommand::FailAfter(n) => {
                self.fail_after = Some(n);
            }
            EngineCommand::Throttle(f) => {
                self.speed_factor = if f > 1.0 { f } else { 1.0 };
            }
            EngineCommand::Checkpoint => {
                self.force_checkpoint = true;
                if self.part.is_some() {
                    self.publish();
                }
            }
            EngineCommand::Rebind { id, events } => {
                // Full per-session reset — must leave the worker exactly as
                // `EngineHandle::spawn` builds it (bit-identity of pooled
                // vs fresh engines rests on this list being complete).
                self.id = id;
                self.events = events;
                self.code = None;
                self.analyzer = None;
                self.host = AidaHost::new();
                self.needs_init = true;
                self.part = None;
                self.running = false;
                self.budget = None;
                self.fail_after = None;
                self.speed_factor = 1.0;
                self.epoch = 0;
                self.reset_publish_state();
                let _ = self.events.send(EngineEvent::Ready { engine: self.id });
            }
            EngineCommand::Shutdown => return Disposition::Shutdown,
        }
        Disposition::Continue
    }

    /// Process up to one publish batch; returns false when there is nothing
    /// (more) to run.
    fn step(&mut self) -> bool {
        if !self.running {
            return false;
        }
        let Some(part) = &self.part else {
            self.running = false;
            return false;
        };
        if part.done {
            self.running = false;
            return false;
        }
        // NOTE: an empty part (or pos at end) still falls through so that
        // init()/end() run and the `done` update is published.
        if self.analyzer.is_none() {
            self.fail("run requested before analysis code was loaded".to_string());
            return false;
        }

        // Lazily run init() at the start of the part.
        if self.needs_init {
            let mut analyzer = self.analyzer.take().expect("checked above");
            let r = analyzer.init(&mut self.host);
            self.analyzer = Some(analyzer);
            self.drain_logs();
            if let Err(e) = r {
                self.fail(format!("init failed: {e}"));
                return false;
            }
            self.needs_init = false;
        }

        // Determine batch size from publish interval, RunN budget, and
        // injected failure point.
        let part = self.part.as_ref().expect("checked above");
        let remaining = part.records.len() - part.pos;
        let mut batch = self.publish_every.min(remaining);
        if let Some(b) = self.budget {
            batch = batch.min(b);
        }
        // `<=` so that a budget equal to the batch (e.g. FailAfter(remaining)
        // or FailAfter(0)) still truncates and fires deterministically once
        // the budget is consumed, instead of silently finishing the part.
        let mut fail_at: Option<usize> = None;
        if let Some(f) = self.fail_after {
            if (f as usize) <= batch {
                batch = f as usize;
                fail_at = Some(batch);
            }
        }

        let records = part.records.clone();
        let columns = part.columns.clone();
        let start = part.pos;
        let batch_started = Instant::now();
        let mut analyzer = self.analyzer.take().expect("checked above");
        // Hand the whole publish batch to the analyzer at once: script
        // analyzers share the Arc'd batch (and bind its columns when the
        // data plane transcoded one) instead of deep-copying records, and
        // vectorizing analyzers turn it into bulk histogram fills. The
        // returned count stays record-exact so FailAfter/RunN/publish
        // accounting is identical across layouts.
        let (processed, error) = analyzer.process_batch(
            &records,
            columns.as_ref(),
            start..start + batch,
            &mut self.host,
        );
        self.analyzer = Some(analyzer);
        // A throttled engine pays `(factor − 1)×` the real compute time per
        // batch, stretching its wall-clock without changing its results.
        if self.speed_factor > 1.0 && processed > 0 {
            std::thread::sleep(batch_started.elapsed().mul_f64(self.speed_factor - 1.0));
        }
        self.drain_logs();

        if let Some(p) = &mut self.part {
            p.pos += processed;
        }
        if let Some(b) = &mut self.budget {
            *b = b.saturating_sub(processed);
        }
        if let Some(f) = &mut self.fail_after {
            *f = f.saturating_sub(processed as u64);
        }

        if let Some(e) = error {
            self.fail(format!("analysis error: {e}"));
            return false;
        }
        if fail_at.is_some() && self.fail_after == Some(0) {
            self.fail("injected engine fault".to_string());
            return false;
        }

        // Part finished?
        let finished = self
            .part
            .as_ref()
            .map(|p| p.pos >= p.records.len())
            .unwrap_or(false);
        if finished {
            let mut analyzer = self.analyzer.take().expect("still loaded");
            let r = analyzer.end(&mut self.host);
            self.analyzer = Some(analyzer);
            self.drain_logs();
            if let Err(e) = r {
                self.fail(format!("end() failed: {e}"));
                return false;
            }
            if let Some(p) = &mut self.part {
                p.done = true;
            }
            self.running = false;
            self.publish();
            return false;
        }

        self.publish();

        if self.budget == Some(0) {
            self.running = false;
            self.budget = None;
            return false;
        }
        true
    }

    fn run_loop(mut self) {
        let _ = self.events.send(EngineEvent::Ready { engine: self.id });
        loop {
            if self.running {
                // Poll for control commands between batches so pause/stop
                // latency is one batch, then advance.
                loop {
                    match self.commands.try_recv() {
                        Ok(cmd) => {
                            if let Disposition::Shutdown = self.handle(cmd) {
                                return;
                            }
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => return,
                    }
                }
                self.step();
            } else {
                match self.commands.recv() {
                    Ok(cmd) => {
                        if let Disposition::Shutdown = self.handle(cmd) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }
}

/// Client-side handle to a spawned engine.
///
/// Two flavors exist: an *owned* handle (from [`EngineHandle::spawn`])
/// whose `shutdown` terminates and joins the engine thread, and a
/// *leased* handle (from [`EnginePool::lease`](crate::pool::EnginePool::lease))
/// whose `shutdown` instead returns the engine to its pool for re-lease.
/// Sessions treat both identically.
pub struct EngineHandle {
    /// Engine id within the session.
    pub id: EngineId,
    commands: Sender<EngineCommand>,
    thread: Option<JoinHandle<()>>,
    /// Set false once the engine reports a failure.
    pub alive: bool,
    /// Present on leased handles: returning ticket back to the pool.
    lease: Option<crate::pool::LeaseReturn>,
}

impl EngineHandle {
    /// Spawn an engine thread. Events (including the ready signal) arrive
    /// on `events`. `checkpoint_every` controls the delta stream: a
    /// full-tree checkpoint every that-many publishes, deltas in between
    /// (1 = checkpoint every publish, the legacy full-clone behavior).
    /// `backend` picks the IPAScript execution backend for script code and
    /// `fusion` its compile-pipeline fusion level.
    pub fn spawn(
        id: EngineId,
        publish_every: usize,
        checkpoint_every: usize,
        registry: NativeRegistry,
        backend: ScriptBackend,
        fusion: ScriptFusion,
        events: Sender<EngineEvent>,
    ) -> Self {
        let (tx, rx) = unbounded();
        let worker = EngineWorker {
            id,
            publish_every: publish_every.max(1),
            checkpoint_every: checkpoint_every.max(1),
            registry,
            backend,
            fusion,
            events,
            commands: rx,
            code: None,
            analyzer: None,
            host: AidaHost::new(),
            needs_init: true,
            part: None,
            running: false,
            budget: None,
            fail_after: None,
            speed_factor: 1.0,
            epoch: 0,
            baseline: Tree::new(),
            seq: 0,
            since_checkpoint: 0,
            force_checkpoint: false,
        };
        let thread = std::thread::Builder::new()
            .name(format!("ipa-engine-{id}"))
            .spawn(move || worker.run_loop())
            .expect("spawn engine thread");
        EngineHandle {
            id,
            commands: tx,
            thread: Some(thread),
            alive: true,
            lease: None,
        }
    }

    /// Build a handle for an engine leased from a pool: commands go to the
    /// pooled engine's long-lived thread (which has just been rebound to
    /// this session), and `shutdown` returns the lease instead of killing
    /// the thread.
    pub(crate) fn leased(
        id: EngineId,
        commands: Sender<EngineCommand>,
        lease: crate::pool::LeaseReturn,
    ) -> Self {
        EngineHandle {
            id,
            commands,
            thread: None,
            alive: true,
            lease: Some(lease),
        }
    }

    /// Clone of the engine's command channel (for pools, which keep the
    /// owned handle and hand command senders to lessees).
    pub(crate) fn command_sender(&self) -> Sender<EngineCommand> {
        self.commands.clone()
    }

    /// Send a command; returns false if the engine is gone (dead thread or
    /// a leased handle already returned to its pool).
    pub fn send(&self, cmd: EngineCommand) -> bool {
        self.alive && self.commands.send(cmd).is_ok()
    }

    /// Shut the engine down: an owned handle terminates and joins the
    /// thread; a leased handle returns the engine to its pool (the pool
    /// rebinds it away, so this handle can no longer reach it).
    pub fn shutdown(&mut self) {
        if !self.alive && self.thread.is_none() && self.lease.is_none() {
            return;
        }
        self.alive = false;
        if let Some(lease) = self.lease.take() {
            lease.release();
            return;
        }
        let _ = self.commands.send(EngineCommand::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Receive the next event from an engine channel with a deadline.
///
/// A wedged worker becomes [`CoreError::Timeout`]`(None)` instead of a
/// panic on the receiving (manager) thread; a closed channel becomes
/// [`CoreError::EngineGone`] for `engine`.
pub fn recv_event_timeout(
    rx: &Receiver<EngineEvent>,
    engine: EngineId,
    timeout: Duration,
) -> Result<EngineEvent, CoreError> {
    match rx.recv_timeout(timeout) {
        Ok(ev) => Ok(ev),
        Err(RecvTimeoutError::Timeout) => Err(CoreError::Timeout(None)),
        Err(RecvTimeoutError::Disconnected) => Err(CoreError::EngineGone(engine)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::builtin_registry;
    use ipa_dataset::EventGeneratorConfig;
    use std::time::Duration;

    fn records(n: u64) -> Arc<Vec<AnyRecord>> {
        Arc::new(
            EventGeneratorConfig {
                events: n,
                ..Default::default()
            }
            .generate(),
        )
    }

    fn recv_until<F: FnMut(&EngineEvent) -> bool>(
        rx: &Receiver<EngineEvent>,
        mut pred: F,
    ) -> EngineEvent {
        loop {
            let ev = recv_event_timeout(rx, 0, Duration::from_secs(10))
                .expect("engine event within timeout");
            if pred(&ev) {
                return ev;
            }
        }
    }

    #[test]
    fn engine_lifecycle_ready_load_run_done() {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(0, 100, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        recv_until(&rx, |ev| matches!(ev, EngineEvent::Ready { .. }));
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        recv_until(&rx, |ev| matches!(ev, EngineEvent::CodeLoaded { .. }));
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(250),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        let done = recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { part, update } = done else {
            unreachable!()
        };
        assert_eq!(part, 0);
        assert_eq!(update.processed, 250);
        assert_eq!(update.total, 250);
        assert!(update
            .checkpoint_tree()
            .expect("done publishes are checkpoints")
            .contains("/higgs/bb_mass"));
        e.shutdown();
    }

    #[test]
    fn partial_updates_arrive_between_batches() -> Result<(), CoreError> {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(1, 50, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 3,
            records: records(200),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        let mut progress = Vec::new();
        loop {
            // A wedged engine surfaces as CoreError::Timeout, not a panic.
            if let EngineEvent::Update { update, .. } =
                recv_event_timeout(&rx, 1, Duration::from_secs(10))?
            {
                progress.push(update.processed);
                if update.done {
                    break;
                }
            }
        }
        assert_eq!(progress, vec![50, 100, 150, 200]);
        e.shutdown();
        Ok(())
    }

    #[test]
    fn run_n_pauses_after_budget() {
        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            2,
            1000,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(500),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::RunN(120));
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Update { .. }));
        let EngineEvent::Update { update, .. } = ev else {
            unreachable!()
        };
        assert_eq!(update.processed, 120);
        assert!(!update.done);
        // Resume to completion.
        e.send(EngineCommand::Run);
        let done = recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { update, .. } = done else {
            unreachable!()
        };
        assert_eq!(update.processed, 500);
        e.shutdown();
    }

    #[test]
    fn rewind_resets_results() {
        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            3,
            1000,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(100),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        e.send(EngineCommand::Rewind);
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Update { .. }));
        let EngineEvent::Update { update, .. } = ev else {
            unreachable!()
        };
        assert_eq!(update.processed, 0);
        assert!(!update.done);
        assert_eq!(
            update
                .checkpoint_tree()
                .expect("a rewind publish restarts the stream with a checkpoint")
                .total_entries(),
            0
        );
        // And it can run again to the same completion.
        e.send(EngineCommand::Run);
        let done = recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { update, .. } = done else {
            unreachable!()
        };
        assert_eq!(update.processed, 100);
        e.shutdown();
    }

    #[test]
    fn injected_failure_emits_failed_event() {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(4, 10, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 9,
            records: records(100),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::FailAfter(25));
        e.send(EngineCommand::Run);
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Failed { .. }));
        let EngineEvent::Failed { part, message, .. } = ev else {
            unreachable!()
        };
        assert_eq!(part, Some(9));
        assert!(message.contains("injected"));
        e.shutdown();
    }

    #[test]
    fn injected_failure_fires_on_exact_remaining_budget() {
        // FailAfter(remaining): the fault budget equals the records left,
        // so the batch is fully processed and then the fault fires instead
        // of the part silently finishing (regression for the `<` boundary).
        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            8,
            1000,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 2,
            records: records(100),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::FailAfter(100));
        e.send(EngineCommand::Run);
        let ev = recv_until(&rx, |ev| {
            matches!(ev, EngineEvent::Failed { .. } | EngineEvent::Update { .. })
        });
        let EngineEvent::Failed { part, message, .. } = ev else {
            panic!("expected Failed before any Update, got {ev:?}");
        };
        assert_eq!(part, Some(2));
        assert!(message.contains("injected"));
        e.shutdown();
    }

    #[test]
    fn injected_failure_fires_on_zero_budget() {
        // FailAfter(0): the engine must die before processing anything.
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(9, 10, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 4,
            records: records(50),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::FailAfter(0));
        e.send(EngineCommand::Run);
        let ev = recv_until(&rx, |ev| {
            matches!(ev, EngineEvent::Failed { .. } | EngineEvent::Update { .. })
        });
        let EngineEvent::Failed { part, .. } = ev else {
            panic!("expected Failed before any Update, got {ev:?}");
        };
        assert_eq!(part, Some(4));
        e.shutdown();
    }

    #[test]
    fn stop_drops_position_so_run_restarts_the_part() -> Result<(), CoreError> {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(10, 50, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(200),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::RunN(100));
        // Wait until the RunN budget is exhausted (updates at 50, 100).
        recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.processed == 100),
        );
        // Stop (publishes nothing), then Run: the part restarts from 0,
        // so the very next update is 50 — not 150 as a resume would give.
        e.send(EngineCommand::Stop);
        e.send(EngineCommand::Run);
        let mut progress = Vec::new();
        loop {
            if let EngineEvent::Update { update, .. } =
                recv_event_timeout(&rx, 10, Duration::from_secs(10))?
            {
                progress.push(update.processed);
                if update.done {
                    break;
                }
            }
        }
        assert_eq!(progress, vec![50, 100, 150, 200]);
        e.shutdown();
        Ok(())
    }

    #[test]
    fn throttle_changes_speed_not_results() {
        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            12,
            100,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(300),
            columns: None,
            epoch: 0,
        });
        // A throttled engine is slower, never wrong.
        e.send(EngineCommand::Throttle(4.0));
        e.send(EngineCommand::Run);
        let done = recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { update, .. } = done else {
            unreachable!()
        };
        assert_eq!(update.processed, 300);
        assert!(update
            .checkpoint_tree()
            .expect("done publishes are checkpoints")
            .contains("/higgs/bb_mass"));
        e.shutdown();
    }

    #[test]
    fn events_carry_latest_epoch() {
        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            11,
            100,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 3,
        });
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::CodeLoaded { .. }));
        let EngineEvent::CodeLoaded { epoch, .. } = ev else {
            unreachable!()
        };
        assert_eq!(epoch, 3);
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(60),
            columns: None,
            epoch: 5,
        });
        e.send(EngineCommand::Run);
        let done = recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { update, .. } = done else {
            unreachable!()
        };
        assert_eq!(update.epoch, 5);
        e.shutdown();
    }

    #[test]
    fn delta_publishes_between_checkpoints_reconstruct_exactly() {
        use crate::aida_manager::PartPayload;

        // publish_every 50 over 300 records → 6 publishes; checkpoint_every
        // 4 → pattern C D D D C(done forces nothing here: 5th publish is a
        // scheduled checkpoint, 6th is the done checkpoint).
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(13, 50, 4, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(300),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        let mut replayed = Tree::new();
        let mut kinds = Vec::new();
        let mut seqs = Vec::new();
        loop {
            let EngineEvent::Update { update, .. } =
                recv_event_timeout(&rx, 13, Duration::from_secs(10)).unwrap()
            else {
                continue;
            };
            seqs.push(update.seq);
            let done = update.done;
            match update.payload {
                PartPayload::Checkpoint(t) => {
                    kinds.push('C');
                    replayed = t;
                }
                PartPayload::Delta(d) => {
                    kinds.push('D');
                    replayed.apply_delta(&d).expect("delta applies in order");
                }
            }
            if done {
                break;
            }
        }
        // First publish and the done publish are checkpoints; deltas ride
        // in between and the replayed stream equals the final full tree.
        assert_eq!(kinds.first(), Some(&'C'));
        assert_eq!(kinds.last(), Some(&'C'));
        assert!(kinds.contains(&'D'));
        assert_eq!(seqs, (0..kinds.len() as u64).collect::<Vec<_>>());
        assert!(replayed.contains("/higgs/bb_mass"));

        // The replayed tree is bin-for-bin the engine's cumulative tree:
        // re-running the same part with checkpoint_every=1 (full clones)
        // must give the identical final checkpoint.
        let (tx2, rx2) = unbounded();
        let mut e2 = EngineHandle::spawn(
            14,
            50,
            1,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx2,
        );
        e2.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e2.send(EngineCommand::AssignPart {
            part: 0,
            records: records(300),
            columns: None,
            epoch: 0,
        });
        e2.send(EngineCommand::Run);
        let done = recv_until(
            &rx2,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.done),
        );
        let EngineEvent::Update { update, .. } = done else {
            unreachable!()
        };
        assert_eq!(update.checkpoint_tree().unwrap(), &replayed);
        assert!(replayed.total_entries() > 0);
        e.shutdown();
        e2.shutdown();
    }

    #[test]
    fn checkpoint_command_forces_full_tree_publish() {
        use crate::aida_manager::PartPayload;

        let (tx, rx) = unbounded();
        let mut e = EngineHandle::spawn(
            15,
            25,
            1000,
            builtin_registry(),
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
            tx,
        );
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Native("higgs-search".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(100),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::RunN(50));
        // Publishes at 25 (seq 0, checkpoint) and 50 (seq 1, delta).
        recv_until(
            &rx,
            |ev| matches!(ev, EngineEvent::Update { update, .. } if update.seq == 1),
        );
        // Resync request: the engine republishes immediately, full tree.
        e.send(EngineCommand::Checkpoint);
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Update { .. }));
        let EngineEvent::Update { update, .. } = ev else {
            unreachable!()
        };
        assert_eq!(update.seq, 2);
        assert!(matches!(update.payload, PartPayload::Checkpoint(_)));
        assert_eq!(update.processed, 50);
        e.shutdown();
    }

    #[test]
    fn bad_script_reports_code_error() {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(5, 10, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Script("fn broken( {".into()),
            epoch: 0,
        });
        recv_until(&rx, |ev| matches!(ev, EngineEvent::CodeError { .. }));
        e.shutdown();
    }

    #[test]
    fn run_without_code_fails_gracefully() {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(6, 10, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(10),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Failed { .. }));
        let EngineEvent::Failed { message, .. } = ev else {
            unreachable!()
        };
        assert!(message.contains("before analysis code"));
        e.shutdown();
    }

    #[test]
    fn script_logs_are_forwarded() {
        let (tx, rx) = unbounded();
        let mut e =
            EngineHandle::spawn(7, 10, 1, builtin_registry(), ScriptBackend::from_env(), ScriptFusion::from_env(), tx);
        e.send(EngineCommand::LoadCode {
            code: AnalysisCode::Script("fn init() { log(\"booked\"); } fn process(ev) { }".into()),
            epoch: 0,
        });
        e.send(EngineCommand::AssignPart {
            part: 0,
            records: records(5),
            columns: None,
            epoch: 0,
        });
        e.send(EngineCommand::Run);
        let ev = recv_until(&rx, |ev| matches!(ev, EngineEvent::Log { .. }));
        let EngineEvent::Log { message, .. } = ev else {
            unreachable!()
        };
        assert_eq!(message, "booked");
        e.shutdown();
    }

    #[test]
    fn columnar_assignment_matches_row_results() {
        // Same part, same code, both layouts: the done checkpoints must be
        // bit-identical, and publish cadence must not drift either.
        let recs = records(300);
        let columns = Arc::new(ColumnBatch::from_records(&recs).expect("homogeneous events"));
        for code in [
            AnalysisCode::Native("higgs-search".into()),
            AnalysisCode::Script(
                "fn init() { h1(\"/s/vis\", 60, 0.0, 600.0); }\n\
                 fn process(e) { fill(\"/s/vis\", e.visible_energy); }"
                    .into(),
            ),
        ] {
            let mut trees = Vec::new();
            let mut cadences = Vec::new();
            for cols in [None, Some(columns.clone())] {
                let (tx, rx) = unbounded();
                let mut e = EngineHandle::spawn(
                    17,
                    50,
                    1,
                    builtin_registry(),
                    ScriptBackend::from_env(),
                    ScriptFusion::from_env(),
                    tx,
                );
                e.send(EngineCommand::LoadCode {
                    code: code.clone(),
                    epoch: 0,
                });
                e.send(EngineCommand::AssignPart {
                    part: 0,
                    records: recs.clone(),
                    columns: cols,
                    epoch: 0,
                });
                e.send(EngineCommand::Run);
                let mut progress = Vec::new();
                let tree = loop {
                    if let EngineEvent::Update { update, .. } =
                        recv_event_timeout(&rx, 17, Duration::from_secs(10)).unwrap()
                    {
                        progress.push(update.processed);
                        if update.done {
                            break update.checkpoint_tree().unwrap().clone();
                        }
                    }
                };
                trees.push(tree);
                cadences.push(progress);
                e.shutdown();
            }
            assert_eq!(trees[0], trees[1]);
            assert!(trees[0].total_entries() > 0);
            assert_eq!(cadences[0], vec![50, 100, 150, 200, 250, 300]);
            assert_eq!(cadences[0], cadences[1]);
        }
    }
}

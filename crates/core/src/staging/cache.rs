//! Content-addressed split cache.
//!
//! Re-selecting a dataset (or re-splitting for the same engine count after
//! a rewind) is the interactive loop's hottest repeated cost: the seed
//! re-split and re-transferred every time. Parts are immutable once cut
//! (`Arc<Vec<AnyRecord>>`), so the cut for a given `(dataset content,
//! split spec)` pair can be reused verbatim — a hit costs O(parts) `Arc`
//! clones and moves zero bytes.
//!
//! The key is content-addressed through the descriptor (`id`, record
//! count, byte size): re-publishing a *different* dataset under the same
//! id changes the count/size and misses, so stale parts are never served.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use ipa_dataset::{AnyRecord, ColumnBatch, DatasetDescriptor, SplitPlan};

use super::SplitSpec;

/// Default number of distinct `(dataset, spec)` cuts kept.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    id: String,
    records: u64,
    size_bytes: u64,
    spec: SplitSpec,
}

impl CacheKey {
    fn new(descriptor: &DatasetDescriptor, spec: &SplitSpec) -> Self {
        CacheKey {
            id: descriptor.id.0.clone(),
            records: descriptor.records,
            size_bytes: descriptor.size_bytes,
            spec: *spec,
        }
    }
}

/// A cached cut: the parts, their columnar transcodes, and the plan they
/// were cut under.
#[derive(Debug, Clone)]
pub struct CachedSplit {
    /// Shared part buffers (bit-identical to the original cut).
    pub parts: Vec<Arc<Vec<AnyRecord>>>,
    /// Columnar transcodes parallel to `parts` — keyed by the same
    /// `(dataset content, split spec)` identity, so a hit reuses the
    /// transcode work too (`None` per part under the row layout).
    pub columns: Vec<Option<Arc<ColumnBatch>>>,
    /// The plan describing the cut.
    pub plan: SplitPlan,
}

/// FIFO-bounded map from `(dataset content, split spec)` to a finished cut.
pub struct SplitCache {
    entries: HashMap<CacheKey, CachedSplit>,
    order: VecDeque<CacheKey>,
    capacity: usize,
}

impl Default for SplitCache {
    fn default() -> Self {
        SplitCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl SplitCache {
    /// Cache holding at most `capacity` cuts (oldest evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        SplitCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Look up the cut for a dataset + spec.
    pub fn get(&self, descriptor: &DatasetDescriptor, spec: &SplitSpec) -> Option<CachedSplit> {
        self.entries.get(&CacheKey::new(descriptor, spec)).cloned()
    }

    /// Store a finished cut, evicting the oldest entry over capacity.
    pub fn put(
        &mut self,
        descriptor: &DatasetDescriptor,
        spec: &SplitSpec,
        parts: &[Arc<Vec<AnyRecord>>],
        columns: &[Option<Arc<ColumnBatch>>],
        plan: &SplitPlan,
    ) {
        let key = CacheKey::new(descriptor, spec);
        let fresh = self
            .entries
            .insert(
                key.clone(),
                CachedSplit {
                    parts: parts.to_vec(),
                    columns: columns.to_vec(),
                    plan: plan.clone(),
                },
            )
            .is_none();
        if fresh {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Number of cached cuts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::Dataset;

    fn descriptor(id: &str, n: u64) -> DatasetDescriptor {
        let recs = (0..n)
            .map(|i| {
                AnyRecord::Event(ipa_dataset::CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect();
        Dataset::from_records(id, id, recs).descriptor
    }

    fn spec(parts: usize) -> SplitSpec {
        SplitSpec {
            micro_parts: false,
            parts,
            byte_balanced: false,
        }
    }

    fn cut(
        n: usize,
    ) -> (
        Vec<Arc<Vec<AnyRecord>>>,
        Vec<Option<Arc<ColumnBatch>>>,
        SplitPlan,
    ) {
        (
            vec![Arc::new(Vec::new()); n],
            vec![None; n],
            SplitPlan {
                parts: n,
                ranges: vec![(0, 0, 0); n],
            },
        )
    }

    #[test]
    fn hit_returns_same_arcs_and_respects_key() {
        let mut c = SplitCache::default();
        let d = descriptor("a", 10);
        let (parts, columns, plan) = cut(2);
        c.put(&d, &spec(2), &parts, &columns, &plan);
        let hit = c.get(&d, &spec(2)).expect("hit");
        assert!(Arc::ptr_eq(&hit.parts[0], &parts[0]));
        assert_eq!(hit.columns.len(), 2);
        // Different spec or different content → miss.
        assert!(c.get(&d, &spec(3)).is_none());
        assert!(c.get(&descriptor("a", 11), &spec(2)).is_none());
        assert!(c.get(&descriptor("b", 10), &spec(2)).is_none());
    }

    #[test]
    fn hit_returns_the_same_transcode_arcs() {
        let mut c = SplitCache::default();
        let recs: Vec<AnyRecord> = (0..4)
            .map(|i| {
                AnyRecord::Event(ipa_dataset::CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect();
        let d = Dataset::from_records("t", "t", recs.clone()).descriptor;
        let parts = vec![Arc::new(recs)];
        let columns = vec![ColumnBatch::from_records(&parts[0]).map(Arc::new)];
        assert!(columns[0].is_some());
        let plan = SplitPlan {
            parts: 1,
            ranges: vec![(0, 4, 0)],
        };
        c.put(&d, &spec(1), &parts, &columns, &plan);
        let hit = c.get(&d, &spec(1)).expect("hit");
        assert!(Arc::ptr_eq(
            hit.columns[0].as_ref().unwrap(),
            columns[0].as_ref().unwrap()
        ));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut c = SplitCache::with_capacity(2);
        let (parts, columns, plan) = cut(1);
        let (d1, d2, d3) = (descriptor("a", 1), descriptor("b", 1), descriptor("c", 1));
        c.put(&d1, &spec(1), &parts, &columns, &plan);
        c.put(&d2, &spec(1), &parts, &columns, &plan);
        c.put(&d3, &spec(1), &parts, &columns, &plan);
        assert_eq!(c.len(), 2);
        assert!(c.get(&d1, &spec(1)).is_none(), "oldest entry evicted");
        assert!(c.get(&d2, &spec(1)).is_some());
        assert!(c.get(&d3, &spec(1)).is_some());
        assert!(!c.is_empty());
    }

    #[test]
    fn replacing_an_entry_does_not_duplicate_order() {
        let mut c = SplitCache::with_capacity(2);
        let d = descriptor("a", 1);
        let (parts, columns, plan) = cut(1);
        c.put(&d, &spec(1), &parts, &columns, &plan);
        c.put(&d, &spec(1), &parts, &columns, &plan);
        assert_eq!(c.len(), 1);
    }
}

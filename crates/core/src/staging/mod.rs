//! The staging plane: how a dataset becomes parts on engines.
//!
//! The paper's whole evaluation (§4, Tables 1–2) is staging cost — "Move
//! Whole", "Split", "Move Parts" dominate `T_grid` — so the dataset path
//! deserves the same subsystem treatment as scheduling ([`crate::sched`])
//! and the result plane ([`crate::aida_manager`]). This module gathers
//! everything between a [`DatasetId`] and staged parts behind one facade:
//!
//! * [`DatasetPlane`] — the trait the session drives: resolve a location,
//!   stage parts under a [`SplitSpec`], observe [`StagingStats`];
//! * [`SitePlane`] — the concrete plane for a site: locator +
//!   content-addressed [`SplitCache`](cache::SplitCache) + pipelined
//!   [`Stager`](pipeline::Stager);
//! * record-range *views* (`"<base>@<first>..<last>"` ids) resolved through
//!   [`DatasetLocation::RecordRange`], so the locator's §3.4 "set of
//!   contiguous records in a database server" arm is genuinely exercised;
//! * a transfer fault injector ([`StageFaultPlan`](pipeline::StageFaultPlan))
//!   with per-part retry/backoff, composing with the PR-1 epoch rules: a
//!   terminal staging failure surfaces as
//!   [`CoreError::StagingFailure`](crate::CoreError) *before* any epoch
//!   bump, leaving the session consistent on its previous dataset.
//!
//! The split cache is keyed by `(dataset id, record count, byte size,
//! split policy, part count, byte_balanced)` — re-selecting the same
//! dataset (or re-splitting for the same engine count after a rewind into
//! a new epoch) restages in O(parts) `Arc` clones instead of re-splitting
//! and re-transferring, the interactive loop's hottest repeated cost.

pub mod cache;
pub mod pipeline;

use std::sync::Arc;
use std::time::Instant;

use ipa_dataset::{
    split_chunks, split_even, split_records, AnyRecord, ColumnBatch, DataLayout, DatasetDescriptor,
    DatasetId, SplitPlan,
};
use serde::{Deserialize, Serialize};

use crate::config::IpaConfig;
use crate::error::CoreError;
use crate::locator::{DatasetLocation, LocatorService};

use cache::SplitCache;
use pipeline::{StageFaultPlan, Stager, StagerConfig};

/// How a dataset should be split — the session-state half of the split
/// cache key (the dataset-content half comes from the descriptor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Pull-based micro-partitioning ([`split_chunks`]) when true; one
    /// ~equal part per engine otherwise.
    pub micro_parts: bool,
    /// Target part count: living engines, or `engines × oversub` under
    /// micro-partitioning.
    pub parts: usize,
    /// Byte-balanced greedy split ([`split_records`]) vs record-count
    /// split ([`split_even`]). Ignored under micro-partitioning.
    pub byte_balanced: bool,
}

impl SplitSpec {
    /// Derive the spec the session needs from its config and the number of
    /// living engines (callers must reject `engines == 0` first).
    pub fn from_config(config: &IpaConfig, engines: usize) -> Self {
        let engines = engines.max(1);
        if config.scheduler.is_pull() {
            SplitSpec {
                micro_parts: true,
                parts: engines * config.oversub.max(1),
                byte_balanced: false,
            }
        } else {
            SplitSpec {
                micro_parts: false,
                parts: engines,
                byte_balanced: config.byte_balanced_split,
            }
        }
    }
}

/// A staged dataset: what [`DatasetPlane::stage`] hands the session.
#[derive(Debug, Clone)]
pub struct StagedDataset {
    /// Descriptor of the dataset (or record-range view) that was staged.
    pub descriptor: DatasetDescriptor,
    /// Where the locator resolved it.
    pub location: DatasetLocation,
    /// The parts, ready to assign to engines.
    pub parts: Vec<Arc<Vec<AnyRecord>>>,
    /// Columnar transcodes parallel to `parts`: `Some` per part under
    /// [`DataLayout::Columnar`] (unless that part cannot transcode, e.g.
    /// it is empty), all `None` under [`DataLayout::Row`].
    pub columns: Vec<Option<Arc<ColumnBatch>>>,
    /// How the records were cut.
    pub plan: SplitPlan,
    /// True when the parts came out of the split cache (no re-split, no
    /// re-transfer).
    pub from_cache: bool,
}

/// Staging counters and per-phase timings, reported through
/// [`crate::SessionStatus`] and the gateway's `StagingStats` request —
/// the staging plane's counterpart of [`crate::SchedStats`].
///
/// Counters are cumulative over the plane's lifetime; the per-phase
/// durations and the simulated pipeline times describe the *most recent*
/// stage operation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StagingStats {
    /// Parts delivered through the pipeline (cache hits excluded).
    pub parts_staged: u64,
    /// Bytes moved through the pipeline (cache hits move zero).
    pub bytes_moved: u64,
    /// Chunked transfers performed (a part is one or more chunks of
    /// ~`stage_chunk_bytes` each).
    pub chunks_sent: u64,
    /// Stage requests answered from the split cache.
    pub cache_hits: u64,
    /// Stage requests that had to split + transfer.
    pub cache_misses: u64,
    /// Parts transcoded to columnar layout (cache hits reuse the cached
    /// transcode and do not count).
    pub parts_transcoded: u64,
    /// Chunk transfers retried after an injected/transient fault.
    pub retries: u64,
    /// Parts whose retry budget was exhausted (each one surfaced a
    /// [`crate::CoreError::StagingFailure`]).
    pub transfer_failures: u64,
    /// Last stage: locator resolution, milliseconds.
    pub locate_ms: f64,
    /// Last stage: split pass, milliseconds.
    pub split_ms: f64,
    /// Last stage: columnar transcode pass, milliseconds (0 under the row
    /// layout or from the cache).
    pub transcode_ms: f64,
    /// Last stage: chunked part delivery (wall clock), milliseconds.
    pub deliver_ms: f64,
    /// Last stage: simulated serial staging-disk read, seconds (the
    /// paper's "move parts" serial phase, at the calibrated disk rate).
    pub sim_read_s: f64,
    /// Last stage: simulated parallel LAN part transfers, seconds.
    pub sim_transfer_s: f64,
    /// Last stage: simulated pipelined total, seconds (`read + transfer`
    /// when overlap is off, `max(read, transfer)` + one chunk latency
    /// when on).
    pub sim_pipelined_s: f64,
    /// `1 − pipelined/serial` of the last stage: the fraction of the
    /// eager staging time hidden by read/transfer overlap (0 with overlap
    /// disabled or from the cache).
    pub overlap_ratio: f64,
}

/// The facade every layer that touches datasets goes through: resolve,
/// stage, inject faults, observe. Implemented by [`SitePlane`]; sessions
/// hold it boxed so tests and benches can substitute their own plane.
pub trait DatasetPlane: Send {
    /// Resolve a dataset id (or `"<base>@<first>..<last>"` range view) to
    /// a physical location without staging anything.
    fn locate(&self, id: &DatasetId) -> Result<DatasetLocation, CoreError>;

    /// Stage a dataset: resolve, fetch/materialize, split per `spec`, and
    /// deliver the parts through the chunked transfer pipeline (or the
    /// split cache). Counters accumulate into [`DatasetPlane::stats`].
    fn stage(&mut self, id: &DatasetId, spec: &SplitSpec) -> Result<StagedDataset, CoreError>;

    /// Arm a transfer fault plan for subsequent [`DatasetPlane::stage`]
    /// calls (tests / chaos drills).
    fn inject_faults(&mut self, plan: StageFaultPlan);

    /// Cumulative staging counters plus last-stage phase timings.
    fn stats(&self) -> StagingStats;
}

/// The concrete [`DatasetPlane`] of a site: locator resolution, a
/// content-addressed split cache, and the pipelined chunked stager.
pub struct SitePlane {
    locator: LocatorService,
    cache: SplitCache,
    cache_enabled: bool,
    layout: DataLayout,
    stager_config: StagerConfig,
    faults: StageFaultPlan,
    stats: StagingStats,
}

impl SitePlane {
    /// Build a site's plane from its locator and config knobs.
    pub fn new(locator: LocatorService, config: &IpaConfig) -> Self {
        SitePlane {
            locator,
            cache: SplitCache::default(),
            cache_enabled: config.split_cache,
            layout: config.data_layout,
            stager_config: StagerConfig::from_config(config),
            faults: StageFaultPlan::default(),
            stats: StagingStats::default(),
        }
    }

    /// Override the stager's pipeline knobs (benches explore eager vs
    /// pipelined shapes without a full manager).
    pub fn with_stager_config(mut self, sc: StagerConfig) -> Self {
        self.stager_config = sc;
        self
    }

    fn split(
        &self,
        records: &[AnyRecord],
        spec: &SplitSpec,
    ) -> Result<(Vec<Vec<AnyRecord>>, SplitPlan), CoreError> {
        if spec.micro_parts {
            split_chunks(records, spec.parts)
        } else if spec.byte_balanced {
            split_records(records, spec.parts)
        } else {
            split_even(records, spec.parts)
        }
        .map_err(|e| CoreError::Staging(e.to_string()))
    }
}

impl DatasetPlane for SitePlane {
    fn locate(&self, id: &DatasetId) -> Result<DatasetLocation, CoreError> {
        self.locator.locate(id)
    }

    fn stage(&mut self, id: &DatasetId, spec: &SplitSpec) -> Result<StagedDataset, CoreError> {
        let t0 = Instant::now();
        let location = self.locator.locate(id)?;
        let ds = self.locator.materialize(id, &location)?;
        self.stats.locate_ms = t0.elapsed().as_secs_f64() * 1e3;

        if self.cache_enabled {
            if let Some(hit) = self.cache.get(&ds.descriptor, spec) {
                self.stats.cache_hits += 1;
                self.stats.split_ms = 0.0;
                self.stats.transcode_ms = 0.0;
                self.stats.deliver_ms = 0.0;
                self.stats.sim_read_s = 0.0;
                self.stats.sim_transfer_s = 0.0;
                self.stats.sim_pipelined_s = 0.0;
                self.stats.overlap_ratio = 0.0;
                return Ok(StagedDataset {
                    descriptor: ds.descriptor.clone(),
                    location,
                    parts: hit.parts,
                    columns: hit.columns,
                    plan: hit.plan,
                    from_cache: true,
                });
            }
        }
        self.stats.cache_misses += 1;

        let t1 = Instant::now();
        let (raw_parts, plan) = self.split(&ds.records, spec)?;
        self.stats.split_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let stager = Stager::new(self.stager_config, &self.faults);
        let outcome = stager.deliver(raw_parts, &plan);
        self.stats.deliver_ms = t2.elapsed().as_secs_f64() * 1e3;
        self.stats.chunks_sent += outcome.chunks_sent;
        self.stats.retries += outcome.retries;
        let delivered = match outcome.result {
            Ok(parts) => parts,
            Err(failure) => {
                self.stats.transfer_failures += 1;
                return Err(CoreError::StagingFailure {
                    part: failure.part,
                    attempts: failure.attempts,
                });
            }
        };
        self.stats.parts_staged += delivered.len() as u64;
        self.stats.bytes_moved += plan.ranges.iter().map(|r| r.2).sum::<u64>();
        self.stats.sim_read_s = outcome.sim_read_s;
        self.stats.sim_transfer_s = outcome.sim_transfer_s;
        self.stats.sim_pipelined_s = outcome.sim_pipelined_s;
        self.stats.overlap_ratio = outcome.overlap_ratio;

        let parts: Vec<Arc<Vec<AnyRecord>>> = delivered.into_iter().map(Arc::new).collect();

        // Columnar layout: transcode each part once, here, so engines (and
        // every later re-assignment out of the split cache) get the
        // vectorizable form for free. Row layout skips the pass entirely.
        let t3 = Instant::now();
        let columns: Vec<Option<Arc<ColumnBatch>>> = match self.layout {
            DataLayout::Columnar => {
                let cols: Vec<Option<Arc<ColumnBatch>>> = parts
                    .iter()
                    .map(|p| ColumnBatch::from_records(p).map(Arc::new))
                    .collect();
                self.stats.parts_transcoded += cols.iter().filter(|c| c.is_some()).count() as u64;
                cols
            }
            DataLayout::Row => vec![None; parts.len()],
        };
        self.stats.transcode_ms = t3.elapsed().as_secs_f64() * 1e3;

        if self.cache_enabled {
            self.cache
                .put(&ds.descriptor, spec, &parts, &columns, &plan);
        }
        Ok(StagedDataset {
            descriptor: ds.descriptor.clone(),
            location,
            parts,
            columns,
            plan,
            from_cache: false,
        })
    }

    fn inject_faults(&mut self, plan: StageFaultPlan) {
        self.faults = plan;
    }

    fn stats(&self) -> StagingStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DatasetStore;
    use ipa_dataset::{Dataset, EventGeneratorConfig, GeneratorConfig};

    fn plane(events: u64, config: &IpaConfig) -> SitePlane {
        let store = DatasetStore::new();
        store
            .put(Dataset::from_records(
                "ds",
                "ds",
                ipa_dataset::generate_dataset(
                    "ds",
                    "ds",
                    &GeneratorConfig::Event(EventGeneratorConfig {
                        events,
                        ..Default::default()
                    }),
                )
                .records,
            ))
            .unwrap();
        SitePlane::new(LocatorService::new(store, "site"), config)
    }

    #[test]
    fn spec_follows_scheduler_config() {
        let mut c = IpaConfig {
            scheduler: crate::sched::SchedulerPolicy::Static,
            byte_balanced_split: true,
            ..Default::default()
        };
        let s = SplitSpec::from_config(&c, 4);
        assert_eq!(
            s,
            SplitSpec {
                micro_parts: false,
                parts: 4,
                byte_balanced: true
            }
        );
        c.scheduler = crate::sched::SchedulerPolicy::WorkQueue;
        c.oversub = 3;
        let s = SplitSpec::from_config(&c, 4);
        assert_eq!(
            s,
            SplitSpec {
                micro_parts: true,
                parts: 12,
                byte_balanced: false
            }
        );
    }

    #[test]
    fn restage_is_a_cache_hit_with_identical_parts() {
        let config = IpaConfig::default();
        let mut p = plane(500, &config);
        let spec = SplitSpec {
            micro_parts: false,
            parts: 4,
            byte_balanced: true,
        };
        let first = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        assert!(!first.from_cache);
        let second = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        assert!(second.from_cache);
        assert_eq!(p.stats().cache_hits, 1);
        assert_eq!(p.stats().cache_misses, 1);
        // Bit-identical: the hit returns the same Arc'd part buffers.
        assert_eq!(first.parts.len(), second.parts.len());
        for (a, b) in first.parts.iter().zip(&second.parts) {
            assert!(Arc::ptr_eq(a, b));
        }
        // A different spec is a different key.
        let other = p
            .stage(
                &DatasetId::new("ds"),
                &SplitSpec {
                    micro_parts: false,
                    parts: 2,
                    byte_balanced: true,
                },
            )
            .unwrap();
        assert!(!other.from_cache);
    }

    #[test]
    fn columnar_layout_transcodes_once_and_cache_hits_reuse_it() {
        let config = IpaConfig {
            data_layout: DataLayout::Columnar,
            ..Default::default()
        };
        let mut p = plane(400, &config);
        let spec = SplitSpec {
            micro_parts: false,
            parts: 4,
            byte_balanced: false,
        };
        let first = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        assert_eq!(first.columns.len(), first.parts.len());
        for (part, cols) in first.parts.iter().zip(&first.columns) {
            let cols = cols.as_ref().expect("event parts transcode");
            assert_eq!(cols.len(), part.len());
            assert_eq!(cols.kind(), "event");
        }
        assert_eq!(p.stats().parts_transcoded, 4);

        // The hit hands back the same transcode Arcs — zero copies, and
        // the counter does not move.
        let second = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        assert!(second.from_cache);
        for (a, b) in first.columns.iter().zip(&second.columns) {
            assert!(Arc::ptr_eq(a.as_ref().unwrap(), b.as_ref().unwrap()));
        }
        assert_eq!(p.stats().parts_transcoded, 4);
    }

    #[test]
    fn row_layout_skips_the_transcode() {
        let config = IpaConfig {
            data_layout: DataLayout::Row,
            ..Default::default()
        };
        let mut p = plane(100, &config);
        let staged = p
            .stage(
                &DatasetId::new("ds"),
                &SplitSpec {
                    micro_parts: false,
                    parts: 2,
                    byte_balanced: false,
                },
            )
            .unwrap();
        assert_eq!(staged.columns, vec![None, None]);
        assert_eq!(p.stats().parts_transcoded, 0);
    }

    #[test]
    fn cache_toggle_disables_hits() {
        let config = IpaConfig {
            split_cache: false,
            ..Default::default()
        };
        let mut p = plane(100, &config);
        let spec = SplitSpec {
            micro_parts: false,
            parts: 2,
            byte_balanced: false,
        };
        p.stage(&DatasetId::new("ds"), &spec).unwrap();
        let again = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        assert!(!again.from_cache);
        assert_eq!(p.stats().cache_hits, 0);
        assert_eq!(p.stats().cache_misses, 2);
    }

    #[test]
    fn delivered_parts_match_direct_split_bit_for_bit() {
        let config = IpaConfig::default();
        let mut p = plane(333, &config);
        let spec = SplitSpec {
            micro_parts: true,
            parts: 16,
            byte_balanced: false,
        };
        let staged = p.stage(&DatasetId::new("ds"), &spec).unwrap();
        let ds = ipa_dataset::generate_dataset(
            "ds",
            "ds",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 333,
                ..Default::default()
            }),
        );
        let (direct, _) = split_chunks(&ds.records, 16).unwrap();
        assert_eq!(staged.parts.len(), direct.len());
        for (got, want) in staged.parts.iter().zip(&direct) {
            assert_eq!(got.as_ref(), want);
        }
    }

    #[test]
    fn record_range_view_stages_the_slice() {
        let config = IpaConfig::default();
        let mut p = plane(200, &config);
        let id = DatasetId::new("ds@50..150");
        match p.locate(&id).unwrap() {
            DatasetLocation::RecordRange {
                source,
                first,
                last,
            } => {
                assert_eq!(source, "ds");
                assert_eq!((first, last), (50, 150));
            }
            other => panic!("expected RecordRange, got {other:?}"),
        }
        let staged = p
            .stage(
                &id,
                &SplitSpec {
                    micro_parts: false,
                    parts: 2,
                    byte_balanced: false,
                },
            )
            .unwrap();
        assert_eq!(staged.descriptor.records, 100);
        let total: usize = staged.parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn terminal_fault_surfaces_structured_failure() {
        let config = IpaConfig {
            stage_retries: 1,
            ..Default::default()
        };
        let mut p = plane(100, &config);
        p.inject_faults(StageFaultPlan::default().fail_part(0, 5));
        let err = p
            .stage(
                &DatasetId::new("ds"),
                &SplitSpec {
                    micro_parts: false,
                    parts: 2,
                    byte_balanced: false,
                },
            )
            .unwrap_err();
        match err {
            CoreError::StagingFailure { part, attempts } => {
                assert_eq!(part, 0);
                assert!(attempts >= 2, "attempts {attempts}");
            }
            other => panic!("expected StagingFailure, got {other:?}"),
        }
        assert_eq!(p.stats().transfer_failures, 1);
        assert!(p.stats().retries >= 1);
        // The plan is exhausted by the failed attempts eventually; a clean
        // plan stages fine and the failure left no cache entry behind.
        p.inject_faults(StageFaultPlan::default());
        let ok = p
            .stage(
                &DatasetId::new("ds"),
                &SplitSpec {
                    micro_parts: false,
                    parts: 2,
                    byte_balanced: false,
                },
            )
            .unwrap();
        assert!(!ok.from_cache);
    }

    #[test]
    fn stats_serde_round_trip() {
        let s = StagingStats {
            parts_staged: 8,
            bytes_moved: 1 << 20,
            chunks_sent: 32,
            cache_hits: 2,
            cache_misses: 1,
            parts_transcoded: 8,
            retries: 3,
            transfer_failures: 0,
            locate_ms: 0.1,
            split_ms: 1.5,
            transcode_ms: 0.7,
            deliver_ms: 2.5,
            sim_read_s: 46.0,
            sim_transfer_s: 62.0,
            sim_pipelined_s: 62.5,
            overlap_ratio: 0.42,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StagingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
